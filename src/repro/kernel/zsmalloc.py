"""zsmalloc: the machine-global compressed-data arena (paper §5.1).

zsmalloc packs variable-size compressed payloads into fixed *size classes*;
objects of one class are stored in multi-page "zspages".  The paper keeps
**one global arena per machine** (per-memcg arenas fragmented badly with
tens of jobs per machine) with **an explicit compaction interface** driven
by the node agent.

The model tracks, per size class, live objects and free slots (holes left
by freed objects).  A class's DRAM footprint is the zspages needed to hold
``live + holes`` slots; compaction migrates objects to squeeze the holes
out.  This reproduces the phenomena that mattered in the paper: internal
fragmentation (class rounding), external fragmentation (holes), and the
accounting identity ``footprint >= payload bytes``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.common.errors import SimulationError
from repro.common.units import PAGE_SIZE
from repro.common.validation import check_positive, require
from repro.obs import (
    MetricName,
    MetricRegistry,
    Tracer,
    get_registry,
    get_tracer,
)

__all__ = ["ZsmallocArena", "ArenaStats"]

#: Granularity of size classes, matching Linux zsmalloc's step.
SIZE_CLASS_STEP = 32

#: Pages per zspage (Linux uses up to 4).
ZSPAGE_PAGES = 4
ZSPAGE_BYTES = ZSPAGE_PAGES * PAGE_SIZE

#: Per-object metadata overhead (handle + zspage bookkeeping share).
OBJECT_METADATA_BYTES = 16


@dataclass(frozen=True)
class ArenaStats:
    """Point-in-time arena accounting.

    Attributes:
        live_objects: stored payloads.
        payload_bytes: sum of stored payload sizes.
        footprint_bytes: DRAM actually consumed (zspages).
        internal_fragmentation_bytes: class rounding + metadata waste.
        external_fragmentation_bytes: bytes held by free holes.
    """

    live_objects: int
    payload_bytes: int
    footprint_bytes: int
    internal_fragmentation_bytes: int
    external_fragmentation_bytes: int


class _SizeClass:
    """Bookkeeping for one object size class."""

    __slots__ = ("class_bytes", "objects_per_zspage", "live", "holes",
                 "payload_bytes")

    def __init__(self, class_bytes: int):
        self.class_bytes = class_bytes
        self.objects_per_zspage = max(1, ZSPAGE_BYTES // class_bytes)
        self.live = 0
        self.holes = 0
        self.payload_bytes = 0

    @property
    def zspages(self) -> int:
        slots = self.live + self.holes
        return math.ceil(slots / self.objects_per_zspage)

    @property
    def footprint_bytes(self) -> int:
        return self.zspages * ZSPAGE_BYTES

    def compact(self) -> int:
        """Squeeze out holes; returns bytes released."""
        before = self.footprint_bytes
        self.holes = 0
        return before - self.footprint_bytes


class ZsmallocArena:
    """Machine-global compressed-payload store.

    Payload sizes are mapped to size classes by rounding
    ``payload + metadata`` up to the next :data:`SIZE_CLASS_STEP` multiple.

    Args:
        step: size-class granularity in bytes.
        machine_id: label value for exported metrics ("" standalone).
        registry: metrics registry (defaults to the process-global one).
        tracer: span tracer (defaults to the process-global one).
    """

    def __init__(
        self,
        step: int = SIZE_CLASS_STEP,
        machine_id: str = "",
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        check_positive(step, "step")
        self._step = int(step)
        self._classes: Dict[int, _SizeClass] = {}
        self.machine_id = machine_id
        self.compactions = 0
        # Running accounting totals, updated on every store/release/compact.
        # ``Machine.tick`` reads ``footprint_bytes`` (and the node agent
        # reads ``stats()``) every tick, so summing over all size classes
        # per read would put an O(classes) Python loop on the tick path.
        self._live_total = 0
        self._payload_total = 0
        self._footprint_total = 0
        self._internal_total = 0
        self._external_total = 0

        registry = registry if registry is not None else get_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        self._bind_metrics(registry)

    def _bind_metrics(self, registry: MetricRegistry) -> None:
        self._m_compactions = registry.counter(
            MetricName.ARENA_COMPACTIONS_TOTAL,
            "Explicit zsmalloc arena compactions.", ("machine",)
        ).labels(machine=self.machine_id)
        self._m_compaction_bytes = registry.counter(
            MetricName.ARENA_COMPACTION_RELEASED_BYTES_TOTAL,
            "Bytes released by arena compaction.", ("machine",)
        ).labels(machine=self.machine_id)

    def rebind_observability(self, registry: MetricRegistry,
                             tracer: Tracer) -> None:
        """Re-point metric handles and tracer after a cross-process move."""
        self._tracer = tracer
        self._bind_metrics(registry)

    def class_bytes_for(self, payload_bytes: int) -> int:
        """The size class a payload of this size lands in."""
        require(payload_bytes > 0, f"payload must be positive, got {payload_bytes}")
        gross = payload_bytes + OBJECT_METADATA_BYTES
        return self._step * math.ceil(gross / self._step)

    def _class(self, class_bytes: int) -> _SizeClass:
        cls = self._classes.get(class_bytes)
        if cls is None:
            cls = _SizeClass(class_bytes)
            self._classes[class_bytes] = cls
        return cls

    # ------------------------------------------------------------------
    # Allocation API (batch-oriented: kreclaimd compresses pages in bulk)
    # ------------------------------------------------------------------

    def _grouped(self, payload_bytes: np.ndarray):
        """Yield ``(class_bytes, object_count, payload_sum)`` per size class.

        Payloads never exceed a page, so the class *indices* live in a
        small dense range and two ``np.bincount`` calls replace the sort
        inside ``np.unique``; ascending-class yield order is preserved.
        """
        payloads = np.asarray(payload_bytes, dtype=np.int64)
        if payloads.size == 0:
            return
        require(bool((payloads > 0).all()), "payloads must be positive")
        step = self._step
        class_index = (payloads + (OBJECT_METADATA_BYTES + step - 1)) // step
        counts = np.bincount(class_index)
        sums = np.bincount(class_index, weights=payloads)
        for index in np.flatnonzero(counts):
            yield int(index) * step, int(counts[index]), int(sums[index])

    def store(self, payload_bytes: np.ndarray) -> None:
        """Store one object per entry of ``payload_bytes``."""
        for class_bytes, count, payload_sum in self._grouped(payload_bytes):
            cls = self._class(class_bytes)
            zspages_before = cls.zspages
            reused = min(cls.holes, count)
            cls.holes -= reused
            cls.live += count
            cls.payload_bytes += payload_sum
            self._footprint_total += (cls.zspages - zspages_before) * ZSPAGE_BYTES
            self._live_total += count
            self._payload_total += payload_sum
            self._internal_total += count * class_bytes - payload_sum
            self._external_total -= reused * class_bytes

    def release(self, payload_bytes: np.ndarray) -> None:
        """Free the objects previously stored with these payload sizes.

        Freeing turns live slots into holes, so the zspage count (and the
        footprint) is unchanged until compaction squeezes the holes out.
        """
        for class_bytes, count, payload_sum in self._grouped(payload_bytes):
            cls = self._classes.get(class_bytes)
            if cls is None or cls.live < count:
                raise SimulationError(
                    f"release of {count} objects from size class {class_bytes} "
                    f"with only {0 if cls is None else cls.live} live"
                )
            cls.live -= count
            cls.holes += count
            cls.payload_bytes -= payload_sum
            self._live_total -= count
            self._payload_total -= payload_sum
            self._internal_total -= count * class_bytes - payload_sum
            self._external_total += count * class_bytes

    def compact(self) -> int:
        """Explicit compaction (node-agent triggered); returns bytes freed."""
        with self._tracer.span("zsmalloc.compact"):
            released = 0
            for cls in self._classes.values():
                self._external_total -= cls.holes * cls.class_bytes
                released += cls.compact()
            self._footprint_total -= released
        self.compactions += 1
        self._m_compactions.inc()
        self._m_compaction_bytes.inc(released)
        return released

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def footprint_bytes(self) -> int:
        """DRAM the arena currently pins."""
        return self._footprint_total

    @property
    def payload_bytes(self) -> int:
        """Logical bytes stored (sum of payload sizes)."""
        return self._payload_total

    @property
    def live_objects(self) -> int:
        """Number of stored objects."""
        return self._live_total

    def stats(self) -> ArenaStats:
        """Full accounting snapshot (O(1) — from the running totals)."""
        return ArenaStats(
            live_objects=self._live_total,
            payload_bytes=self._payload_total,
            footprint_bytes=self._footprint_total,
            internal_fragmentation_bytes=self._internal_total,
            external_fragmentation_bytes=self._external_total,
        )

    def recounted_stats(self) -> ArenaStats:
        """Recompute :meth:`stats` from per-class state (test oracle).

        The running totals must always agree with a fresh per-class sweep;
        the property tests assert this after randomized operation mixes.
        """
        live = payload = footprint = internal = external = 0
        for cls in self._classes.values():
            live += cls.live
            payload += cls.payload_bytes
            footprint += cls.footprint_bytes
            internal += cls.live * cls.class_bytes - cls.payload_bytes
            external += cls.holes * cls.class_bytes
        return ArenaStats(
            live_objects=live,
            payload_bytes=payload,
            footprint_bytes=footprint,
            internal_fragmentation_bytes=internal,
            external_fragmentation_bytes=external,
        )
