"""Deterministic RNG stream derivation."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import SeedSequenceFactory, stream


def test_same_name_same_stream():
    a = SeedSequenceFactory(7).stream("workload").random(8)
    b = SeedSequenceFactory(7).stream("workload").random(8)
    np.testing.assert_array_equal(a, b)


def test_different_names_differ():
    a = SeedSequenceFactory(7).stream("workload").random(8)
    b = SeedSequenceFactory(7).stream("arena").random(8)
    assert not np.array_equal(a, b)


def test_different_indices_differ():
    factory = SeedSequenceFactory(7)
    a = factory.stream("workload", job=1).random(8)
    b = factory.stream("workload", job=2).random(8)
    assert not np.array_equal(a, b)


def test_index_order_does_not_matter():
    factory = SeedSequenceFactory(7)
    a = factory.stream("x", job=1, machine=2).random(4)
    b = factory.stream("x", machine=2, job=1).random(4)
    np.testing.assert_array_equal(a, b)


def test_different_root_seeds_differ():
    a = SeedSequenceFactory(1).stream("workload").random(8)
    b = SeedSequenceFactory(2).stream("workload").random(8)
    assert not np.array_equal(a, b)


def test_creation_order_does_not_matter():
    f1 = SeedSequenceFactory(9)
    _ = f1.stream("first").random(100)
    late = f1.stream("second").random(8)
    f2 = SeedSequenceFactory(9)
    early = f2.stream("second").random(8)
    np.testing.assert_array_equal(late, early)


def test_fork_is_deterministic_and_disjoint():
    parent = SeedSequenceFactory(3)
    child_a = parent.fork("cluster", index=0)
    child_b = SeedSequenceFactory(3).fork("cluster", index=0)
    np.testing.assert_array_equal(
        child_a.stream("s").random(4), child_b.stream("s").random(4)
    )
    assert not np.array_equal(
        child_a.stream("s").random(4), parent.stream("s").random(4)
    )


def test_negative_seed_rejected():
    with pytest.raises(ConfigurationError):
        SeedSequenceFactory(-1)


def test_stream_shorthand():
    np.testing.assert_array_equal(
        stream(5, "a", k=1).random(4),
        SeedSequenceFactory(5).stream("a", k=1).random(4),
    )
