"""Project-wide call graph for the interprocedural flow passes.

The local rules in ``repro.checks.rules_*`` see one file at a time; the
flow passes (FLOW001 taint, FLOW002 fork closure) need to know *who
calls whom* across the whole package.  This module builds that graph in
two stages, mirroring a classic separate-compilation linker:

1. **Extraction** (:func:`extract_module`) parses one file into a
   :class:`ModuleSummary` — every function with its outgoing
   :class:`CallRef`\\ s (alias-resolved dotted targets), every
   nondeterminism :class:`SourceInfo` found in its body, every class with
   its method table, base names, and FORK001-style pickle hazards, plus
   the file's ``# repro: noqa`` suppression map and its
   ``COLUMN_CONTRACTS`` findings.  Summaries are plain JSON-able dicts,
   which is what makes the ``.repro-cache`` warm path possible: an
   unchanged file is never re-parsed.
2. **Linking** (:class:`CallGraph.link`) resolves every ``CallRef``
   against the global symbol table: plain calls through import aliases
   and package re-exports (``repro.kernel.MemCg`` →
   ``repro.kernel.memcg.MemCg``), ``self.``/``cls.``/``super().`` method
   calls via a class scan over the inheritance chain, constructor calls
   to ``__init__``, and locally-typed receivers (``pool =
   MachinePagePool(...); pool.scan_all()``).

Anything that cannot be resolved becomes the **unknown callee** lattice
element: the edge is recorded as unresolved and contributes *no* taint
and *no* reachability.  The lattice is therefore
``CLEAN ⊑ UNKNOWN ⊑ TAINTED`` with the analyzer reporting only provable
``TAINTED`` facts — conservative in the "no spurious findings" direction
a lint gate needs (a hazard hidden behind an unresolvable indirect call
is the price; the local DET/FORK rules still see it at its definition
site).

Nested function bodies fold into their enclosing function: a closure's
calls and sources are attributed to the function that defines it.  That
over-approximates (the closure might never run) but never hides a hazard
behind a ``def``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.checks.core import LintError, _parse_suppressions

__all__ = [
    "CallGraph",
    "CallRef",
    "ClassInfo",
    "FunctionInfo",
    "ModuleSummary",
    "SourceInfo",
    "extract_module",
    "find_package_root",
    "iter_package_files",
    "module_name_for",
]

#: Bumped whenever the summary shape changes (invalidates caches).
SUMMARY_FORMAT_VERSION = 1

#: Wall-clock reads (mirrors DET001's catalogue).
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.today",
        "datetime.datetime.utcnow", "datetime.date.today",
    }
)

#: numpy legacy global-RNG entry points (mirrors DET002).
_NP_LEGACY_FNS = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "bytes",
        "normal", "uniform", "poisson", "exponential", "beta", "gamma",
        "binomial", "standard_normal", "get_state", "set_state",
    }
)

#: Constructors whose instances cannot cross a fork/pickle boundary
#: (mirrors FORK001).
_UNPICKLABLE_CTORS = {
    "open": "open file handle",
    "threading.Lock": "threading lock",
    "threading.RLock": "threading lock",
    "threading.Condition": "threading condition",
    "threading.Event": "threading event",
    "threading.Semaphore": "threading semaphore",
    "threading.BoundedSemaphore": "threading semaphore",
    "multiprocessing.Lock": "multiprocessing lock",
    "multiprocessing.RLock": "multiprocessing lock",
    "multiprocessing.Queue": "multiprocessing queue",
}

_PICKLE_HOOKS = frozenset(
    {"__getstate__", "__reduce__", "__reduce_ex__", "__getnewargs__"}
)

_VIEW_METHODS = frozenset({"keys", "values", "items"})
_ORDERED_SINKS = frozenset({"append", "extend", "insert"})


@dataclass
class CallRef:
    """One outgoing call site, before linking.

    Attributes:
        target: alias-resolved dotted expression — an absolute dotted
            path for plain calls, ``self.<m>``/``cls.<m>`` for method
            calls on the instance, or ``<Class dotted>.<m>`` for calls
            on a locally-typed receiver.
        line: call-site line number.
        kind: ``plain`` | ``self`` | ``super``.
    """

    target: str
    line: int
    kind: str = "plain"

    def to_dict(self) -> Dict[str, object]:
        return {"target": self.target, "line": self.line, "kind": self.kind}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "CallRef":
        return cls(str(d["target"]), int(d["line"]), str(d["kind"]))  # type: ignore[arg-type]


@dataclass
class SourceInfo:
    """One nondeterminism source found directly in a function body."""

    kind: str  #: ``wall-clock`` | ``rng`` | ``environ`` | ``id`` | ``set-order``
    detail: str  #: human description, e.g. "wall-clock read `time.time()`"
    line: int

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "detail": self.detail, "line": self.line}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "SourceInfo":
        return cls(str(d["kind"]), str(d["detail"]), int(d["line"]))  # type: ignore[arg-type]


@dataclass
class FunctionInfo:
    """One function (or method) in the package."""

    qualname: str  #: ``pkg.mod.func`` or ``pkg.mod.Class.method``
    module: str
    rel_path: str  #: posix path relative to the *package root's parent*
    line: int
    class_name: Optional[str] = None  #: enclosing class qualname, if a method
    calls: List[CallRef] = field(default_factory=list)
    sources: List[SourceInfo] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[1]

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "rel_path": self.rel_path,
            "line": self.line,
            "class_name": self.class_name,
            "calls": [c.to_dict() for c in self.calls],
            "sources": [s.to_dict() for s in self.sources],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "FunctionInfo":
        return cls(
            qualname=str(d["qualname"]),
            module=str(d["module"]),
            rel_path=str(d["rel_path"]),
            line=int(d["line"]),  # type: ignore[arg-type]
            class_name=d.get("class_name"),  # type: ignore[arg-type]
            calls=[CallRef.from_dict(c) for c in d["calls"]],  # type: ignore[union-attr]
            sources=[SourceInfo.from_dict(s) for s in d["sources"]],  # type: ignore[union-attr]
        )


@dataclass
class ClassInfo:
    """One class: method table, bases, and pickle-safety facts."""

    qualname: str
    module: str
    rel_path: str
    line: int
    bases: List[str] = field(default_factory=list)  #: resolved dotted names
    methods: Dict[str, str] = field(default_factory=dict)  #: name -> fn qualname
    has_pickle_hooks: bool = False
    #: FORK001-style hazards in ``__init__``: (line, description).
    hazards: List[Tuple[int, str]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "rel_path": self.rel_path,
            "line": self.line,
            "bases": self.bases,
            "methods": self.methods,
            "has_pickle_hooks": self.has_pickle_hooks,
            "hazards": [list(h) for h in self.hazards],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ClassInfo":
        return cls(
            qualname=str(d["qualname"]),
            module=str(d["module"]),
            rel_path=str(d["rel_path"]),
            line=int(d["line"]),  # type: ignore[arg-type]
            bases=list(d["bases"]),  # type: ignore[arg-type]
            methods=dict(d["methods"]),  # type: ignore[arg-type]
            has_pickle_hooks=bool(d["has_pickle_hooks"]),
            hazards=[(int(h[0]), str(h[1])) for h in d["hazards"]],  # type: ignore[union-attr]
        )


@dataclass
class ModuleSummary:
    """Everything the linker needs to know about one file."""

    module: str
    rel_path: str
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level ``from X import y [as z]``: ``mod.z`` -> ``X.y``
    #: (how re-exports through ``__init__.py`` files are followed).
    reexports: Dict[str, str] = field(default_factory=dict)
    #: line -> suppressed rule ids (None = all rules).
    suppressions: Dict[int, Optional[List[str]]] = field(default_factory=dict)
    #: CON001/CON002 findings found at extraction time (finding dicts).
    con_findings: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "rel_path": self.rel_path,
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
            "classes": {q: c.to_dict() for q, c in self.classes.items()},
            "reexports": self.reexports,
            "suppressions": {
                str(line): rules for line, rules in self.suppressions.items()
            },
            "con_findings": self.con_findings,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ModuleSummary":
        return cls(
            module=str(d["module"]),
            rel_path=str(d["rel_path"]),
            functions={
                q: FunctionInfo.from_dict(f)
                for q, f in d["functions"].items()  # type: ignore[union-attr]
            },
            classes={
                q: ClassInfo.from_dict(c)
                for q, c in d["classes"].items()  # type: ignore[union-attr]
            },
            reexports=dict(d["reexports"]),  # type: ignore[arg-type]
            suppressions={
                int(line): rules
                for line, rules in d["suppressions"].items()  # type: ignore[union-attr]
            },
            con_findings=list(d["con_findings"]),  # type: ignore[arg-type]
        )


# ----------------------------------------------------------------------
# Package discovery
# ----------------------------------------------------------------------


def find_package_root(path: Path) -> Path:
    """The topmost ancestor of ``path`` that is still a package.

    Walks up from a file's directory (or the directory itself) while an
    ``__init__.py`` is present, so ``src/repro/kernel/columnar.py`` and
    ``src/repro`` both land on ``src/repro``.

    Raises:
        LintError: when ``path`` is not inside a python package.
    """
    directory = path if path.is_dir() else path.parent
    directory = directory.resolve()
    if not (directory / "__init__.py").exists():
        raise LintError(
            f"{path} is not inside a python package (no __init__.py); "
            f"flow analysis needs a package root"
        )
    while (directory.parent / "__init__.py").exists():
        directory = directory.parent
    return directory


def iter_package_files(package_root: Path) -> List[Path]:
    """Every ``.py`` file under the package, sorted (deterministic)."""
    return sorted(package_root.rglob("*.py"))


def module_name_for(package_root: Path, path: Path) -> str:
    """Dotted module name of ``path`` within its package."""
    rel = path.resolve().relative_to(package_root.parent)
    parts = list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------


class _ModuleExtractor(ast.NodeVisitor):
    """One pass over a module AST, building its :class:`ModuleSummary`."""

    def __init__(self, summary: ModuleSummary, package: str):
        self.summary = summary
        self.package = package
        self.module_aliases: Dict[str, str] = {}
        self.symbol_aliases: Dict[str, str] = {}
        #: top-level names defined in this module (functions + classes).
        self.local_defs: Set[str] = set()
        self._class_stack: List[ClassInfo] = []
        self._fn_stack: List[FunctionInfo] = []
        #: local variable -> class dotted name (``pool = Pool(...)``).
        self._local_types: Dict[str, str] = {}

    # -- imports --------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.module_aliases[alias.asname] = alias.name
            else:
                root = alias.name.split(".")[0]
                self.module_aliases[root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:  # relative import: anchor at this module's package
            base = self.summary.module.split(".")
            # level 1 = the containing package of this module.
            anchor = base[: len(base) - node.level]
            module = ".".join(anchor + ([module] if module else []))
        if module:
            for alias in node.names:
                local = alias.asname or alias.name
                target = f"{module}.{alias.name}"
                self.symbol_aliases[local] = target
                if not self._fn_stack and not self._class_stack:
                    # Module-level from-import: record as a re-export so
                    # `pkg.sub.local` resolves onward to `target`.
                    self.summary.reexports[
                        f"{self.summary.module}.{local}"
                    ] = target
        self.generic_visit(node)

    # -- name resolution ------------------------------------------------

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Attribute chain -> dotted string, following import aliases."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        resolved = self.module_aliases.get(root)
        if resolved is None:
            resolved = self.symbol_aliases.get(root)
        if resolved is None and root in self.local_defs:
            resolved = f"{self.summary.module}.{root}"
        if resolved is None:
            resolved = root
        parts.append(resolved)
        return ".".join(reversed(parts))

    # -- definitions ----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._fn_stack:  # classes inside functions: fold body, skip index
            self.generic_visit(node)
            return
        parent = self._class_stack[-1] if self._class_stack else None
        qualname = (
            f"{parent.qualname}.{node.name}"
            if parent
            else f"{self.summary.module}.{node.name}"
        )
        if not parent:
            self.local_defs.add(node.name)
        info = ClassInfo(
            qualname=qualname,
            module=self.summary.module,
            rel_path=self.summary.rel_path,
            line=node.lineno,
            bases=[b for b in map(self.dotted_name, node.bases) if b],
        )
        defined = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        info.has_pickle_hooks = bool(defined & _PICKLE_HOOKS)
        self.summary.classes[qualname] = info
        self._class_stack.append(info)
        for stmt in node.body:
            self.visit(stmt)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        if self._fn_stack:
            # Nested def: fold its body into the enclosing function.
            for stmt in node.body:
                self.visit(stmt)
            return
        cls = self._class_stack[-1] if self._class_stack else None
        if cls is not None:
            qualname = f"{cls.qualname}.{node.name}"
            cls.methods[node.name] = qualname
        else:
            qualname = f"{self.summary.module}.{node.name}"
            self.local_defs.add(node.name)
        info = FunctionInfo(
            qualname=qualname,
            module=self.summary.module,
            rel_path=self.summary.rel_path,
            line=node.lineno,
            class_name=cls.qualname if cls else None,
        )
        self.summary.functions[qualname] = info
        self._fn_stack.append(info)
        saved_types = self._local_types
        self._local_types = {}
        if cls is not None and node.name == "__init__":
            self._scan_init_hazards(cls, node)
        for stmt in node.body:
            self.visit(stmt)
        self._local_types = saved_types
        self._fn_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _scan_init_hazards(self, cls: ClassInfo, init) -> None:
        """FORK001's local hazard check, recorded on the class for the
        FLOW002 reachability pass (which also honours pickle hooks)."""
        for stmt in ast.walk(init):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            if not any(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                for t in targets
            ):
                continue
            value = stmt.value
            if value is None:
                continue
            hazard: Optional[str] = None
            if isinstance(value, ast.Lambda):
                hazard = "lambda"
            elif isinstance(value, ast.GeneratorExp):
                hazard = "live generator"
            elif isinstance(value, ast.Call):
                name = self.dotted_name(value.func)
                if name in _UNPICKLABLE_CTORS:
                    hazard = _UNPICKLABLE_CTORS[name]
            if hazard is not None:
                cls.hazards.append((stmt.lineno, hazard))

    # -- statements inside functions ------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if (
            self._fn_stack
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            target = node.targets[0].id
            cls_name = self._constructed_class(node.value)
            if cls_name is not None:
                self._local_types[target] = cls_name
            else:
                self._local_types.pop(target, None)
        self.generic_visit(node)

    def _constructed_class(self, value: ast.AST) -> Optional[str]:
        """Dotted class name when ``value`` looks like ``ClassName(...)``."""
        if not isinstance(value, ast.Call):
            return None
        name = self.dotted_name(value.func)
        if name is None:
            return None
        leaf = name.rsplit(".", 1)[-1]
        return name if leaf[:1].isupper() else None

    # -- calls and sources ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        if fn is not None:
            ref = self._call_ref(node)
            if ref is not None:
                fn.calls.append(ref)
            source = self._call_source(node)
            if source is not None:
                fn.sources.append(source)
        self.generic_visit(node)

    def _call_ref(self, node: ast.Call) -> Optional[CallRef]:
        func = node.func
        # super().m()
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            return CallRef(target=func.attr, line=node.lineno, kind="super")
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            root = func.value.id
            if root in ("self", "cls"):
                return CallRef(
                    target=f"self.{func.attr}", line=node.lineno, kind="self"
                )
            if root in self._local_types:
                return CallRef(
                    target=f"{self._local_types[root]}.{func.attr}",
                    line=node.lineno,
                )
        name = self.dotted_name(func)
        if name is None:
            return None
        return CallRef(target=name, line=node.lineno)

    def _call_source(self, node: ast.Call) -> Optional[SourceInfo]:
        name = self.dotted_name(node.func)
        if name is None:
            return None
        if name in _WALL_CLOCK_CALLS:
            return SourceInfo(
                "wall-clock", f"wall-clock read `{name}()`", node.lineno
            )
        if name.startswith("random.") and name.count(".") == 1:
            return SourceInfo(
                "rng", f"process-global stdlib RNG `{name}()`", node.lineno
            )
        if name.startswith("numpy.random."):
            leaf = name.rsplit(".", 1)[1]
            if leaf in _NP_LEGACY_FNS:
                return SourceInfo(
                    "rng", f"legacy numpy global RNG `{name}()`", node.lineno
                )
            if leaf == "default_rng" and not node.args and not node.keywords:
                return SourceInfo(
                    "rng", "entropy-seeded `np.random.default_rng()`",
                    node.lineno,
                )
        if name in ("os.getenv", "os.environ.get"):
            return SourceInfo(
                "environ", f"environment read `{name}(...)`", node.lineno
            )
        if name == "id" and "id" not in self.symbol_aliases:
            return SourceInfo(
                "id", "`id()` (address-dependent value)", node.lineno
            )
        return None

    def visit_Attribute(self, node: ast.Attribute) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        if fn is not None and self.dotted_name(node) == "os.environ":
            fn.sources.append(
                SourceInfo("environ", "`os.environ` read", node.lineno)
            )
            # Stop here: don't also record the bare `os.environ.get` call
            # walk below this attribute (visit_Call already did).
        self.generic_visit(node)

    # -- unordered-iteration sources ------------------------------------

    def _unordered_iterable(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"{func.id}()"
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, ast.SetComp):
            return "set comprehension"
        return None

    def _accumulates(self, body: List[ast.stmt]) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _ORDERED_SINKS
                ):
                    return True
                if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                    return True
        return False

    def visit_For(self, node: ast.For) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        if fn is not None:
            described = self._unordered_iterable(node.iter)
            if described is not None and self._accumulates(node.body):
                fn.sources.append(
                    SourceInfo(
                        "set-order",
                        f"iteration over {described} feeds an ordered "
                        f"accumulator",
                        node.lineno,
                    )
                )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        if fn is not None:
            for gen in node.generators:
                described = self._unordered_iterable(gen.iter)
                if described is not None:
                    fn.sources.append(
                        SourceInfo(
                            "set-order",
                            f"list built from {described}",
                            node.lineno,
                        )
                    )
                    break
        self.generic_visit(node)


def extract_module(
    package_root: Path, path: Path, source: Optional[str] = None
) -> ModuleSummary:
    """Parse one file into its :class:`ModuleSummary`.

    Args:
        package_root: the package the file belongs to.
        path: the file.
        source: pre-read file contents (read from disk when omitted).

    Raises:
        LintError: when the file does not parse.
    """
    if source is None:
        source = path.read_text(encoding="utf-8")
    rel_path = path.resolve().relative_to(package_root.parent).as_posix()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"{rel_path} does not parse: {exc.msg}") from exc
    summary = ModuleSummary(
        module=module_name_for(package_root, path), rel_path=rel_path
    )
    suppressions = _parse_suppressions(source)
    summary.suppressions = {
        line: (sorted(rules) if rules is not None else None)
        for line, rules in suppressions.items()
    }
    extractor = _ModuleExtractor(summary, package=package_root.name)
    # Pre-scan top-level names so forward references resolve.
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            extractor.local_defs.add(stmt.name)
    extractor.visit(tree)

    from repro.checks.flow.contracts import check_module_contracts

    summary.con_findings = [
        f.to_dict() for f in check_module_contracts(tree, summary)
    ]
    return summary


# ----------------------------------------------------------------------
# Linking
# ----------------------------------------------------------------------


class CallGraph:
    """The linked whole-package graph the flow passes run on.

    Attributes:
        functions: qualname -> :class:`FunctionInfo`.
        classes: qualname -> :class:`ClassInfo`.
        edges: caller qualname -> list of (callee qualname, call line).
        unresolved: caller qualname -> list of (raw target, line) — the
            *unknown callee* lattice element, kept for introspection and
            the conservatism tests.
    """

    def __init__(self, summaries: Sequence[ModuleSummary]):
        self.summaries = list(summaries)
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.reexports: Dict[str, str] = {}
        self.edges: Dict[str, List[Tuple[str, int]]] = {}
        self.unresolved: Dict[str, List[Tuple[str, int]]] = {}
        #: callee -> callers (reverse adjacency, built by :meth:`link`).
        self.callers: Dict[str, List[Tuple[str, int]]] = {}
        self.link()

    # -- symbol resolution ----------------------------------------------

    def _follow_reexports(self, name: str) -> str:
        """Chase ``from X import y`` chains (cycle-guarded)."""
        seen = set()
        while name in self.reexports and name not in seen:
            seen.add(name)
            name = self.reexports[name]
        return name

    def resolve(self, name: str) -> Optional[str]:
        """A dotted name -> function qualname, or None (unknown).

        Handles re-exports, classes (-> ``__init__``), and methods
        reached through a class name (``pkg.mod.Class.m``), including
        methods inherited from in-package bases.
        """
        name = self._follow_reexports(name)
        if name in self.functions:
            return name
        if name in self.classes:
            init = self._resolve_method(name, "__init__")
            return init
        # pkg.mod.Class.method with the method defined on a base.
        head, _, leaf = name.rpartition(".")
        if head:
            head = self._follow_reexports(head)
            if head in self.classes:
                return self._resolve_method(head, leaf)
            combined = f"{head}.{leaf}"
            if combined in self.functions:
                return combined
        return None

    def _resolve_method(
        self, class_qualname: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Class scan: find ``method`` on the class or its bases."""
        seen = _seen if _seen is not None else set()
        if class_qualname in seen:
            return None
        seen.add(class_qualname)
        info = self.classes.get(class_qualname)
        if info is None:
            return None
        if method in info.methods:
            return info.methods[method]
        for base in info.bases:
            base = self._follow_reexports(base)
            found = self._resolve_method(base, method, seen)
            if found is not None:
                return found
        return None

    def class_of(self, qualname: str) -> Optional[str]:
        """Dotted class name when ``qualname`` resolves to a class."""
        name = self._follow_reexports(qualname)
        return name if name in self.classes else None

    # -- link -----------------------------------------------------------

    def link(self) -> None:
        """Resolve every CallRef into edges (idempotent)."""
        self.functions.clear()
        self.classes.clear()
        self.reexports.clear()
        for summary in self.summaries:
            self.functions.update(summary.functions)
            self.classes.update(summary.classes)
            self.reexports.update(summary.reexports)
        self.edges = {q: [] for q in self.functions}
        self.unresolved = {q: [] for q in self.functions}
        for fn in self.functions.values():
            for ref in fn.calls:
                callee = self._resolve_ref(fn, ref)
                if callee is not None:
                    self.edges[fn.qualname].append((callee, ref.line))
                else:
                    self.unresolved[fn.qualname].append((ref.target, ref.line))
        self.callers = {}
        for caller, callees in self.edges.items():
            for callee, line in callees:
                self.callers.setdefault(callee, []).append((caller, line))

    def _resolve_ref(self, fn: FunctionInfo, ref: CallRef) -> Optional[str]:
        if ref.kind == "self":
            if fn.class_name is None:
                return None
            method = ref.target.split(".", 1)[1]
            return self._resolve_method(fn.class_name, method)
        if ref.kind == "super":
            if fn.class_name is None:
                return None
            cls = self.classes.get(fn.class_name)
            if cls is None:
                return None
            for base in cls.bases:
                base = self._follow_reexports(base)
                found = self._resolve_method(base, ref.target)
                if found is not None:
                    return found
            return None
        return self.resolve(ref.target)

    # -- queries used by the passes -------------------------------------

    def reachable_from(self, roots: Sequence[str]) -> Dict[str, Tuple[str, int]]:
        """BFS closure over call edges.

        Returns:
            reached qualname -> (caller it was first reached from, call
            line); roots map to themselves with line 0.
        """
        reached: Dict[str, Tuple[str, int]] = {
            root: (root, 0) for root in roots if root in self.functions
        }
        frontier = list(reached)
        while frontier:
            next_frontier: List[str] = []
            for caller in frontier:
                for callee, line in self.edges.get(caller, ()):
                    if callee not in reached:
                        reached[callee] = (caller, line)
                        next_frontier.append(callee)
            frontier = next_frontier
        return reached

    def suppressed_at(self, rel_path: str, line: int, rule: str) -> bool:
        """Whether a ``# repro: noqa`` comment covers (file, line, rule)."""
        for summary in self.summaries:
            if summary.rel_path != rel_path:
                continue
            if line not in summary.suppressions:
                return False
            rules = summary.suppressions[line]
            return rules is None or rule in rules
        return False
