#!/usr/bin/env python3
"""Bigtable A/B case study (the paper's Fig. 10).

Runs the Bigtable-like serving workload on two randomly sampled machine
groups — control (zswap off) and experiment (zswap on with the full node
agent) — and compares cold-memory coverage and the user-level IPC proxy.
The paper's findings: coverage 5-15% with ~3x temporal variation, and an
IPC delta within machine-to-machine noise.

Run:
    python examples/bigtable_case_study.py
"""

from __future__ import annotations

import numpy as np

from repro.agent import NodeAgent
from repro.analysis import render_table
from repro.common.rng import SeedSequenceFactory
from repro.common.units import GIB, HOUR
from repro.core import ThresholdPolicyConfig
from repro.kernel import FarMemoryMode, Machine, MachineConfig
from repro.workloads import BigtableApp, BigtableConfig

MACHINES_PER_GROUP = 4
SIM_HOURS = 12


def run_group(mode: FarMemoryMode, seed_base: int):
    """One A/B group: machines, Bigtable instances, optional node agents."""
    apps = []
    agents = []
    for i in range(MACHINES_PER_GROUP):
        seeds = SeedSequenceFactory(seed_base + i)
        machine = Machine(
            f"{mode.value}-{i}",
            MachineConfig(dram_bytes=2 * GIB, mode=mode),
            seeds=seeds,
        )
        rng = np.random.default_rng(seed_base + i)
        app = BigtableApp("bigtable", machine, BigtableConfig(), rng)
        apps.append((machine, app))
        if mode is FarMemoryMode.PROACTIVE:
            agents.append(
                NodeAgent(
                    machine,
                    ThresholdPolicyConfig(percentile_k=98, warmup_seconds=600),
                )
            )
    for t in range(0, SIM_HOURS * HOUR, 60):
        for machine, app in apps:
            app.step(t, 60)
            machine.tick(t)
        for agent in agents:
            agent.maybe_control(t)
    return apps


def main() -> None:
    print(f"Running {MACHINES_PER_GROUP}+{MACHINES_PER_GROUP} machines for "
          f"{SIM_HOURS} simulated hours...")
    control = run_group(FarMemoryMode.OFF, seed_base=100)
    experiment = run_group(FarMemoryMode.PROACTIVE, seed_base=100)

    def ipcs(group):
        return np.array(
            [s.user_ipc for _, app in group for s in app.samples]
        )

    control_ipc = ipcs(control)
    experiment_ipc = ipcs(experiment)
    delta_pct = 100.0 * (
        experiment_ipc.mean() - control_ipc.mean()
    ) / control_ipc.mean()
    noise_pct = 100.0 * control_ipc.std() / control_ipc.mean()

    coverages = np.array(
        [s.coverage for _, app in experiment for s in app.samples if
         s.coverage > 0]
    )

    print()
    print(
        render_table(
            ["metric", "control", "experiment"],
            [
                ("mean user IPC", f"{control_ipc.mean():.4f}",
                 f"{experiment_ipc.mean():.4f}"),
                ("IPC delta", "-", f"{delta_pct:+.2f}%"),
                ("machine noise (std)", f"{noise_pct:.2f}%", "-"),
                ("coverage p10", "-", f"{np.percentile(coverages, 10):.1%}"),
                ("coverage p50", "-", f"{np.percentile(coverages, 50):.1%}"),
                ("coverage p90", "-", f"{np.percentile(coverages, 90):.1%}"),
            ],
            title="Bigtable A/B (paper Fig. 10)",
        )
    )
    variation = (
        np.percentile(coverages, 90) / max(np.percentile(coverages, 10), 1e-9)
    )
    print(f"\n  temporal coverage variation p90/p10: {variation:.1f}x "
          "(paper observed ~3x)")
    verdict = "within" if abs(delta_pct) <= 2 * noise_pct else "OUTSIDE"
    print(f"  IPC delta is {verdict} the noise band "
          "(paper: within noise)")


if __name__ == "__main__":
    main()
