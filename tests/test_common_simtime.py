"""Clock and periodic schedules."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.simtime import Clock, PeriodicSchedule


class TestClock:
    def test_starts_at_zero(self):
        clock = Clock()
        assert clock.now == 0
        assert clock.tick_index == 0

    def test_advance_default_tick(self):
        clock = Clock(tick_seconds=60)
        clock.advance()
        assert clock.now == 60
        clock.advance(3)
        assert clock.now == 240
        assert clock.tick_index == 4

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-1)

    def test_non_positive_tick_rejected(self):
        with pytest.raises(ConfigurationError):
            Clock(tick_seconds=0)


class TestPeriodicSchedule:
    def test_fires_on_boundaries_only(self):
        schedule = PeriodicSchedule(period_seconds=120)
        fired = [t for t in range(0, 601, 60) if schedule.due(t)]
        assert fired == [0, 120, 240, 360, 480, 600]

    def test_edge_triggered_once_per_boundary(self):
        schedule = PeriodicSchedule(period_seconds=100)
        assert schedule.due(100)
        assert not schedule.due(100)
        assert not schedule.due(150)
        assert schedule.due(200)

    def test_catches_up_after_gap(self):
        schedule = PeriodicSchedule(period_seconds=60)
        assert schedule.due(0)
        # A large time jump fires once (not once per missed boundary).
        assert schedule.due(600)
        assert not schedule.due(601)

    def test_offset_delays_first_fire(self):
        schedule = PeriodicSchedule(period_seconds=100, offset_seconds=30)
        assert not schedule.due(0)
        assert not schedule.due(29)
        assert schedule.due(30)
        assert schedule.due(130)

    def test_reset_forgets_history(self):
        schedule = PeriodicSchedule(period_seconds=60)
        assert schedule.due(60)
        schedule.reset()
        assert schedule.due(60)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PeriodicSchedule(period_seconds=0)
        with pytest.raises(ValueError):
            PeriodicSchedule(period_seconds=10, offset_seconds=-1)
