"""The parallel fleet engine: sharded cluster ticks with exact merge.

Design (and why it is deterministic):

* **Fork, not spawn.**  Workers are forked per :meth:`FleetEngine.run`
  call, so each worker inherits a copy-on-write image of the fleet —
  including every in-flight numpy RNG state and the process hash salt
  that :meth:`Cluster._job_index` depends on.  A cluster therefore draws
  exactly the random stream it would have drawn serially; the per-cluster
  ``SeedSequenceFactory`` forks (``seeds.fork("cluster", index=c)``) make
  those streams independent of shard assignment by construction.

* **Barrier per simulated minute.**  Workers tick their clusters through
  a barrier chunk (default: one 60 s tick), then ship the interval's
  deltas — SLI samples tagged ``(tick, cluster)``, new trace entries,
  and a metric-registry delta — to the parent, which folds them in before
  releasing the next chunk.

* **Exact SLI order.**  The serial loop drains samples per tick in
  cluster order; workers tag each drained batch with its (tick, cluster
  index) so the parent reconstructs precisely that interleaving, making
  ``WSC.sli_history`` bit-identical to a serial run.

* **State reunification.**  At the end of the run each worker pickles its
  clusters back to the parent, which swaps them into the fleet and calls
  :meth:`Cluster.rebind_runtime` so metric handles, tracer spans, event
  subscriptions, and telemetry sinks all point at the parent's live
  objects again.  The fleet can keep running serially (or under a new
  engine) afterwards.

Trace-entry ordering across *different* jobs is canonicalized by
``(time, job_id)`` rather than by serial append order; per-job traces —
the unit every consumer reads — are byte-identical to serial.

The engine falls back to the serial loop (same results, one process)
when parallelism cannot help or would break determinism: a single
cluster, one worker, no ``fork`` support, or clusters sharing a mutable
churn job source.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checks.invariants import check_merge_delta, invariants_enabled
from repro.common.errors import ReproError, TraceError
from repro.common.validation import check_positive, require
from repro.engine.sharding import ShardPlan, plan_shards
from repro.obs import MetricName

__all__ = [
    "EngineError",
    "EngineStats",
    "FleetEngine",
    "default_worker_count",
    "fork_available",
]


class EngineError(ReproError):
    """The parallel engine failed (worker crash or protocol violation)."""


class _WorkerUnavailable(Exception):
    """A shard worker hung past the poll timeout or died silently.

    Internal signal, never raised to callers: the engine reacts by
    re-executing the failed shard serially in the parent (see
    :meth:`FleetEngine._fall_back_shard`).  A worker that *reports* an
    error keeps raising :class:`EngineError` instead — a deterministic
    crash would reproduce under the serial fallback too, so retrying it
    locally would only hide the bug.
    """


def fork_available() -> bool:
    """True when this platform supports fork-based multiprocessing."""
    return "fork" in mp.get_all_start_methods()


def default_worker_count() -> int:
    """Usable CPU count (affinity-aware where the OS exposes it)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class EngineStats:
    """What one :meth:`FleetEngine.run` call actually did.

    Attributes:
        mode: ``"parallel"`` or ``"serial"`` (the fallback path).
        workers: worker processes used (1 for serial).
        ticks: simulated ticks executed.
        barriers: barrier synchronizations performed (0 for serial).
        fallback_reason: why the serial path ran, if it did.
        shard_fallbacks: shards whose worker hung or died mid-run and
            were re-executed serially in the parent (degraded mode; the
            run still completes with serial-identical results).
    """

    mode: str
    workers: int
    ticks: int
    barriers: int
    fallback_reason: Optional[str] = None
    shard_fallbacks: int = 0


@dataclass
class _LocalShard:
    """A shard the parent took over after its worker went unresponsive.

    The shard's clusters (the parent's own, never-ticked copies) are
    caught up behind a scratch registry/tracer/trace database — their
    already-merged barriers must not be folded in twice — and then run
    in-parent for the rest of the run, staging trace entries so each
    barrier still merges through the canonical sorted path.
    """

    cluster_indices: Tuple[int, ...]
    staging_db: object
    reason: str = ""


def _worker_main(conn, fleet, cluster_indices: Tuple[int, ...],
                 ship_blocks: bool = False) -> None:
    """Worker loop: tick owned clusters between barriers, ship deltas.

    With ``ship_blocks`` (a fleet whose trace database speaks the
    zero-copy block protocol), each barrier's trace delta travels as one
    :class:`TelemetryBlock` of pending column rows instead of a list of
    re-materialized entries — the columns the forked store buffered are
    exactly the delta, because a worker never seals segments.
    """
    clusters = fleet.clusters
    registry = fleet.registry
    trace_db = fleet.trace_db
    tracer = fleet.tracer
    # The fork copied the parent's span history; reset so the stats this
    # worker reports at finalize are purely its own (a delta by design).
    tracer.reset()
    try:
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "advance":
                _, ticks, collect_sli = msg
                trace_mark = (
                    trace_db.block_marker() if ship_blocks
                    else trace_db.mark()
                )
                metric_base = registry.baseline()
                sli_batches: List[Tuple[int, int, list]] = []
                for tick_seq in range(ticks):
                    for ci in cluster_indices:
                        clusters[ci].tick()
                    if collect_sli:
                        for ci in cluster_indices:
                            samples = clusters[ci].drain_sli_samples()
                            if samples:
                                sli_batches.append((tick_seq, ci, samples))
                conn.send((
                    "ok",
                    sli_batches,
                    (trace_db.block_since(trace_mark) if ship_blocks
                     else trace_db.entries_since(trace_mark)),
                    registry.delta(metric_base),
                ))
            elif cmd == "finalize":
                # Detach the shared sinks before pickling: the parent
                # re-attaches its own via Cluster.rebind_runtime, and the
                # fleet-wide trace database would otherwise be duplicated
                # into every returned cluster.
                from repro.cluster.trace_db import TraceDatabase

                empty_db = TraceDatabase()
                owned = [clusters[ci] for ci in cluster_indices]
                for cluster in owned:
                    cluster.trace_db = empty_db
                    for exporter in cluster.exporters.values():
                        exporter.sink = empty_db
                conn.send(("clusters", owned, tracer.stats()))
            elif cmd == "exit":
                break
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", f"unknown command {cmd!r}"))
                break
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass
    except Exception:  # surface worker crashes to the parent
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class FleetEngine:
    """Parallel executor for one :class:`repro.cluster.wsc.WSC` fleet.

    Args:
        fleet: the fleet to drive.  The engine mutates it in place; after
            :meth:`run` returns, the fleet holds the advanced state exactly
            as if :meth:`WSC.run` had run serially.
        workers: worker processes (default: usable CPUs, clamped to the
            cluster count).
        barrier_seconds: simulated seconds per barrier chunk; the default
            of 60 synchronizes every simulated minute.
        recv_timeout_seconds: how long (wall-clock) to wait for a worker's
            barrier reply before declaring it hung and re-executing its
            shard serially in the parent; ``None`` waits forever (the
            pre-timeout behavior).
        ship_blocks: ship each barrier's trace delta as one zero-copy
            :class:`TelemetryBlock` instead of a list of entries.
            Defaults to auto-detection: on when the fleet's trace
            database speaks the block protocol (``block_since`` +
            ``add_block``, i.e. :class:`ColumnarTraceDatabase`).  Results
            are bit-identical either way; tests pin it False to run the
            entry-shipping oracle.
    """

    def __init__(self, fleet, workers: Optional[int] = None,
                 barrier_seconds: int = 60,
                 recv_timeout_seconds: Optional[float] = 300.0,
                 ship_blocks: Optional[bool] = None):
        check_positive(barrier_seconds, "barrier_seconds")
        self.fleet = fleet
        if workers is None:
            workers = default_worker_count()
        check_positive(workers, "workers")
        if recv_timeout_seconds is not None:
            check_positive(recv_timeout_seconds, "recv_timeout_seconds")
        self.workers = min(int(workers), len(fleet.clusters))
        self.barrier_seconds = int(barrier_seconds)
        self.recv_timeout_seconds = recv_timeout_seconds
        if ship_blocks is None:
            ship_blocks = hasattr(fleet.trace_db, "block_since") and hasattr(
                fleet.trace_db, "add_block"
            )
        self.ship_blocks = bool(ship_blocks)
        self.last_stats: Optional[EngineStats] = None

    # ------------------------------------------------------------------
    # Parallelizability
    # ------------------------------------------------------------------

    def parallelizable(self) -> Tuple[bool, Optional[str]]:
        """Whether a run would take the parallel path, and if not, why."""
        if len(self.fleet.clusters) < 2:
            return False, "fewer than 2 clusters"
        if self.workers < 2:
            return False, "fewer than 2 workers"
        if not fork_available():
            return False, "platform lacks fork start method"
        if self._has_shared_churn_source():
            return False, "clusters share a mutable churn job source"
        return True, None

    def _has_shared_churn_source(self) -> bool:
        """Detect one mutable job generator feeding several clusters.

        Cluster churn draws specs from ``cluster._job_source`` (usually a
        bound ``FleetMixGenerator.next_job``).  A generator shared by two
        clusters sequences its draws by global tick interleaving, which a
        sharded run cannot reproduce — so such fleets run serially.
        """
        owners = []
        for cluster in self.fleet.clusters:
            source = getattr(cluster, "_job_source", None)
            if source is None:
                continue
            # Identity only detects aliasing within THIS process; the
            # result never reaches simulation state.
            owners.append(id(getattr(source, "__self__", source)))  # repro: noqa[FLOW001]
        return len(owners) != len(set(owners))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, seconds: int, collect_sli: bool = True) -> EngineStats:
        """Advance the fleet by ``seconds``; returns what was executed."""
        check_positive(seconds, "seconds")
        tick_seconds = self.fleet.clusters[0].clock.tick_seconds
        total_ticks = math.ceil(seconds / tick_seconds)
        ok, reason = self.parallelizable()
        if not ok:
            self._run_serial(total_ticks, collect_sli)
            self.last_stats = EngineStats(
                mode="serial", workers=1, ticks=total_ticks, barriers=0,
                fallback_reason=reason,
            )
            return self.last_stats

        barrier_ticks = max(1, self.barrier_seconds // tick_seconds)
        shards = plan_shards(
            [len(c.machines) for c in self.fleet.clusters], self.workers
        )
        barriers, shard_fallbacks = self._run_parallel(
            shards, total_ticks, barrier_ticks, collect_sli
        )
        self.last_stats = EngineStats(
            mode="parallel", workers=len(shards), ticks=total_ticks,
            barriers=barriers, shard_fallbacks=shard_fallbacks,
        )
        return self.last_stats

    def _run_serial(self, total_ticks: int, collect_sli: bool) -> None:
        """The exact serial loop (shared fallback path)."""
        fleet = self.fleet
        for _ in range(total_ticks):
            for cluster in fleet.clusters:
                cluster.tick()
            if collect_sli:
                for cluster in fleet.clusters:
                    fleet.sli_history.extend(cluster.drain_sli_samples())

    def _run_parallel(self, shards: Sequence[ShardPlan], total_ticks: int,
                      barrier_ticks: int,
                      collect_sli: bool) -> Tuple[int, int]:
        fleet = self.fleet
        ctx = mp.get_context("fork")
        conns: List[Optional[object]] = []
        procs = []
        local_shards: Dict[int, _LocalShard] = {}
        try:
            for shard in shards:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, fleet, shard.cluster_indices,
                          self.ship_blocks),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                conns.append(parent_conn)
                procs.append(proc)

            barriers = 0
            ticks_done = 0
            remaining = total_ticks
            while remaining > 0:
                chunk = min(barrier_ticks, remaining)
                for si, conn in enumerate(conns):
                    if si in local_shards:
                        continue
                    try:
                        conn.send(("advance", chunk, collect_sli))
                    except (BrokenPipeError, OSError):
                        self._fall_back_shard(
                            si, shards, conns, procs, local_shards,
                            ticks_done, collect_sli,
                            "worker pipe broke at barrier send",
                        )
                # Shards already running in-parent execute their chunk
                # while the workers tick theirs.
                local_results = [
                    self._advance_local(local_shards[si], chunk, collect_sli)
                    for si in sorted(local_shards)
                ]
                self._merge_barrier(
                    shards, conns, procs, local_shards, collect_sli,
                    chunk, ticks_done, local_results,
                )
                remaining -= chunk
                ticks_done += chunk
                barriers += 1

            self._finalize(shards, conns, procs, local_shards, total_ticks,
                           collect_sli)
            for si, conn in enumerate(conns):
                if si in local_shards or conn is None:
                    continue
                try:
                    conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
            for proc in procs:
                if proc.is_alive():
                    proc.join(timeout=30)
            return barriers, len(local_shards)
        finally:
            for conn in conns:
                if conn is not None:
                    conn.close()
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join()

    def _recv(self, conn):
        """One protocol reply, or :class:`_WorkerUnavailable` on hang/death.

        A hung worker would otherwise block ``conn.recv()`` forever and
        take the whole run with it; polling with a timeout turns that
        into a recoverable degradation.  Workers that *report* a failure
        stay fatal (:class:`EngineError`) — see :class:`_WorkerUnavailable`.
        """
        try:
            if self.recv_timeout_seconds is not None and not conn.poll(
                self.recv_timeout_seconds
            ):
                raise _WorkerUnavailable(
                    f"no reply within {self.recv_timeout_seconds:g}s"
                )
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            # A clean close raises EOFError; an abrupt worker death can
            # surface as ConnectionResetError (an OSError) instead.
            raise _WorkerUnavailable("worker died mid-run") from exc
        if reply[0] == "error":
            raise EngineError(f"engine worker failed:\n{reply[1]}")
        return reply

    # ------------------------------------------------------------------
    # Shard fallback (degraded mode)
    # ------------------------------------------------------------------

    def _fall_back_shard(self, si: int, shards, conns, procs, local_shards,
                         ticks_done: int, collect_sli: bool,
                         reason: str) -> _LocalShard:
        """Take over a shard whose worker hung or died.

        The worker is terminated and the shard's clusters — the parent's
        own copies, still at their pre-run state thanks to fork
        copy-on-write — are replayed up to the last fully-merged barrier
        behind scratch observability objects (those ticks' deltas were
        already folded in from the worker, so replay output is
        discarded), then re-bound to the live fleet for the rest of the
        run.  Replay is deterministic, so the final state is identical
        to what the healthy worker would have produced.
        """
        proc = procs[si]
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5)
        conn = conns[si]
        if conn is not None:
            conn.close()
            conns[si] = None
        local_shard = self._catch_up_shard(
            shards[si].cluster_indices, ticks_done, collect_sli, reason
        )
        local_shards[si] = local_shard
        self.fleet.registry.counter(
            MetricName.ENGINE_SHARD_FALLBACKS_TOTAL,
            "Shards re-executed serially after their worker hung or died.",
        ).inc()
        return local_shard

    def _catch_up_shard(self, cluster_indices: Tuple[int, ...],
                        ticks_done: int, collect_sli: bool,
                        reason: str) -> _LocalShard:
        """Replay a shard to ``ticks_done`` and re-wire it for live use."""
        from repro.cluster.trace_db import TraceDatabase
        from repro.obs import MetricRegistry, Tracer

        fleet = self.fleet
        clusters = [fleet.clusters[ci] for ci in cluster_indices]
        scratch_registry = MetricRegistry()
        scratch_tracer = Tracer(enabled=False)
        scratch_db = TraceDatabase()
        for cluster in clusters:
            cluster.rebind_runtime(scratch_registry, scratch_tracer,
                                   scratch_db)
        for _ in range(ticks_done):
            for cluster in clusters:
                cluster.tick()
            if collect_sli:
                for cluster in clusters:
                    cluster.drain_sli_samples()  # already merged; discard
        # From here on the shard runs against the real fleet; trace
        # entries stage in a private database so each barrier can still
        # merge them through the canonical sorted path.
        staging_db = TraceDatabase()
        for cluster in clusters:
            cluster.rebind_runtime(fleet.registry, fleet.tracer, staging_db)
        return _LocalShard(
            cluster_indices=tuple(cluster_indices),
            staging_db=staging_db,
            reason=reason,
        )

    def _advance_local(self, local_shard: _LocalShard, chunk: int,
                       collect_sli: bool) -> Tuple[list, list]:
        """Run one barrier chunk of a taken-over shard in the parent.

        Mirrors the worker protocol: SLI batches come back tagged
        ``(tick_seq, cluster_index)`` and trace entries as the staging
        database's delta, so :meth:`_merge_barrier` interleaves them with
        the surviving workers' output exactly as a healthy run would.
        """
        fleet = self.fleet
        mark = local_shard.staging_db.mark()
        sli_batches: List[Tuple[int, int, list]] = []
        for tick_seq in range(chunk):
            for ci in local_shard.cluster_indices:
                fleet.clusters[ci].tick()
            if collect_sli:
                for ci in local_shard.cluster_indices:
                    samples = fleet.clusters[ci].drain_sli_samples()
                    if samples:
                        sli_batches.append((tick_seq, ci, samples))
        return sli_batches, local_shard.staging_db.entries_since(mark)

    # ------------------------------------------------------------------
    # Barrier merge & finalize
    # ------------------------------------------------------------------

    def _merge_barrier(self, shards, conns, procs, local_shards,
                       collect_sli: bool, chunk: int, ticks_done: int,
                       local_results: List[Tuple[list, list]]) -> None:
        """Fold one barrier interval's deltas back into the parent fleet.

        Worker replies are collected (and failures handled) *before*
        anything is folded in, so a mid-barrier failure never leaves the
        fleet holding half a barrier.  A worker that fails here is fallen
        back exactly like one that failed at send time: its shard is
        caught up to ``ticks_done`` and the current chunk is re-executed
        in-parent, joining this barrier's merge.
        """
        # Imported here, not at module top: repro.model's package init
        # pulls in the model bench, which imports this module back.
        from repro.model.trace import TelemetryBlock

        fleet = self.fleet
        sli_batches: List[Tuple[int, int, list]] = []
        trace_entries = []
        trace_blocks: List[TelemetryBlock] = []
        metric_deltas = []
        for si, conn in enumerate(conns):
            if si in local_shards:
                continue
            try:
                _, batches, entries, metric_delta = self._recv(conn)
            except _WorkerUnavailable as exc:
                self._fall_back_shard(
                    si, shards, conns, procs, local_shards,
                    ticks_done, collect_sli, str(exc),
                )
                local_results.append(self._advance_local(
                    local_shards[si], chunk, collect_sli
                ))
                continue
            sli_batches.extend(batches)
            if isinstance(entries, TelemetryBlock):
                trace_blocks.append(entries)
            elif entries:
                trace_entries.extend(entries)
            metric_deltas.append(metric_delta)
        for batches, entries in local_results:
            sli_batches.extend(batches)
            if isinstance(entries, TelemetryBlock):
                trace_blocks.append(entries)
            elif entries:
                trace_entries.extend(entries)
        for metric_delta in metric_deltas:
            if invariants_enabled():
                check_merge_delta(metric_delta)
            fleet.registry.merge(metric_delta)
        if collect_sli:
            # Reconstruct the serial drain order: per tick, cluster order.
            sli_batches.sort(key=lambda batch: (batch[0], batch[1]))
            for _, _, samples in sli_batches:
                fleet.sli_history.extend(samples)
        # Canonical cross-job order; per-job order is already serial-exact
        # because every job lives on exactly one shard.  When every shard
        # shipped a block and the parent database speaks blocks, the whole
        # barrier folds in as one concatenated, lexsorted block — no entry
        # objects anywhere.  A mixed barrier (e.g. a fallback shard staging
        # into an in-memory database, or a fault scenario downgrading a
        # worker's sink) degrades to the entry path for exactly that
        # barrier; both folds commit one chunk per barrier, so the sealed
        # segments come out identical either way.
        if trace_blocks and not trace_entries and hasattr(
            fleet.trace_db, "add_block"
        ):
            try:
                merged = TelemetryBlock.concat(
                    trace_blocks
                ).sorted_by_time_job()
            except TraceError:
                # Mixed threshold grids across shards: legal for the
                # per-entry store path, so fall through to it.
                for block in trace_blocks:
                    trace_entries.extend(block.entries())
            else:
                fleet.trace_db.add_block(merged)
                return
        else:
            for block in trace_blocks:
                trace_entries.extend(block.entries())
        trace_entries.sort(key=lambda e: (e.time, e.job_id))
        if not trace_entries:
            return
        if hasattr(fleet.trace_db, "add_batch"):
            fleet.trace_db.add_batch(trace_entries)
        else:
            for entry in trace_entries:
                fleet.trace_db.add(entry)

    def _finalize(self, shards: Sequence[ShardPlan], conns, procs,
                  local_shards: Dict[int, _LocalShard], total_ticks: int,
                  collect_sli: bool) -> None:
        """Swap worker cluster state into the parent and re-wire it.

        Shards the parent already took over are re-pointed from their
        staging database to the fleet's; a worker that hangs *here* is
        recovered by replaying its whole run behind scratch objects
        (every barrier was merged, so only the end-state is needed).
        """
        fleet = self.fleet
        for si, conn in enumerate(conns):
            if si in local_shards:
                continue
            try:
                conn.send(("finalize",))
            except (BrokenPipeError, OSError):
                self._fall_back_shard(
                    si, shards, conns, procs, local_shards,
                    total_ticks, collect_sli,
                    "worker pipe broke at finalize",
                )
        new_clusters = list(fleet.clusters)
        swapped = []
        for si, (shard, conn) in enumerate(zip(shards, conns)):
            if si in local_shards:
                continue
            try:
                _, shard_clusters, span_stats = self._recv(conn)
            except _WorkerUnavailable as exc:
                self._fall_back_shard(
                    si, shards, conns, procs, local_shards,
                    total_ticks, collect_sli, str(exc),
                )
                continue
            require(
                len(shard_clusters) == len(shard.cluster_indices),
                "worker returned wrong cluster count",
            )
            for ci, cluster in zip(shard.cluster_indices, shard_clusters):
                new_clusters[ci] = cluster
                swapped.append(cluster)
            fleet.tracer.merge(span_stats)
        fleet.clusters = new_clusters  # setter invalidates machine cache
        for cluster in swapped:
            cluster.rebind_runtime(fleet.registry, fleet.tracer,
                                   fleet.trace_db)
        # Taken-over shards hold the parent's own (already advanced)
        # clusters; just point their telemetry back at the fleet.
        for si in sorted(local_shards):
            for ci in local_shards[si].cluster_indices:
                fleet.clusters[ci].rebind_runtime(
                    fleet.registry, fleet.tracer, fleet.trace_db
                )
