"""The parallel fleet engine: sharding, delta merge, serial equivalence."""

import pickle

import pytest

from repro.cluster import quickfleet
from repro.common.errors import ConfigurationError
from repro.common.units import HOUR
from repro.engine import (
    FleetEngine,
    ShardPlan,
    fork_available,
    plan_shards,
)
from repro.obs import MetricRegistry, Tracer


def _churn_fleet(seed=7, clusters=3):
    """A small churning fleet with private observability objects."""
    return quickfleet(
        clusters=clusters,
        machines_per_cluster=2,
        jobs_per_machine=3,
        seed=seed,
        churn_duration_range=(1800, 7200),
        registry=MetricRegistry(),
        tracer=Tracer(),
    )


class TestShardPlanning:
    def test_balanced_lpt_assignment(self):
        plans = plan_shards([8, 1, 1, 1, 1, 4], workers=2)
        assert len(plans) == 2
        # LPT: the size-8 cluster alone, the rest together (8 vs 8).
        weights = sorted(p.weight for p in plans)
        assert weights == [8.0, 8.0]

    def test_indices_ascending_and_plans_ordered(self):
        plans = plan_shards([3, 5, 2, 5, 1], workers=3)
        for plan in plans:
            assert list(plan.cluster_indices) == sorted(plan.cluster_indices)
        firsts = [p.cluster_indices[0] for p in plans]
        assert firsts == sorted(firsts)

    def test_every_cluster_assigned_exactly_once(self):
        plans = plan_shards([2, 2, 2, 2, 2, 2, 2], workers=3)
        assigned = [i for p in plans for i in p.cluster_indices]
        assert sorted(assigned) == list(range(7))

    def test_more_workers_than_clusters_drops_empty_shards(self):
        plans = plan_shards([1, 1], workers=8)
        assert len(plans) == 2

    def test_deterministic(self):
        a = plan_shards([5, 3, 3, 2, 8], workers=3)
        b = plan_shards([5, 3, 3, 2, 8], workers=3)
        assert a == b

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ConfigurationError):
            plan_shards([], workers=2)
        with pytest.raises(ConfigurationError):
            plan_shards([1, 2], workers=0)


class TestRegistryDeltaMerge:
    def test_counter_delta_ships_increment_only(self):
        reg = MetricRegistry()
        c = reg.counter("repro_pages_total", "Pages.", ("machine",))
        c.labels(machine="m0").inc(5)
        base = reg.baseline()
        c.labels(machine="m0").inc(3)
        c.labels(machine="m1").inc(2)
        delta = reg.delta(base)
        by_label = {
            tuple(sorted(r["labels"].items())): r["value"] for r in delta
        }
        assert by_label[(("machine", "m0"),)] == 3
        assert by_label[(("machine", "m1"),)] == 2

    def test_merge_reconstructs_totals(self):
        parent = MetricRegistry()
        parent.counter(
            "repro_pages_total", "Pages.", ("machine",)
        ).labels(machine="m0").inc(5)

        shard = MetricRegistry()
        c = shard.counter("repro_pages_total", "Pages.", ("machine",))
        c.labels(machine="m0").inc(5)  # fork-time copy
        base = shard.baseline()
        c.labels(machine="m0").inc(7)
        parent.merge(shard.delta(base))
        assert parent.value("repro_pages_total") == 12

    def test_merge_histogram_buckets_and_sum(self):
        parent = MetricRegistry()
        shard = MetricRegistry()
        h = shard.histogram("repro_lat_seconds", "Latency.",
                            buckets=(0.1, 1.0))
        base = shard.baseline()
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        parent.merge(shard.delta(base))
        merged = parent.histogram("repro_lat_seconds")
        assert merged.count == 3
        assert merged.sum == pytest.approx(5.55)

    def test_merge_gauge_takes_absolute_value(self):
        parent = MetricRegistry()
        parent.gauge("repro_g").set(1.0)
        shard = MetricRegistry()
        base = shard.baseline()
        shard.gauge("repro_g").set(42.0)
        parent.merge(shard.delta(base))
        assert parent.gauge("repro_g").value == 42.0

    def test_unchanged_series_not_shipped(self):
        reg = MetricRegistry()
        reg.counter("repro_c_total").inc(4)
        reg.gauge("repro_g").set(2.0)
        base = reg.baseline()
        assert reg.delta(base) == []


class TestTracerMerge:
    def test_span_stats_fold_in(self):
        parent = Tracer()
        with parent.span("cluster.tick"):
            pass
        shard = Tracer()
        for _ in range(3):
            with shard.span("cluster.tick"):
                pass
        with shard.span("kstaled.scan"):
            pass
        parent.merge(shard.stats())
        stats = parent.stats()
        assert stats["cluster.tick"].calls == 4
        assert stats["kstaled.scan"].calls == 1


class TestFallbacks:
    def test_single_cluster_runs_serially(self):
        fleet = _churn_fleet(clusters=1)
        engine = FleetEngine(fleet, workers=4)
        stats = engine.run(600)
        assert stats.mode == "serial"
        assert stats.fallback_reason == "fewer than 2 clusters"

    def test_single_worker_runs_serially(self):
        fleet = _churn_fleet()
        stats = FleetEngine(fleet, workers=1).run(600)
        assert stats.mode == "serial"

    def test_shared_churn_source_detected(self):
        fleet = _churn_fleet()
        # Rewire every cluster to one shared generator method, the
        # configuration the engine must refuse to shard.
        source = fleet.clusters[0]._job_source
        for cluster in fleet.clusters:
            cluster._job_source = source
        engine = FleetEngine(fleet, workers=2)
        ok, reason = engine.parallelizable()
        assert not ok
        assert "churn" in reason

    def test_serial_fallback_matches_wsc_run(self):
        a = _churn_fleet()
        b = _churn_fleet()
        a.run(1 * HOUR)
        stats = FleetEngine(b, workers=1).run(1 * HOUR)
        assert stats.mode == "serial"
        assert a.coverage_report() == b.coverage_report()
        assert a.sli_history == b.sli_history


class TestClusterPickling:
    def test_cluster_roundtrips_through_pickle(self):
        fleet = _churn_fleet()
        fleet.run(600)
        cluster = fleet.clusters[0]
        clone = pickle.loads(pickle.dumps(cluster))
        assert clone.name == cluster.name
        assert set(clone.running) == set(cluster.running)
        # Event subscribers are dropped by EventLog.__getstate__ (they
        # close over unpicklable runtime objects) and re-wired on rebind.
        assert clone.events._subscribers == []


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestParallelEquivalence:
    @pytest.fixture(scope="class")
    def pair(self):
        """One serial and one engine-driven run of the same fleet."""
        serial = _churn_fleet()
        parallel = _churn_fleet()
        serial.run(2 * HOUR)
        engine = FleetEngine(parallel, workers=2)
        stats = engine.run(2 * HOUR)
        return serial, parallel, stats

    def test_parallel_path_taken(self, pair):
        _, _, stats = pair
        assert stats.mode == "parallel"
        assert stats.workers == 2
        assert stats.barriers == stats.ticks  # 60 s barrier, 60 s tick

    def test_coverage_reports_identical(self, pair):
        serial, parallel, _ = pair
        assert serial.coverage_report() == parallel.coverage_report()

    def test_sli_histories_identical(self, pair):
        serial, parallel, _ = pair
        assert len(serial.sli_history) > 0
        assert serial.sli_history == parallel.sli_history

    def test_traces_identical_per_job(self, pair):
        serial, parallel, _ = pair
        assert serial.trace_db.job_ids == parallel.trace_db.job_ids
        for job_id in serial.trace_db.job_ids:
            a = [e.to_dict()
                 for e in serial.trace_db.trace_for(job_id).entries]
            b = [e.to_dict()
                 for e in parallel.trace_db.trace_for(job_id).entries]
            assert a == b

    def test_integer_counters_identical(self, pair):
        serial, parallel, _ = pair
        pick = lambda fleet: {
            key: value
            for key, value in fleet.registry.baseline().items()
            if key[0] in ("repro_pages_scanned_total",
                          "repro_pages_promoted_total",
                          "repro_pages_compressed_total")
        }
        a, b = pick(serial), pick(parallel)
        assert a and a == b

    def test_tracer_span_calls_identical(self, pair):
        serial, parallel, _ = pair
        a = {k: v.calls for k, v in serial.tracer.stats().items()}
        b = {k: v.calls for k, v in parallel.tracer.stats().items()}
        assert a and a == b

    def test_fleet_continues_identically_after_engine_run(self, pair):
        serial, parallel, _ = pair
        serial.run(30 * 60)
        parallel.run(30 * 60)  # plain serial WSC.run on rebound state
        assert serial.coverage_report() == parallel.coverage_report()
        assert serial.sli_history == parallel.sli_history


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestWorkerFailureFallback:
    """A hung or dead worker degrades to an in-parent serial re-execution
    of its shard — the run completes with serial-identical results.

    Span-profile equality is deliberately not asserted here: the failed
    worker never reports its tracer stats, so profiling under
    degradation is best-effort by design.
    """

    def run_degraded(self, monkeypatch, patched_worker):
        import repro.engine.parallel as par

        serial = _churn_fleet(seed=13)
        degraded = _churn_fleet(seed=13)
        serial.run(1 * HOUR)
        monkeypatch.setattr(par, "_worker_main", patched_worker)
        engine = FleetEngine(degraded, workers=2, recv_timeout_seconds=2.0)
        stats = engine.run(1 * HOUR)
        return serial, degraded, stats

    def test_hung_worker_finishes_via_serial_fallback(self, monkeypatch):
        import time

        import repro.engine.parallel as par

        real = par._worker_main

        def hang_shard_zero(conn, fleet, cluster_indices, *args):
            if 0 in cluster_indices:
                time.sleep(600)  # never replies; parent terminates us
            real(conn, fleet, cluster_indices, *args)

        serial, degraded, stats = self.run_degraded(
            monkeypatch, hang_shard_zero
        )
        assert stats.mode == "parallel"
        assert stats.shard_fallbacks == 1
        assert degraded.registry.value(
            "repro_engine_shard_fallbacks_total") == 1
        assert serial.sli_history == degraded.sli_history
        assert serial.coverage_report() == degraded.coverage_report()
        for job_id in serial.trace_db.job_ids:
            a = [e.to_dict()
                 for e in serial.trace_db.trace_for(job_id).entries]
            b = [e.to_dict()
                 for e in degraded.trace_db.trace_for(job_id).entries]
            assert a == b

    def test_dead_worker_finishes_via_serial_fallback(self, monkeypatch):
        import repro.engine.parallel as par

        real = par._worker_main

        def die_on_shard_zero(conn, fleet, cluster_indices, *args):
            if 0 in cluster_indices:
                conn.close()  # silent death: EOF at the parent
                return
            real(conn, fleet, cluster_indices, *args)

        serial, degraded, stats = self.run_degraded(
            monkeypatch, die_on_shard_zero
        )
        assert stats.mode == "parallel"
        assert stats.shard_fallbacks == 1
        assert serial.sli_history == degraded.sli_history
        assert serial.coverage_report() == degraded.coverage_report()

    def test_reported_worker_error_still_raises(self, monkeypatch):
        from repro.engine.parallel import EngineError

        import repro.engine.parallel as par

        def report_error(conn, fleet, cluster_indices, *args):
            # Follow the protocol (wait for a command) before replying,
            # otherwise the parent's send may hit a broken pipe and be
            # treated as a recoverable worker loss instead.
            conn.recv()
            conn.send(("error", "synthetic worker crash"))
            conn.close()

        monkeypatch.setattr(par, "_worker_main", report_error)
        fleet = _churn_fleet(seed=13)
        engine = FleetEngine(fleet, workers=2, recv_timeout_seconds=5.0)
        with pytest.raises(EngineError, match="synthetic worker crash"):
            engine.run(600)

    def test_rejects_nonpositive_timeout(self):
        from repro.common.errors import ConfigurationError

        fleet = _churn_fleet(seed=13)
        with pytest.raises(ConfigurationError):
            FleetEngine(fleet, workers=2, recv_timeout_seconds=0)


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_wsc_run_delegates_to_engine():
    serial = _churn_fleet(seed=11)
    parallel = _churn_fleet(seed=11)
    serial.run(1 * HOUR)
    engine = FleetEngine(parallel, workers=2)
    parallel.run(1 * HOUR, engine=engine)
    assert engine.last_stats is not None
    assert engine.last_stats.mode == "parallel"
    assert serial.coverage_report() == parallel.coverage_report()
