"""Event log behaviour."""

import pytest

from repro.common.events import Event, EventLog


def test_record_and_iterate():
    log = EventLog()
    log.record(0, "a.start", x=1)
    log.record(5, "a.stop")
    assert len(log) == 2
    kinds = [e.kind for e in log]
    assert kinds == ["a.start", "a.stop"]


def test_payload_preserved():
    log = EventLog()
    event = log.record(3, "scheduler.evict", job="j1", machine="m0")
    assert event.payload == {"job": "j1", "machine": "m0"}
    assert event.time == 3


def test_of_kind_exact_and_nested():
    log = EventLog()
    log.record(0, "scheduler.place")
    log.record(1, "scheduler.evict")
    log.record(2, "machine.oom")
    log.record(3, "scheduler")
    assert len(log.of_kind("scheduler")) == 3
    assert len(log.of_kind("scheduler.place")) == 1
    # Prefix matching is on dotted segments, not raw strings.
    assert len(log.of_kind("sched")) == 0


def test_between_is_half_open():
    log = EventLog()
    for t in range(5):
        log.record(t, "tick")
    assert [e.time for e in log.between(1, 4)] == [1, 2, 3]


def test_bounded_log_drops_oldest():
    log = EventLog(max_events=3)
    for t in range(5):
        log.record(t, "tick", index=t)
    assert len(log) == 3
    assert [e.payload["index"] for e in log] == [2, 3, 4]
    assert log.dropped_count == 2


def test_bad_bound_rejected():
    with pytest.raises(ValueError):
        EventLog(max_events=0)


def test_clear():
    log = EventLog()
    log.record(0, "x")
    log.clear()
    assert len(log) == 0


def test_events_are_frozen():
    event = Event(time=0, kind="x")
    with pytest.raises(AttributeError):
        event.time = 1


def test_subscribe_prefix_matching():
    log = EventLog()
    seen = []
    log.subscribe("zswap", seen.append)
    log.record(0, "zswap.store")
    log.record(1, "zswap")
    log.record(2, "zswapper.other")  # raw-string prefix must NOT match
    log.record(3, "scheduler.evict")
    assert [e.kind for e in seen] == ["zswap.store", "zswap"]


def test_subscribe_empty_prefix_matches_all():
    log = EventLog()
    seen = []
    log.subscribe("", seen.append)
    log.record(0, "a")
    log.record(1, "b.c")
    assert len(seen) == 2


def test_unsubscribe_stops_delivery():
    log = EventLog()
    seen = []
    unsubscribe = log.subscribe("", seen.append)
    log.record(0, "a")
    unsubscribe()
    unsubscribe()  # idempotent
    log.record(1, "b")
    assert [e.kind for e in seen] == ["a"]


def test_subscribers_see_events_a_bounded_log_drops():
    log = EventLog(max_events=2)
    seen = []
    log.subscribe("tick", seen.append)
    for t in range(5):
        log.record(t, "tick")
    # History lost the oldest three, notifications lost nothing.
    assert len(log) == 2
    assert log.dropped_count == 3
    assert len(seen) == 5
