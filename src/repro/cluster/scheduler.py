"""A Borg-like cluster scheduler (paper §4.2, §5.1 context).

The paper's control plane leans on the cluster scheduler in two ways:

* **eviction as the escape hatch** — when decompression bursts exhaust a
  machine, low-priority jobs are killed and rescheduled elsewhere; the
  scheduler offers users an *eviction SLO* (never breached in 18 months);
* **fail-fast** — jobs at their memory limit are killed rather than
  swapped, matching how the scheduler treats best-effort overruns.

This scheduler implements best-fit-decreasing placement with configurable
memory overcommit (far memory savings are what make overcommit safe), and
priority-ordered eviction with SLO accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.errors import SchedulingError
from repro.common.events import EventKind, EventLog
from repro.common.validation import check_non_negative
from repro.kernel.machine import Machine
from repro.workloads.job_generator import JobSpec

__all__ = ["EvictionSloTracker", "BorgScheduler", "Placement"]


@dataclass(frozen=True)
class Placement:
    """A placement decision: which machine got the job."""

    job_id: str
    machine_id: str


@dataclass
class EvictionSloTracker:
    """Tracks the eviction SLO: evictions per job per unit time.

    Attributes:
        max_evictions_per_job_per_day: the offered SLO.
        evictions: per-job eviction timestamps.
    """

    max_evictions_per_job_per_day: float = 1.0
    evictions: Dict[str, List[int]] = field(default_factory=dict)

    def record(self, job_id: str, time: int) -> None:
        """Record one eviction of ``job_id``."""
        self.evictions.setdefault(job_id, []).append(time)

    def violations(self, window_seconds: int = 86400) -> List[str]:
        """Jobs evicted more often than the SLO allows in any window."""
        limit = self.max_evictions_per_job_per_day * (window_seconds / 86400.0)
        violators = []
        for job_id, times in self.evictions.items():
            times = sorted(times)
            for i, start in enumerate(times):
                in_window = sum(1 for t in times[i:] if t < start + window_seconds)
                if in_window > limit:
                    violators.append(job_id)
                    break
        return violators


class BorgScheduler:
    """Places jobs on machines; evicts best-effort jobs under pressure.

    Args:
        machines: the machines this scheduler manages.
        overcommit: fraction of extra logical memory schedulable beyond
            DRAM (0.0 = no overcommit; far memory savings justify > 0).
        strategy: ``"best_fit"`` packs jobs tightly (bin-packing);
            ``"spread"`` places each job on the least-committed machine
            (load balancing, Borg's default bias for serving jobs).
        events: optional shared event log.
    """

    STRATEGIES = ("best_fit", "spread")

    def __init__(
        self,
        machines: Sequence[Machine],
        overcommit: float = 0.0,
        strategy: str = "best_fit",
        events: Optional[EventLog] = None,
    ):
        check_non_negative(overcommit, "overcommit")
        if strategy not in self.STRATEGIES:
            raise SchedulingError(
                f"unknown placement strategy {strategy!r}; "
                f"known: {self.STRATEGIES}"
            )
        self.strategy = strategy
        if not machines:
            raise SchedulingError("scheduler needs at least one machine")
        self.machines: Dict[str, Machine] = {m.machine_id: m for m in machines}
        if len(self.machines) != len(machines):
            raise SchedulingError("duplicate machine ids")
        self.overcommit = overcommit
        self.events = events if events is not None else EventLog(max_events=100_000)
        #: Logical bytes committed per machine (sum of placed specs).
        self.committed: Dict[str, int] = {m.machine_id: 0 for m in machines}
        self.placements: Dict[str, str] = {}
        self.offline: set = set()
        self._specs: Dict[str, JobSpec] = {}
        self.eviction_slo = EvictionSloTracker()
        self.evictions_total = 0

    def capacity_of(self, machine_id: str) -> int:
        """Schedulable logical bytes on a machine."""
        machine = self.machines[machine_id]
        return int(machine.config.dram_bytes * (1.0 + self.overcommit))

    def place(self, spec: JobSpec, now: int = 0) -> Placement:
        """Place a job per the configured strategy.

        Raises:
            SchedulingError: when no machine has room.
        """
        if spec.job_id in self.placements:
            raise SchedulingError(f"job {spec.job_id} already placed")
        best_id = None
        best_slack = None
        for machine_id in self.machines:
            if machine_id in self.offline:
                continue
            slack = (
                self.capacity_of(machine_id)
                - self.committed[machine_id]
                - spec.bytes
            )
            if slack < 0:
                continue
            if self.strategy == "best_fit":
                better = best_slack is None or slack < best_slack
            else:  # spread: most remaining room wins
                better = best_slack is None or slack > best_slack
            if better:
                best_id, best_slack = machine_id, slack
        if best_id is None:
            raise SchedulingError(
                f"no machine can fit job {spec.job_id} ({spec.bytes} bytes)"
            )
        self.committed[best_id] += spec.bytes
        self.placements[spec.job_id] = best_id
        self._specs[spec.job_id] = spec
        self.events.record(now, EventKind.SCHEDULER_PLACE, job=spec.job_id,
                           machine=best_id)
        return Placement(spec.job_id, best_id)

    def remove(self, job_id: str, now: int = 0) -> None:
        """Forget a finished job."""
        machine_id = self.placements.pop(job_id, None)
        if machine_id is None:
            raise SchedulingError(f"job {job_id} is not placed")
        spec = self._specs.pop(job_id)
        self.committed[machine_id] -= spec.bytes
        self.events.record(now, EventKind.SCHEDULER_REMOVE, job=job_id,
                           machine=machine_id)

    def evict_for_pressure(self, machine_id: str, now: int = 0) -> Optional[str]:
        """Kill the lowest-priority job on a machine; returns its id.

        Paper §4.2: under correlated decompression bursts, low-priority
        jobs are selectively evicted and rescheduled elsewhere.  Ties are
        broken toward the job with the largest footprint (frees the most).
        """
        candidates = [
            (self._specs[job_id].priority, -self._specs[job_id].bytes, job_id)
            for job_id, mid in self.placements.items()
            if mid == machine_id
        ]
        if not candidates:
            return None
        _, _, victim = min(candidates)
        self.remove(victim, now)
        self.eviction_slo.record(victim, now)
        self.evictions_total += 1
        self.events.record(now, EventKind.SCHEDULER_EVICT, job=victim,
                           machine=machine_id)
        return victim

    def mark_offline(self, machine_id: str) -> None:
        """Exclude a machine from placement (crash, drain, repair)."""
        if machine_id not in self.machines:
            raise SchedulingError(f"unknown machine {machine_id}")
        self.offline.add(machine_id)

    def mark_online(self, machine_id: str) -> None:
        """Return a machine to the placement pool."""
        if machine_id not in self.machines:
            raise SchedulingError(f"unknown machine {machine_id}")
        self.offline.discard(machine_id)

    def spec_of(self, job_id: str) -> JobSpec:
        """The spec of a currently placed job."""
        try:
            return self._specs[job_id]
        except KeyError:
            raise SchedulingError(f"job {job_id} is not placed") from None

    def jobs_on(self, machine_id: str) -> List[str]:
        """Job ids currently placed on a machine."""
        return [j for j, m in self.placements.items() if m == machine_id]
