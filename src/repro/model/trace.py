"""Far-memory trace schema (paper §5.3).

Each trace entry captures one job's far-memory statistics aggregated over a
5-minute period — exactly the triple the paper's telemetry exports:

* the **working set size** (pages touched within the minimum threshold),
* the **promotion histogram** accumulated over the period (would-be
  promotions at every candidate threshold),
* the **cold-age histogram** snapshot at the end of the period.

These entries are all the fast far memory model needs to replay the §4.3
control algorithm offline under any parameter configuration: the histograms
carry information about *all* candidate thresholds simultaneously.

Entries are plain data with dict/JSON round-tripping so traces can be
persisted to the external database (:mod:`repro.cluster.trace_db`) and
shipped to the autotuner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.checks.contracts import verify_column_contracts
from repro.checks.invariants import invariants_enabled
from repro.common.errors import TraceError
from repro.core.histograms import AgeBins, AgeHistogram

__all__ = ["TRACE_PERIOD_SECONDS", "TraceEntry", "JobTrace", "CompiledTrace"]

#: Aggregation period of one trace entry (the paper uses 5 minutes).
TRACE_PERIOD_SECONDS = 300

#: The compiled-trace tensor layout promise.  Checked statically by the
#: CON001/CON002 flow rules against every visible constructor call, and
#: at runtime (under ``REPRO_CHECKS=1``) by ``__post_init__`` on every
#: construction path — ``from_trace``, ``from_columns``, and direct
#: instantiation alike.  Must stay a pure literal.
COLUMN_CONTRACTS = {
    "CompiledTrace.cold_suffix_sums": {"dtype": "int64", "ndim": 2},
    "CompiledTrace.promotion_suffix_sums": {"dtype": "int64", "ndim": 2},
    "CompiledTrace.working_set_pages": {"dtype": "int64", "ndim": 1},
    "CompiledTrace.times": {"dtype": "int64", "ndim": 1},
    "CompiledTrace.resident_pages": {"dtype": "int64", "ndim": 1},
    "CompiledTrace.cpu_cores": {"dtype": "float64", "ndim": 1},
}


def _histogram_to_lists(histogram: AgeHistogram) -> Tuple[List[int], int]:
    return histogram.counts.tolist(), histogram.young_count


def _histogram_from_lists(
    bins: AgeBins, counts: Sequence[int], young: int
) -> AgeHistogram:
    histogram = AgeHistogram(bins)
    counts = np.asarray(counts, dtype=np.int64)
    if counts.shape != histogram.counts.shape:
        raise TraceError(
            f"histogram has {counts.size} bins, grid expects "
            f"{histogram.counts.size}"
        )
    histogram.counts = counts
    histogram.young_count = int(young)
    return histogram


@dataclass
class TraceEntry:
    """One job's 5-minute far-memory statistics.

    Attributes:
        job_id: the job this entry describes.
        machine_id: where the job was running.
        time: start of the aggregation period (seconds).
        working_set_pages: pages accessed within the minimum threshold.
        promotion_histogram: would-be promotions during this period, by age.
        cold_age_histogram: page-age snapshot at the end of the period.
        resident_pages: total resident pages (near + far).
        cpu_cores: the job's average CPU usage in cores (for overhead
            normalization in Fig. 8).
    """

    job_id: str
    machine_id: str
    time: int
    working_set_pages: int
    promotion_histogram: AgeHistogram
    cold_age_histogram: AgeHistogram
    resident_pages: int
    cpu_cores: float = 1.0

    def __post_init__(self) -> None:
        if self.promotion_histogram.bins.thresholds != (
            self.cold_age_histogram.bins.thresholds
        ):
            raise TraceError("trace histograms must share one threshold grid")
        if self.working_set_pages < 0 or self.resident_pages < 0:
            raise TraceError("page counts must be non-negative")

    @property
    def bins(self) -> AgeBins:
        """The candidate-threshold grid these histograms use."""
        return self.promotion_histogram.bins

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to JSON-compatible primitives."""
        promo_counts, promo_young = _histogram_to_lists(self.promotion_histogram)
        cold_counts, cold_young = _histogram_to_lists(self.cold_age_histogram)
        return {
            "job_id": self.job_id,
            "machine_id": self.machine_id,
            "time": self.time,
            "working_set_pages": self.working_set_pages,
            "thresholds": list(self.bins.thresholds),
            "promotion_counts": promo_counts,
            "promotion_young": promo_young,
            "cold_counts": cold_counts,
            "cold_young": cold_young,
            "resident_pages": self.resident_pages,
            "cpu_cores": self.cpu_cores,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEntry":
        """Inverse of :meth:`to_dict`."""
        try:
            bins = AgeBins(tuple(int(t) for t in data["thresholds"]))
            return cls(
                job_id=data["job_id"],
                machine_id=data["machine_id"],
                time=int(data["time"]),
                working_set_pages=int(data["working_set_pages"]),
                promotion_histogram=_histogram_from_lists(
                    bins, data["promotion_counts"], data["promotion_young"]
                ),
                cold_age_histogram=_histogram_from_lists(
                    bins, data["cold_counts"], data["cold_young"]
                ),
                resident_pages=int(data["resident_pages"]),
                cpu_cores=float(data.get("cpu_cores", 1.0)),
            )
        except KeyError as missing:
            raise TraceError(f"trace entry missing field {missing}") from None


@dataclass
class JobTrace:
    """The time-ordered trace of one job (one replay unit).

    Attributes:
        job_id: the job identifier.
        entries: entries sorted by time.
    """

    job_id: str
    entries: List[TraceEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def append(self, entry: TraceEntry) -> None:
        """Add an entry, enforcing job identity and time order."""
        if entry.job_id != self.job_id:
            raise TraceError(
                f"entry for job {entry.job_id} appended to trace of "
                f"{self.job_id}"
            )
        if self.entries and entry.time < self.entries[-1].time:
            raise TraceError(
                f"out-of-order trace entry at t={entry.time} after "
                f"t={self.entries[-1].time}"
            )
        self.entries.append(entry)

    @property
    def duration_seconds(self) -> int:
        """Span from first entry to one period past the last."""
        if not self.entries:
            return 0
        return (
            self.entries[-1].time - self.entries[0].time + TRACE_PERIOD_SECONDS
        )

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Serialize all entries."""
        return [entry.to_dict() for entry in self.entries]

    @classmethod
    def from_dicts(cls, job_id: str, dicts: Sequence[Dict[str, Any]]) -> "JobTrace":
        """Rebuild a trace from serialized entries."""
        trace = cls(job_id)
        for data in dicts:
            trace.append(TraceEntry.from_dict(data))
        return trace

    def compile(self) -> "CompiledTrace":
        """Compile this trace into dense arrays for vectorized replay."""
        return CompiledTrace.from_trace(self)


@dataclass(frozen=True)
class CompiledTrace:
    """One job's trace as dense tensors (the vectorized-replay unit).

    Replaying a trace needs, per interval, only ``colder_than(T)`` lookups
    on the two histograms plus the working-set size — so a trace compiles
    once into per-interval suffix-sum matrices (``suffix[t, i]`` is the
    count with age >= ``bins.thresholds[i]`` during interval ``t``; column
    ``len(bins)`` is an explicit zero so a threshold beyond the grid
    indexes to zero, mirroring :meth:`AgeHistogram.colder_than`), a
    working-set vector, and interval metadata.  All fields are plain
    numpy arrays, so a compiled trace pickles cheaply and ships to
    MapReduce workers once per model instead of once per configuration.

    Attributes:
        job_id: the compiled job.
        bins: the candidate-threshold grid (None only for empty traces).
        cold_suffix_sums: ``(intervals, len(bins) + 1)`` int64 matrix of
            cold-age-histogram suffix sums.
        promotion_suffix_sums: same shape, for the promotion histograms.
        working_set_pages: ``(intervals,)`` int64 vector.
        times: ``(intervals,)`` int64 vector of period start times.
        resident_pages: ``(intervals,)`` int64 vector.
        cpu_cores: ``(intervals,)`` float vector (overhead normalization).
        interval_seconds: aggregation period of each interval.
    """

    job_id: str
    bins: Optional[AgeBins]
    cold_suffix_sums: np.ndarray
    promotion_suffix_sums: np.ndarray
    working_set_pages: np.ndarray
    times: np.ndarray
    resident_pages: np.ndarray
    cpu_cores: np.ndarray
    interval_seconds: int = TRACE_PERIOD_SECONDS

    def __post_init__(self) -> None:
        if invariants_enabled():
            verify_column_contracts(self, COLUMN_CONTRACTS, where="construct")

    @property
    def intervals(self) -> int:
        return int(self.working_set_pages.size)

    @classmethod
    def from_trace(cls, trace: JobTrace) -> "CompiledTrace":
        """Compile a :class:`JobTrace` (one pass; O(intervals * bins)).

        Raises:
            TraceError: if entries disagree on the threshold grid — the
                scalar replay would reject such a trace mid-flight, the
                compiler rejects it up front.
        """
        if not trace.entries:
            empty = np.zeros((0, 1), dtype=np.int64)
            vec = np.zeros(0, dtype=np.int64)
            return cls(
                job_id=trace.job_id,
                bins=None,
                cold_suffix_sums=empty,
                promotion_suffix_sums=empty.copy(),
                working_set_pages=vec,
                times=vec.copy(),
                resident_pages=vec.copy(),
                cpu_cores=np.zeros(0, dtype=float),
            )
        bins = trace.entries[0].bins
        for entry in trace.entries:
            if entry.bins.thresholds != bins.thresholds:
                raise TraceError(
                    f"trace {trace.job_id} mixes threshold grids; "
                    f"cannot compile"
                )
        cold_counts = np.stack(
            [entry.cold_age_histogram.counts for entry in trace.entries]
        )
        promo_counts = np.stack(
            [entry.promotion_histogram.counts for entry in trace.entries]
        )
        return cls(
            job_id=trace.job_id,
            bins=bins,
            cold_suffix_sums=_suffix_sum_matrix(cold_counts),
            promotion_suffix_sums=_suffix_sum_matrix(promo_counts),
            working_set_pages=np.asarray(
                [entry.working_set_pages for entry in trace.entries],
                dtype=np.int64,
            ),
            times=np.asarray(
                [entry.time for entry in trace.entries], dtype=np.int64
            ),
            resident_pages=np.asarray(
                [entry.resident_pages for entry in trace.entries],
                dtype=np.int64,
            ),
            cpu_cores=np.asarray(
                [entry.cpu_cores for entry in trace.entries], dtype=float
            ),
        )

    @classmethod
    def from_columns(
        cls,
        job_id: str,
        bins: Optional[AgeBins],
        cold_counts: np.ndarray,
        promotion_counts: np.ndarray,
        working_set_pages: np.ndarray,
        times: np.ndarray,
        resident_pages: np.ndarray,
        cpu_cores: np.ndarray,
        interval_seconds: int = TRACE_PERIOD_SECONDS,
    ) -> "CompiledTrace":
        """Compile straight from columnar arrays (no ``TraceEntry`` objects).

        The on-disk trace store (:mod:`repro.tracestore`) holds exactly
        these columns per segment; this constructor builds the suffix-sum
        tensors from them directly, bit-identical to routing the same
        rows through :meth:`from_trace` (which stays as the oracle — the
        equivalence is asserted in tier-1 tests).

        Args:
            job_id: the compiled job.
            bins: the threshold grid shared by every row (None only when
                ``times`` is empty).
            cold_counts: ``(intervals, len(bins))`` cold-age histogram
                counts, one row per interval, time-ascending.
            promotion_counts: same shape, promotion histogram counts.
            working_set_pages: ``(intervals,)`` working-set sizes.
            times: ``(intervals,)`` period start times, ascending.
            resident_pages: ``(intervals,)`` resident page counts.
            cpu_cores: ``(intervals,)`` CPU usage in cores.
            interval_seconds: aggregation period of each row (larger
                than the raw 5-minute period for downsampled stores).

        Raises:
            TraceError: on shape mismatches between the columns, or a
                missing grid for a non-empty trace.
        """
        times = np.asarray(times, dtype=np.int64)
        if times.size == 0:
            empty = np.zeros((0, 1), dtype=np.int64)
            vec = np.zeros(0, dtype=np.int64)
            return cls(
                job_id=job_id,
                bins=None,
                cold_suffix_sums=empty,
                promotion_suffix_sums=empty.copy(),
                working_set_pages=vec,
                times=vec.copy(),
                resident_pages=vec.copy(),
                cpu_cores=np.zeros(0, dtype=float),
                interval_seconds=interval_seconds,
            )
        if bins is None:
            raise TraceError(
                f"trace {job_id}: non-empty columns need a threshold grid"
            )
        cold_counts = np.asarray(cold_counts, dtype=np.int64)
        promotion_counts = np.asarray(promotion_counts, dtype=np.int64)
        expected = (times.size, len(bins))
        for name, matrix in (
            ("cold_counts", cold_counts),
            ("promotion_counts", promotion_counts),
        ):
            if matrix.shape != expected:
                raise TraceError(
                    f"trace {job_id}: {name} shape {matrix.shape} != "
                    f"{expected}"
                )
        for name, vector in (
            ("working_set_pages", working_set_pages),
            ("resident_pages", resident_pages),
            ("cpu_cores", cpu_cores),
        ):
            if np.asarray(vector).shape != times.shape:
                raise TraceError(
                    f"trace {job_id}: {name} has {np.asarray(vector).size} "
                    f"rows, times has {times.size}"
                )
        return cls(
            job_id=job_id,
            bins=bins,
            cold_suffix_sums=_suffix_sum_matrix(cold_counts),
            promotion_suffix_sums=_suffix_sum_matrix(promotion_counts),
            working_set_pages=np.asarray(working_set_pages, dtype=np.int64),
            times=times,
            resident_pages=np.asarray(resident_pages, dtype=np.int64),
            cpu_cores=np.asarray(cpu_cores, dtype=float),
            interval_seconds=interval_seconds,
        )

    def colder_than(self, thresholds: np.ndarray, *, cold: bool) -> np.ndarray:
        """Per-interval ``colder_than(thresholds[t])`` as one indexed lookup.

        Args:
            thresholds: ``(intervals,)`` per-interval thresholds; infinite
                entries (DISABLED) yield 0.
            cold: read the cold-age matrix (True) or the promotion matrix.
        """
        assert self.bins is not None
        matrix = self.cold_suffix_sums if cold else self.promotion_suffix_sums
        grid = np.asarray(self.bins.thresholds)
        finite = np.isfinite(thresholds)
        # DISABLED rows index the explicit zero column.
        column = np.full(thresholds.shape, len(grid), dtype=np.int64)
        column[finite] = np.searchsorted(grid, thresholds[finite], side="left")
        return matrix[np.arange(matrix.shape[0]), column]


def _suffix_sum_matrix(counts: np.ndarray) -> np.ndarray:
    """Row-wise suffix sums with a trailing zero column.

    ``result[t, i] == counts[t, i:].sum()`` — the matrix form of
    :meth:`AgeHistogram.suffix_sums` — and ``result[t, -1] == 0`` so that
    an index one past the grid (a threshold larger than every candidate)
    reads zero.
    """
    suffix = np.cumsum(counts[:, ::-1], axis=1, dtype=np.int64)[:, ::-1]
    zero = np.zeros((counts.shape[0], 1), dtype=np.int64)
    return np.concatenate([suffix, zero], axis=1)
