"""Figure 9: compression ratio (9a) and decompression latency (9b).

Paper: per-job average compression ratio is 3x at median with a 2-6x
spread (incompressible pages — 31 % of cold memory — excluded);
decompression latency is 6.4 us at p50 and 9.1 us at p98.  We regenerate
both distributions from the fleet's zswap statistics.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    compression_ratios_per_job,
    decompression_latency_samples,
    render_table,
)


def test_fig9a_compression_ratio(benchmark, paper_fleet, save_result):
    ratios = benchmark(compression_ratios_per_job, paper_fleet)

    assert len(ratios) >= 10
    p10, p50, p90 = np.percentile(ratios, [10, 50, 90])
    # Median ~3x, spread roughly 2-6x.
    assert 2.2 <= p50 <= 3.8
    assert p10 >= 1.5
    assert p90 <= 7.0

    rejected = sum(
        stats.pages_rejected
        for machine in paper_fleet.machines
        for stats in machine.zswap.job_stats.values()
    )
    attempted = rejected + sum(
        stats.pages_compressed
        for machine in paper_fleet.machines
        for stats in machine.zswap.job_stats.values()
    )
    incompressible_share = rejected / attempted if attempted else 0.0
    # Paper: 31% of cold memory is incompressible.
    assert 0.15 <= incompressible_share <= 0.45

    save_result(
        "fig9a_compression_ratio",
        render_table(
            ["metric", "measured", "paper"],
            [
                ("ratio p10", f"{p10:.2f}x", "~2x"),
                ("ratio p50", f"{p50:.2f}x", "3x"),
                ("ratio p90", f"{p90:.2f}x", "~6x"),
                ("incompressible share",
                 f"{100 * incompressible_share:.1f}%", "31%"),
            ],
            title="Fig. 9a — per-job compression ratio",
        ),
    )


def test_fig9b_decompression_latency(benchmark, paper_fleet, save_result):
    samples = benchmark(decompression_latency_samples, paper_fleet)

    assert len(samples) >= 100
    p50, p98 = np.percentile(samples, [50, 98])
    # Paper: 6.4 us p50, 9.1 us p98.  Our latency model is calibrated to
    # those points; the fleet mix may shift them slightly.
    assert 4e-6 <= p50 <= 9e-6
    assert 6e-6 <= p98 <= 13e-6
    assert p98 > p50

    save_result(
        "fig9b_decompression_latency",
        render_table(
            ["metric", "measured", "paper"],
            [
                ("latency p50", f"{p50 * 1e6:.2f} us", "6.4 us"),
                ("latency p98", f"{p98 * 1e6:.2f} us", "9.1 us"),
                ("samples", len(samples), "-"),
            ],
            title="Fig. 9b — decompression latency per page",
        ),
    )
