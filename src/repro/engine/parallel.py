"""The parallel fleet engine: sharded cluster ticks with exact merge.

Design (and why it is deterministic):

* **Fork, not spawn.**  Workers are forked per :meth:`FleetEngine.run`
  call, so each worker inherits a copy-on-write image of the fleet —
  including every in-flight numpy RNG state and the process hash salt
  that :meth:`Cluster._job_index` depends on.  A cluster therefore draws
  exactly the random stream it would have drawn serially; the per-cluster
  ``SeedSequenceFactory`` forks (``seeds.fork("cluster", index=c)``) make
  those streams independent of shard assignment by construction.

* **Barrier per simulated minute.**  Workers tick their clusters through
  a barrier chunk (default: one 60 s tick), then ship the interval's
  deltas — SLI samples tagged ``(tick, cluster)``, new trace entries,
  and a metric-registry delta — to the parent, which folds them in before
  releasing the next chunk.

* **Exact SLI order.**  The serial loop drains samples per tick in
  cluster order; workers tag each drained batch with its (tick, cluster
  index) so the parent reconstructs precisely that interleaving, making
  ``WSC.sli_history`` bit-identical to a serial run.

* **State reunification.**  At the end of the run each worker pickles its
  clusters back to the parent, which swaps them into the fleet and calls
  :meth:`Cluster.rebind_runtime` so metric handles, tracer spans, event
  subscriptions, and telemetry sinks all point at the parent's live
  objects again.  The fleet can keep running serially (or under a new
  engine) afterwards.

Trace-entry ordering across *different* jobs is canonicalized by
``(time, job_id)`` rather than by serial append order; per-job traces —
the unit every consumer reads — are byte-identical to serial.

The engine falls back to the serial loop (same results, one process)
when parallelism cannot help or would break determinism: a single
cluster, one worker, no ``fork`` support, or clusters sharing a mutable
churn job source.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import traceback
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.checks.invariants import check_merge_delta, invariants_enabled
from repro.common.errors import ReproError
from repro.common.validation import check_positive, require
from repro.engine.sharding import ShardPlan, plan_shards

__all__ = [
    "EngineError",
    "EngineStats",
    "FleetEngine",
    "default_worker_count",
    "fork_available",
]


class EngineError(ReproError):
    """The parallel engine failed (worker crash or protocol violation)."""


def fork_available() -> bool:
    """True when this platform supports fork-based multiprocessing."""
    return "fork" in mp.get_all_start_methods()


def default_worker_count() -> int:
    """Usable CPU count (affinity-aware where the OS exposes it)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class EngineStats:
    """What one :meth:`FleetEngine.run` call actually did.

    Attributes:
        mode: ``"parallel"`` or ``"serial"`` (the fallback path).
        workers: worker processes used (1 for serial).
        ticks: simulated ticks executed.
        barriers: barrier synchronizations performed (0 for serial).
        fallback_reason: why the serial path ran, if it did.
    """

    mode: str
    workers: int
    ticks: int
    barriers: int
    fallback_reason: Optional[str] = None


def _worker_main(conn, fleet, cluster_indices: Tuple[int, ...]) -> None:
    """Worker loop: tick owned clusters between barriers, ship deltas."""
    clusters = fleet.clusters
    registry = fleet.registry
    trace_db = fleet.trace_db
    tracer = fleet.tracer
    # The fork copied the parent's span history; reset so the stats this
    # worker reports at finalize are purely its own (a delta by design).
    tracer.reset()
    try:
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "advance":
                _, ticks, collect_sli = msg
                trace_mark = trace_db.mark()
                metric_base = registry.baseline()
                sli_batches: List[Tuple[int, int, list]] = []
                for tick_seq in range(ticks):
                    for ci in cluster_indices:
                        clusters[ci].tick()
                    if collect_sli:
                        for ci in cluster_indices:
                            samples = clusters[ci].drain_sli_samples()
                            if samples:
                                sli_batches.append((tick_seq, ci, samples))
                conn.send((
                    "ok",
                    sli_batches,
                    trace_db.entries_since(trace_mark),
                    registry.delta(metric_base),
                ))
            elif cmd == "finalize":
                # Detach the shared sinks before pickling: the parent
                # re-attaches its own via Cluster.rebind_runtime, and the
                # fleet-wide trace database would otherwise be duplicated
                # into every returned cluster.
                from repro.cluster.trace_db import TraceDatabase

                empty_db = TraceDatabase()
                owned = [clusters[ci] for ci in cluster_indices]
                for cluster in owned:
                    cluster.trace_db = empty_db
                    for exporter in cluster.exporters.values():
                        exporter.sink = empty_db
                conn.send(("clusters", owned, tracer.stats()))
            elif cmd == "exit":
                break
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", f"unknown command {cmd!r}"))
                break
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass
    except Exception:  # surface worker crashes to the parent
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class FleetEngine:
    """Parallel executor for one :class:`repro.cluster.wsc.WSC` fleet.

    Args:
        fleet: the fleet to drive.  The engine mutates it in place; after
            :meth:`run` returns, the fleet holds the advanced state exactly
            as if :meth:`WSC.run` had run serially.
        workers: worker processes (default: usable CPUs, clamped to the
            cluster count).
        barrier_seconds: simulated seconds per barrier chunk; the default
            of 60 synchronizes every simulated minute.
    """

    def __init__(self, fleet, workers: Optional[int] = None,
                 barrier_seconds: int = 60):
        check_positive(barrier_seconds, "barrier_seconds")
        self.fleet = fleet
        if workers is None:
            workers = default_worker_count()
        check_positive(workers, "workers")
        self.workers = min(int(workers), len(fleet.clusters))
        self.barrier_seconds = int(barrier_seconds)
        self.last_stats: Optional[EngineStats] = None

    # ------------------------------------------------------------------
    # Parallelizability
    # ------------------------------------------------------------------

    def parallelizable(self) -> Tuple[bool, Optional[str]]:
        """Whether a run would take the parallel path, and if not, why."""
        if len(self.fleet.clusters) < 2:
            return False, "fewer than 2 clusters"
        if self.workers < 2:
            return False, "fewer than 2 workers"
        if not fork_available():
            return False, "platform lacks fork start method"
        if self._has_shared_churn_source():
            return False, "clusters share a mutable churn job source"
        return True, None

    def _has_shared_churn_source(self) -> bool:
        """Detect one mutable job generator feeding several clusters.

        Cluster churn draws specs from ``cluster._job_source`` (usually a
        bound ``FleetMixGenerator.next_job``).  A generator shared by two
        clusters sequences its draws by global tick interleaving, which a
        sharded run cannot reproduce — so such fleets run serially.
        """
        owners = []
        for cluster in self.fleet.clusters:
            source = getattr(cluster, "_job_source", None)
            if source is None:
                continue
            owners.append(id(getattr(source, "__self__", source)))
        return len(owners) != len(set(owners))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, seconds: int, collect_sli: bool = True) -> EngineStats:
        """Advance the fleet by ``seconds``; returns what was executed."""
        check_positive(seconds, "seconds")
        tick_seconds = self.fleet.clusters[0].clock.tick_seconds
        total_ticks = math.ceil(seconds / tick_seconds)
        ok, reason = self.parallelizable()
        if not ok:
            self._run_serial(total_ticks, collect_sli)
            self.last_stats = EngineStats(
                mode="serial", workers=1, ticks=total_ticks, barriers=0,
                fallback_reason=reason,
            )
            return self.last_stats

        barrier_ticks = max(1, self.barrier_seconds // tick_seconds)
        shards = plan_shards(
            [len(c.machines) for c in self.fleet.clusters], self.workers
        )
        barriers = self._run_parallel(
            shards, total_ticks, barrier_ticks, collect_sli
        )
        self.last_stats = EngineStats(
            mode="parallel", workers=len(shards), ticks=total_ticks,
            barriers=barriers,
        )
        return self.last_stats

    def _run_serial(self, total_ticks: int, collect_sli: bool) -> None:
        """The exact serial loop (shared fallback path)."""
        fleet = self.fleet
        for _ in range(total_ticks):
            for cluster in fleet.clusters:
                cluster.tick()
            if collect_sli:
                for cluster in fleet.clusters:
                    fleet.sli_history.extend(cluster.drain_sli_samples())

    def _run_parallel(self, shards: Sequence[ShardPlan], total_ticks: int,
                      barrier_ticks: int, collect_sli: bool) -> int:
        fleet = self.fleet
        ctx = mp.get_context("fork")
        conns = []
        procs = []
        try:
            for shard in shards:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, fleet, shard.cluster_indices),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                conns.append(parent_conn)
                procs.append(proc)

            barriers = 0
            remaining = total_ticks
            while remaining > 0:
                chunk = min(barrier_ticks, remaining)
                for conn in conns:
                    conn.send(("advance", chunk, collect_sli))
                self._merge_barrier(conns, collect_sli)
                remaining -= chunk
                barriers += 1

            self._finalize(shards, conns)
            for conn in conns:
                conn.send(("exit",))
            for proc in procs:
                proc.join(timeout=30)
            return barriers
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join()

    def _recv(self, conn):
        try:
            reply = conn.recv()
        except EOFError as exc:
            raise EngineError(
                "engine worker died mid-run (see stderr for its traceback)"
            ) from exc
        if reply[0] == "error":
            raise EngineError(f"engine worker failed:\n{reply[1]}")
        return reply

    def _merge_barrier(self, conns, collect_sli: bool) -> None:
        """Fold one barrier interval's deltas back into the parent fleet."""
        fleet = self.fleet
        sli_batches: List[Tuple[int, int, list]] = []
        trace_entries = []
        for conn in conns:
            _, batches, entries, metric_delta = self._recv(conn)
            sli_batches.extend(batches)
            trace_entries.extend(entries)
            if invariants_enabled():
                check_merge_delta(metric_delta)
            fleet.registry.merge(metric_delta)
        if collect_sli:
            # Reconstruct the serial drain order: per tick, cluster order.
            sli_batches.sort(key=lambda batch: (batch[0], batch[1]))
            for _, _, samples in sli_batches:
                fleet.sli_history.extend(samples)
        # Canonical cross-job order; per-job order is already serial-exact
        # because every job lives on exactly one shard.
        trace_entries.sort(key=lambda e: (e.time, e.job_id))
        for entry in trace_entries:
            fleet.trace_db.add(entry)

    def _finalize(self, shards: Sequence[ShardPlan], conns) -> None:
        """Swap worker cluster state into the parent and re-wire it."""
        fleet = self.fleet
        for conn in conns:
            conn.send(("finalize",))
        new_clusters = list(fleet.clusters)
        swapped = []
        for shard, conn in zip(shards, conns):
            _, shard_clusters, span_stats = self._recv(conn)
            require(
                len(shard_clusters) == len(shard.cluster_indices),
                "worker returned wrong cluster count",
            )
            for ci, cluster in zip(shard.cluster_indices, shard_clusters):
                new_clusters[ci] = cluster
                swapped.append(cluster)
            fleet.tracer.merge(span_stats)
        fleet.clusters = new_clusters  # setter invalidates machine cache
        for cluster in swapped:
            cluster.rebind_runtime(fleet.registry, fleet.tracer,
                                   fleet.trace_db)
