"""Telemetry export of 5-minute trace entries."""

import numpy as np
import pytest

from repro.agent.telemetry import TelemetryExporter
from repro.cluster.trace_db import TraceDatabase
from repro.common.events import EventLog
from repro.common.rng import SeedSequenceFactory
from repro.core.histograms import AgeBins, AgeHistogram
from repro.kernel.compression import ContentProfile
from repro.kernel.machine import Machine, MachineConfig
from repro.model.trace import TRACE_PERIOD_SECONDS
from repro.obs import MetricRegistry


COMPRESSIBLE = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)


def make_machine():
    return Machine(
        "m0", MachineConfig(dram_bytes=1 << 30), seeds=SeedSequenceFactory(4)
    )


def test_exports_every_five_minutes():
    machine = make_machine()
    db = TraceDatabase()
    exporter = TelemetryExporter(machine, db)
    machine.add_job("j", 200, COMPRESSIBLE)
    machine.allocate("j", 200)
    for t in range(0, 1501, 60):
        machine.tick(t)
        exporter.maybe_export(t)
    # Exports at t=0, 300, ..., 1500 -> 6 entries (t=0 one included).
    assert len(db) == 6
    assert db.job_ids == ["j"]


def test_promotion_histogram_is_per_period_diff():
    machine = make_machine()
    db = TraceDatabase()
    exporter = TelemetryExporter(machine, db)
    memcg = machine.add_job("j", 200, COMPRESSIBLE)
    idx = machine.allocate("j", 200)
    for t in range(0, 601, 60):
        machine.tick(t)
        exporter.maybe_export(t)
    # Age everything, then touch cold pages once in period 3.
    machine.touch("j", idx[:50])
    for t in range(660, 1201, 60):
        machine.tick(t)
        exporter.maybe_export(t)
    entries = db.trace_for("j").entries
    total_promos = sum(e.promotion_histogram.colder_than(120) for e in entries)
    # The cold touches appear exactly once across all period diffs.
    assert total_promos == memcg.promotion_histogram.colder_than(120)


def test_entry_fields_populated():
    machine = make_machine()
    db = TraceDatabase()
    exporter = TelemetryExporter(machine, db, cpu_lookup=lambda j: 4.0)
    machine.add_job("j", 300, COMPRESSIBLE)
    machine.allocate("j", 300)
    for t in range(0, 601, 60):
        machine.tick(t)
        exporter.maybe_export(t)
    entry = db.trace_for("j").entries[-1]
    assert entry.machine_id == "m0"
    assert entry.resident_pages == 300
    assert entry.cpu_cores == 4.0
    assert entry.working_set_pages >= 0


def test_departed_jobs_cleaned_up():
    machine = make_machine()
    db = TraceDatabase()
    exporter = TelemetryExporter(machine, db)
    machine.add_job("j", 100, COMPRESSIBLE)
    machine.allocate("j", 100)
    for t in range(0, 301, 60):
        machine.tick(t)
        exporter.maybe_export(t)
    machine.remove_job("j")
    for t in range(360, 661, 60):
        machine.tick(t)
        exporter.maybe_export(t)
    assert "j" not in exporter._last_promotion


def test_counts_exported_entries():
    machine = make_machine()
    db = TraceDatabase()
    exporter = TelemetryExporter(machine, db)
    machine.add_job("a", 50, COMPRESSIBLE)
    machine.add_job("b", 50, COMPRESSIBLE)
    machine.allocate("a", 50)
    machine.allocate("b", 50)
    exporter.export(TRACE_PERIOD_SECONDS)
    assert exporter.entries_exported == 2


def test_histogram_reset_event_on_bin_change():
    machine = make_machine()
    db = TraceDatabase()
    events = EventLog()
    registry = MetricRegistry()
    exporter = TelemetryExporter(machine, db, events=events,
                                 registry=registry)
    memcg = machine.add_job("j", 100, COMPRESSIBLE)
    machine.allocate("j", 100)
    exporter.export(300)
    assert len(events.of_kind("telemetry.histogram_reset")) == 0

    # A mid-run grid change makes the cumulative snapshot incomparable.
    new_bins = AgeBins(thresholds=(120, 600, 3600))
    assert new_bins.thresholds != memcg.bins.thresholds
    memcg.bins = new_bins
    memcg.promotion_histogram = AgeHistogram(new_bins)
    memcg.cold_age_histogram = AgeHistogram(new_bins)
    exporter.export(600)

    resets = events.of_kind("telemetry.histogram_reset")
    assert len(resets) == 1
    assert resets[0].payload == {"job": "j", "machine": "m0"}
    assert resets[0].time == 600
    assert registry.value("repro_telemetry_histogram_resets_total") == 1

    # Stable bins afterwards: no further resets.
    exporter.export(900)
    assert len(events.of_kind("telemetry.histogram_reset")) == 1


def test_first_export_timestamp_clamped_at_zero():
    """Regression: the t=0 boundary used to stamp ``now - period`` = -300
    into the trace database; entry times must never be negative."""
    machine = make_machine()
    db = TraceDatabase()
    exporter = TelemetryExporter(machine, db)
    machine.add_job("j", 100, COMPRESSIBLE)
    machine.allocate("j", 100)
    for t in range(0, 601, 60):
        machine.tick(t)
        exporter.maybe_export(t)
    times = [e.time for e in db.trace_for("j").entries]
    assert times == [0, 0, 300]
    assert min(times) >= 0


class FlakySink:
    """A sink whose availability is toggled by the test."""

    def __init__(self, inner):
        self.inner = inner
        self.down = False

    def add(self, entry):
        if self.down:
            raise RuntimeError("sink offline")
        self.inner.add(entry)


class TestSinkOutage:
    def make(self):
        machine = make_machine()
        db = TraceDatabase()
        sink = FlakySink(db)
        events = EventLog()
        registry = MetricRegistry()
        exporter = TelemetryExporter(machine, sink, events=events,
                                     registry=registry)
        machine.add_job("j", 100, COMPRESSIBLE)
        machine.allocate("j", 100)
        return machine, db, sink, events, registry, exporter

    def test_outage_spills_then_replays_everything_in_order(self):
        machine, db, sink, events, registry, exporter = self.make()
        machine.tick(0)
        exporter.maybe_export(0)
        assert len(db) == 1

        sink.down = True
        for t in range(60, 901, 60):
            machine.tick(t)
            exporter.maybe_export(t)  # exports at 300, 600, 900 spill
        assert len(db) == 1
        assert exporter.sink_degraded
        assert len(events.of_kind("telemetry.sink_outage")) == 1
        assert registry.value("repro_telemetry_sink_outages_total") == 1
        assert registry.value("repro_telemetry_spilled_entries_total") == 3
        assert registry.value("repro_degraded_mode") == 1

        sink.down = False
        for t in range(960, 1501, 60):
            machine.tick(t)
            exporter.maybe_export(t)
        # Nothing lost: all 6 boundary exports (0..1500) are in the DB.
        assert not exporter.sink_degraded
        assert len(db) == 6
        times = [e.time for e in db.trace_for("j").entries]
        assert times == sorted(times)
        recovered = events.of_kind("telemetry.sink_recovered")
        assert len(recovered) == 1
        assert registry.value("repro_telemetry_replayed_entries_total") == 3
        assert registry.value("repro_degraded_mode") == 0

    def test_backoff_doubles_until_heal(self):
        from repro.agent.telemetry import INITIAL_BACKOFF_SECONDS

        machine, db, sink, events, registry, exporter = self.make()
        sink.down = True
        machine.tick(0)
        exporter.export(300)
        assert exporter._backoff == INITIAL_BACKOFF_SECONDS
        # The retry at t=600 fails again: backoff doubles.
        exporter.export(600)
        assert exporter._backoff == 2 * INITIAL_BACKOFF_SECONDS
        # t=900 is inside the backoff window: no retry, backoff unchanged,
        # but the fresh entry still spills behind the queued ones.
        exporter.export(900)
        assert exporter._backoff == 2 * INITIAL_BACKOFF_SECONDS
        assert len(exporter._spill) == 3
        # Only one outage episode was recorded for the whole spell.
        assert len(events.of_kind("telemetry.sink_outage")) == 1

    def test_full_buffer_drops_oldest(self, monkeypatch):
        import repro.agent.telemetry as telemetry_mod

        monkeypatch.setattr(telemetry_mod, "RETRY_BUFFER_CAP", 2)
        machine, db, sink, events, registry, exporter = self.make()
        sink.down = True
        machine.tick(0)
        for t in (300, 600, 900, 1200):
            exporter.export(t)
        assert len(exporter._spill) == 2
        assert exporter.entries_dropped == 2
        assert registry.value("repro_telemetry_dropped_entries_total") == 2
        drops = events.of_kind("telemetry.entries_dropped")
        assert len(drops) == 2
        # The two newest entries survived (drop-oldest).
        assert [e.time for e in exporter._spill] == [600, 900]


def test_first_export_is_not_a_reset():
    machine = make_machine()
    events = EventLog()
    registry = MetricRegistry()
    exporter = TelemetryExporter(machine, TraceDatabase(), events=events,
                                 registry=registry)
    machine.add_job("j", 50, COMPRESSIBLE)
    machine.allocate("j", 50)
    exporter.export(300)
    assert len(events.of_kind("telemetry.histogram_reset")) == 0
    assert registry.value("repro_telemetry_histogram_resets_total") == 0
