"""The columnar fleet kernel: machine-pooled page state (ROADMAP item 1).

The scalar kernel keeps one set of numpy arrays per memcg, so every tick
pays a Python dispatch per memcg — ~30 array ops per ``scan_update``, the
reclaim mask, the accounting sums — multiplied by every job on every
machine.  This module pools all of it per machine:

* **per-page columns** (``resident``, ``age_scans``, ``accessed``, tier
  ``state``, ``incompressible``, ``dirtied``, ``unevictable``,
  ``payload_bytes``, ``lru_active``, THP ``huge_group``, the histogram-bin
  cache and the reclaim mask) live in dense machine-wide arrays, one
  contiguous *segment* per memcg;
* **per-memcg histograms** (cold-age snapshot and cumulative promotion
  counts) live as rows of two ``(memcgs, bins)`` matrices plus young-count
  vectors, so a scan updates every job's histogram with a handful of
  ``bincount`` scatter-adds.

:class:`ColumnarMemCg` is a :class:`~repro.kernel.memcg.MemCg` whose
arrays are numpy *views* into the pool: every inherited method —
``allocate``/``release``/``touch``, zswap's tier flips, huge-page
mapping — runs unchanged on the views and stays O(touched), and is
bit-identical to the scalar kernel *by construction*.  The pooled fast
paths (:meth:`MachinePagePool.scan_all`,
:meth:`MachinePagePool.reclaim_pairs`, the accounting reductions) replay
the exact per-slot arithmetic of the scalar methods as whole-machine
array ops; the scalar kernel remains the bit-equivalence oracle, exactly
as ``CompiledTrace``/``replay_compiled`` oracle the vectorized model.

Select the backend with ``MachineConfig(kernel="columnar")``; everything
downstream (node agent, telemetry, faults, the parallel engine) is
unaware of the layout.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.checks.contracts import verify_column_contracts
from repro.checks.invariants import check_memcg_histogram, invariants_enabled
from repro.common.units import MAX_PAGE_AGE_SCANS
from repro.core.histograms import AgeBins, AgeHistogram
from repro.kernel.memcg import _HIST_NO_PAGE, _HIST_YOUNG, MemCg, PageState

__all__ = ["ColumnarMemCg", "MachinePagePool", "PooledAgeHistogram"]

#: Pool columns: (pool attribute, dtype, fill value for free slots).  The
#: fill values equal a freshly constructed MemCg's defaults, so a new
#: segment needs no initialization beyond ``owner_row``.
_PAGE_FIELDS: Tuple[Tuple[str, type, object], ...] = (
    ("resident", np.bool_, False),
    ("age_scans", np.int32, 0),
    ("accessed", np.bool_, False),
    ("state", np.uint8, int(PageState.NEAR)),
    ("incompressible", np.bool_, False),
    ("dirtied", np.bool_, False),
    ("unevictable", np.bool_, False),
    ("payload_bytes", np.int32, 0),
    ("lru_active", np.bool_, False),
    ("huge_group", np.int64, -1),
    ("hist_bin", np.int16, _HIST_NO_PAGE),
    ("reclaim_mask", np.bool_, False),
    ("owner_row", np.int32, -1),
)

#: memcg attribute -> pool column for the per-page views.  ``owner_row``
#: is pool-internal; ``huge_group`` stays memcg-local (group ids are
#: relative to the segment base) so segments move without translation.
_VIEW_BINDINGS: Tuple[Tuple[str, str], ...] = (
    ("resident", "resident"),
    ("age_scans", "age_scans"),
    ("accessed", "accessed"),
    ("state", "state"),
    ("incompressible", "incompressible"),
    ("dirtied", "dirtied"),
    ("unevictable", "unevictable"),
    ("payload_bytes", "payload_bytes"),
    ("lru_active", "lru_active"),
    ("huge_group", "huge_group"),
    ("_hist_bin", "hist_bin"),
    ("_reclaim_mask", "reclaim_mask"),
)

#: Per-row reclaim-threshold sentinel no page age can meet (ages saturate
#: at MAX_PAGE_AGE_SCANS); also clamps huge finite thresholds.
_NEVER_SCANS = 1 << 62

#: The pool's array layout promise, one entry per pooled column.  The
#: static pass (``repro lint --flow``, rules CON001/CON002) checks every
#: visible assignment against this table; the runtime half
#: (:func:`repro.checks.contracts.verify_column_contracts`) re-verifies
#: the live arrays in :meth:`MachinePagePool.scan_all` under
#: ``REPRO_CHECKS=1`` — covering the ``setattr`` loops the static pass
#: cannot see.  Must stay a pure literal (both halves parse it).
COLUMN_CONTRACTS = {
    # Per-page columns (mirror _PAGE_FIELDS; dense [0, cap) arrays).
    "MachinePagePool.resident": {"dtype": "bool", "ndim": 1},
    "MachinePagePool.age_scans": {"dtype": "int32", "ndim": 1},
    "MachinePagePool.accessed": {"dtype": "bool", "ndim": 1},
    "MachinePagePool.state": {"dtype": "uint8", "ndim": 1},
    "MachinePagePool.incompressible": {"dtype": "bool", "ndim": 1},
    "MachinePagePool.dirtied": {"dtype": "bool", "ndim": 1},
    "MachinePagePool.unevictable": {"dtype": "bool", "ndim": 1},
    "MachinePagePool.payload_bytes": {"dtype": "int32", "ndim": 1},
    "MachinePagePool.lru_active": {"dtype": "bool", "ndim": 1},
    "MachinePagePool.huge_group": {"dtype": "int64", "ndim": 1},
    "MachinePagePool.hist_bin": {"dtype": "int16", "ndim": 1},
    "MachinePagePool.reclaim_mask": {"dtype": "bool", "ndim": 1},
    "MachinePagePool.owner_row": {"dtype": "int32", "ndim": 1},
    # Per-memcg rows (histogram matrices + bookkeeping vectors).
    "MachinePagePool.row_base": {"dtype": "int64", "ndim": 1},
    "MachinePagePool.row_size": {"dtype": "int64", "ndim": 1},
    "MachinePagePool.cold_counts": {"dtype": "int64", "ndim": 2},
    "MachinePagePool.cold_young": {"dtype": "int64", "ndim": 1},
    "MachinePagePool.promo_counts": {"dtype": "int64", "ndim": 2},
    "MachinePagePool.promo_young": {"dtype": "int64", "ndim": 1},
    "MachinePagePool.row_reclaim_thr": {"dtype": "int64", "ndim": 1},
    "MachinePagePool.last_scan_row_pages": {"dtype": "int64", "ndim": 1},
}


class PooledAgeHistogram(AgeHistogram):
    """An :class:`AgeHistogram` whose storage is one row of a pool matrix.

    ``counts`` is a row view of the pool's ``(memcgs, bins)`` matrix, so
    in-place updates (``+=``, ``[:] = 0``) — which is all the base class
    ever does — write straight through to the pool.  ``young_count``
    proxies one element of the pool's young-count vector.  ``copy()`` and
    ``diff()`` inherit from the base class and return plain detached
    :class:`AgeHistogram` objects, which is what every consumer (node
    agent, telemetry, invariants) expects.
    """

    def __init__(self, bins: AgeBins, counts: np.ndarray,
                 young: np.ndarray, row: int):
        self.bins = bins
        self.counts = counts
        self._young = young
        self._row = int(row)

    @property
    def young_count(self) -> int:
        return int(self._young[self._row])

    @young_count.setter
    def young_count(self, value: int) -> None:
        self._young[self._row] = value


class ColumnarMemCg(MemCg):
    """A memcg whose per-page arrays alias a :class:`MachinePagePool`.

    Constructed exactly like :class:`MemCg`; the owning machine then
    registers it with the pool, which replaces the private arrays with
    segment views.  All inherited behaviour is preserved bit-for-bit —
    the views cover the same slots the private arrays would.
    """

    #: Row in the pool's per-memcg matrices; assigned by the pool.
    _pool_row: int = -1
    #: The owning pool; assigned by :meth:`MachinePagePool.add`.
    _pool: Optional["MachinePagePool"] = None

    # The reclaim threshold and zswap gate are written by the node agent
    # once per control round but *read* by the pooled reclaim mask for
    # every page on the machine.  Property setters mirror them into the
    # pool's per-row encoded-threshold array so ``reclaim_pairs`` gathers
    # thresholds with one indexed load instead of a per-memcg Python walk.

    @property
    def cold_age_threshold(self) -> float:
        return self._cold_age_threshold

    @cold_age_threshold.setter
    def cold_age_threshold(self, value: float) -> None:
        self._cold_age_threshold = value
        if self._pool is not None:
            self._pool.refresh_row_threshold(self)

    @property
    def zswap_enabled(self) -> bool:
        return self._zswap_enabled

    @zswap_enabled.setter
    def zswap_enabled(self, value: bool) -> None:
        self._zswap_enabled = value
        if self._pool is not None:
            self._pool.refresh_row_threshold(self)

    def __getstate__(self):
        # The views alias pool storage: pickling them would ship detached
        # copies (and double the payload).  Drop them — the pool carries
        # the data, and ``Machine.__setstate__`` rebinds on arrival.
        state = self.__dict__.copy()
        for attr, _field in _VIEW_BINDINGS:
            state.pop(attr, None)
        state.pop("cold_age_histogram", None)
        state.pop("promotion_histogram", None)
        return state


class MachinePagePool:
    """Machine-wide columnar storage for every memcg's page state.

    Segments are contiguous and compacted on removal (higher segments
    slide down), so the pooled passes always sweep one dense ``[0, used)``
    prefix.  All stored per-slot data is position-independent —
    ``huge_group`` holds memcg-local ids, ``owner_row`` holds stable row
    ids — which is what makes the slide a plain memmove.

    Args:
        bins: the fleet-wide candidate-threshold grid.
        scan_period: the machine's kstaled period (uniform across memcgs).
    """

    def __init__(self, bins: AgeBins, scan_period: int):
        self.bins = bins
        self.scan_period = int(scan_period)
        self.used = 0
        self._cap = 0
        for name, dtype, fill in _PAGE_FIELDS:
            setattr(self, name, np.full(0, fill, dtype=dtype))

        nbins = len(bins)
        self._nbins = nbins
        self._row_cap = 0
        self._n_rows = 0
        self.row_base = np.zeros(0, dtype=np.int64)
        self.row_size = np.zeros(0, dtype=np.int64)
        self.cold_counts = np.zeros((0, nbins), dtype=np.int64)
        self.cold_young = np.zeros(0, dtype=np.int64)
        self.promo_counts = np.zeros((0, nbins), dtype=np.int64)
        self.promo_young = np.zeros(0, dtype=np.int64)
        #: Per-row reclaim threshold in scans, pre-encoded: ``_NEVER_SCANS``
        #: while zswap is disabled or the threshold is non-finite.  Kept in
        #: sync by the :class:`ColumnarMemCg` property setters.
        self.row_reclaim_thr = np.full(0, _NEVER_SCANS, dtype=np.int64)
        self.row_memcg: List[Optional[ColumnarMemCg]] = []
        self._free_rows: List[int] = []
        #: Per-row resident-page counts from the most recent
        #: :meth:`scan_all` — the cluster layer reads these to book scan
        #: pages back to each machine when the pool is cluster-scoped.
        self.last_scan_row_pages = np.zeros(0, dtype=np.int64)

        #: Age (in scans) -> histogram bin; shared by every segment since
        #: the scan period is a machine-level parameter.
        self._bin_lut = bins.bin_of_age(
            np.arange(MAX_PAGE_AGE_SCANS + 1, dtype=np.int64) * self.scan_period
        ).astype(np.int16)

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------

    def add(self, memcg: ColumnarMemCg) -> None:
        """Claim a segment + histogram row for a new memcg and bind views."""
        n = memcg.capacity_pages
        if self.used + n > self._cap:
            self._grow_pages(max(self._cap * 2, self.used + n, 4096))
        row = self._take_row()
        base = self.used
        self.used += n
        self.row_base[row] = base
        self.row_size[row] = n
        self.row_memcg[row] = memcg
        memcg._pool_row = row
        memcg._pool = self
        # Free slots already carry construction defaults; only ownership
        # and the histogram row need (re)setting.
        self.owner_row[base : base + n] = row
        self.cold_counts[row, :] = 0
        self.cold_young[row] = 0
        self.promo_counts[row, :] = 0
        self.promo_young[row] = 0
        self.bind(memcg)

    def remove(self, memcg: ColumnarMemCg) -> None:
        """Release a memcg's segment, compacting the pool behind it.

        The departing memcg keeps private *copies* of its final state, so
        late readers (job stats, tests) see a frozen snapshot rather than
        recycled pool slots.
        """
        row = memcg._pool_row
        base = int(self.row_base[row])
        size = int(self.row_size[row])
        for attr, _field in _VIEW_BINDINGS:
            setattr(memcg, attr, getattr(memcg, attr).copy())
        memcg.cold_age_histogram = memcg.cold_age_histogram.copy()
        memcg.promotion_histogram = memcg.promotion_histogram.copy()
        memcg._pool_row = -1
        memcg._pool = None

        tail = self.used - (base + size)
        if tail:
            for name, _dtype, _fill in _PAGE_FIELDS:
                arr = getattr(self, name)
                arr[base : base + tail] = arr[base + size : self.used].copy()
        new_used = self.used - size
        for name, _dtype, fill in _PAGE_FIELDS:
            getattr(self, name)[new_used : self.used] = fill
        self.used = new_used

        self.row_base[self.row_base > base] -= size
        self.row_base[row] = 0
        self.row_size[row] = 0
        self.row_reclaim_thr[row] = _NEVER_SCANS
        self.row_memcg[row] = None
        self._free_rows.append(row)
        self._rebind_from(base)

    def bind(self, memcg: ColumnarMemCg) -> None:
        """(Re)point one memcg's arrays and histograms at its segment."""
        row = memcg._pool_row
        base = int(self.row_base[row])
        end = base + int(self.row_size[row])
        for attr, field in _VIEW_BINDINGS:
            setattr(memcg, attr, getattr(self, field)[base:end])
        memcg.cold_age_histogram = PooledAgeHistogram(
            self.bins, self.cold_counts[row], self.cold_young, row
        )
        memcg.promotion_histogram = PooledAgeHistogram(
            self.bins, self.promo_counts[row], self.promo_young, row
        )
        self.refresh_row_threshold(memcg)

    def refresh_row_threshold(self, memcg: "ColumnarMemCg") -> None:
        """Re-encode one memcg's reclaim threshold into the row array.

        Encodes exactly the gate the scalar ``MemCg.reclaim_candidates``
        applies per call: disabled zswap or a non-finite threshold means
        "never reclaim"; otherwise the threshold in whole scans (ceil),
        clamped so the encoded value always fits the sentinel.
        """
        threshold = memcg._cold_age_threshold
        if not memcg._zswap_enabled or not math.isfinite(threshold):
            encoded = _NEVER_SCANS
        else:
            encoded = min(
                math.ceil(threshold / self.scan_period), _NEVER_SCANS
            )
        self.row_reclaim_thr[memcg._pool_row] = encoded

    #: True while the memcg views may alias dead storage (set on pickle,
    #: cleared by :meth:`rebind_all`).  Lets the many machines sharing a
    #: cluster-scoped pool rebind it exactly once after unpickling.
    _views_stale = False

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_views_stale"] = True
        return state

    def rebind_all(self) -> None:
        """Rebind every live memcg (after unpickling or storage growth)."""
        for memcg in self.row_memcg:
            if memcg is not None:
                self.bind(memcg)
        self._views_stale = False

    def _rebind_from(self, floor_base: int) -> None:
        for memcg in self.row_memcg:
            if memcg is not None and self.row_base[memcg._pool_row] >= floor_base:
                self.bind(memcg)

    def _take_row(self) -> int:
        if self._free_rows:
            self._free_rows.sort()
            return self._free_rows.pop(0)
        if self._n_rows == self._row_cap:
            self._grow_rows(max(self._row_cap * 2, 16))
        row = self._n_rows
        self._n_rows += 1
        self.row_memcg.append(None)
        return row

    def _grow_pages(self, new_cap: int) -> None:
        for name, dtype, fill in _PAGE_FIELDS:
            old = getattr(self, name)
            fresh = np.full(new_cap, fill, dtype=dtype)
            fresh[: self.used] = old[: self.used]
            setattr(self, name, fresh)
        self._cap = new_cap
        self.rebind_all()

    def _grow_rows(self, new_row_cap: int) -> None:
        n = self._n_rows
        nbins = self._nbins
        for name in ("row_base", "row_size", "cold_young", "promo_young"):
            fresh = np.zeros(new_row_cap, dtype=np.int64)
            fresh[:n] = getattr(self, name)[:n]
            setattr(self, name, fresh)
        fresh_thr = np.full(new_row_cap, _NEVER_SCANS, dtype=np.int64)
        fresh_thr[:n] = self.row_reclaim_thr[:n]
        self.row_reclaim_thr = fresh_thr
        for name in ("cold_counts", "promo_counts"):
            fresh = np.zeros((new_row_cap, nbins), dtype=np.int64)
            fresh[:n] = getattr(self, name)[:n]
            setattr(self, name, fresh)
        self._row_cap = new_row_cap
        self.rebind_all()

    # ------------------------------------------------------------------
    # Pooled accounting reductions (replace per-memcg Python sums)
    # ------------------------------------------------------------------

    def resident_pages(self) -> int:
        """Machine-wide resident pages (near + far), one pass."""
        return int(np.count_nonzero(self.resident[: self.used]))

    def near_pages(self) -> int:
        """Machine-wide pages held uncompressed in DRAM."""
        u = self.used
        return int(np.count_nonzero(
            self.resident[:u] & (self.state[:u] == PageState.NEAR)
        ))

    def far_pages(self) -> int:
        """Machine-wide pages held compressed in the zswap arena."""
        u = self.used
        return int(np.count_nonzero(
            self.resident[:u] & (self.state[:u] == PageState.FAR)
        ))

    def cold_pages(self, threshold_seconds: float) -> int:
        """Machine-wide resident pages idle at least ``threshold_seconds``."""
        u = self.used
        threshold_scans = int(np.ceil(threshold_seconds / self.scan_period))
        return int(np.count_nonzero(
            self.resident[:u] & (self.age_scans[:u] >= threshold_scans)
        ))

    # ------------------------------------------------------------------
    # Zero-copy telemetry export
    # ------------------------------------------------------------------

    def export_columns(
        self, rows: np.ndarray, min_cold_age_seconds: int
    ) -> Dict[str, np.ndarray]:
        """Materialize one export window's telemetry columns for ``rows``.

        The zero-copy half of the telemetry fast path: one fancy-index
        gather per histogram column (the gathers *are* the copies — the
        returned arrays never alias live pool storage) plus a single
        cumulative-sum sweep over the rows' covering page span for the
        per-row resident counts.  No per-job Python loop runs here; the
        exporter packs the result into a
        :class:`~repro.model.trace.TelemetryBlock` as-is.

        Args:
            rows: pool row ordinals of the memcgs to export, in export
                order (one output row each).
            min_cold_age_seconds: the SLO's working-set window; the
                working-set column replays
                :func:`repro.core.slo.working_set_pages` per row.

        Returns:
            Columns keyed ``promotion_counts``/``promotion_young``
            (cumulative, since pool start), ``cold_counts``/``cold_young``
            (current snapshot), ``working_set_pages``, and
            ``resident_pages`` — int64 throughout, bit-identical to the
            per-memcg scalar reads.
        """
        rows = np.asarray(rows, dtype=np.int64)
        n = rows.size
        nbins = self._nbins
        if n == 0:
            return {
                "promotion_counts": np.zeros((0, nbins), dtype=np.int64),
                "promotion_young": np.zeros(0, dtype=np.int64),
                "cold_counts": np.zeros((0, nbins), dtype=np.int64),
                "cold_young": np.zeros(0, dtype=np.int64),
                "working_set_pages": np.zeros(0, dtype=np.int64),
                "resident_pages": np.zeros(0, dtype=np.int64),
            }
        cold_counts = self.cold_counts[rows]
        cold_young = self.cold_young[rows]
        # Per-row resident counts: gather exactly the rows' page slots
        # (segments are contiguous; np.repeat builds the concatenated
        # ranges) and reduce each segment with one prefix sum — the cost
        # is O(pages owned by ``rows``), matching the scalar per-memcg
        # ``count_nonzero`` walk even when other machines' segments share
        # a cluster-scoped pool.
        bases = self.row_base[rows]
        sizes = self.row_size[rows]
        ends = np.cumsum(sizes)
        starts = ends - sizes
        total = int(ends[-1]) if n else 0
        slots = (
            np.repeat(bases - starts, sizes)
            + np.arange(total, dtype=np.int64)
        )
        prefix = np.concatenate([
            np.zeros(1, dtype=np.int64),
            np.cumsum(self.resident[slots], dtype=np.int64),
        ])
        resident = prefix[ends] - prefix[starts]
        # Working set: young pages plus every bin strictly below the
        # window (the vectorized twin of ``slo.working_set_pages``).
        idx = bisect_left(self.bins.thresholds, min_cold_age_seconds)
        working_set = cold_young + cold_counts[:, :idx].sum(axis=1)
        return {
            "promotion_counts": self.promo_counts[rows],
            "promotion_young": self.promo_young[rows],
            "cold_counts": cold_counts,
            "cold_young": cold_young,
            "working_set_pages": working_set,
            "resident_pages": resident,
        }

    # ------------------------------------------------------------------
    # Pooled kstaled scan
    # ------------------------------------------------------------------

    def scan_all(self, memcgs: Iterable[MemCg]) -> int:
        """One kstaled pass over every segment in a single machine sweep.

        Replays ``MemCg.scan_update`` slot-for-slot: huge-bit propagation,
        promotion-histogram accounting from pre-reset ages, age reset /
        saturating increment, two-list LRU maintenance, dirty-page payload
        resampling (per memcg, with that memcg's own RNG, in iteration
        order — the draw sequences match the scalar kernel exactly), and
        the incremental cold-age histogram fold.

        Args:
            memcgs: the machine's memcgs in scan order.

        Returns:
            Total resident pages examined (the kstaled CPU-cost input).
        """
        memcg_list = list(memcgs)
        if invariants_enabled():
            verify_column_contracts(self, COLUMN_CONTRACTS, where="scan_all")
        u = self.used
        if u == 0:
            self.last_scan_row_pages = np.zeros(self._row_cap, dtype=np.int64)
            return 0
        res = self.resident[:u]
        accessed = self.accessed[:u]
        age = self.age_scans[:u]
        state = self.state[:u]
        owner = self.owner_row[:u]

        self._propagate_huge_bits_pooled(u, res)

        acc = res & accessed
        idle = res & ~accessed

        # Promotion histograms for all memcgs: bincount keyed by
        # (row, bin) over the accessed pages' pre-reset ages.
        acc_idx = np.flatnonzero(acc)
        if acc_idx.size:
            rows = owner[acc_idx].astype(np.int64)
            ages_acc = np.minimum(age[acc_idx], MAX_PAGE_AGE_SCANS)
            bins_idx = self._bin_lut[ages_acc].astype(np.int64)
            hot = bins_idx >= 0
            if hot.any():
                flat = self.promo_counts.reshape(-1)
                flat += np.bincount(
                    rows[hot] * self._nbins + bins_idx[hot],
                    minlength=flat.size,
                )
            if not hot.all():
                self.promo_young += np.bincount(
                    rows[~hot], minlength=self._row_cap
                )
            # Mirror the scalar kernel's per-memcg promotion-event
            # counter (one bump per accessed resident page) so the node
            # agent's quiet-round fast path sees identical values under
            # either backend.
            per_row = np.bincount(rows, minlength=self._row_cap)
            for r in np.flatnonzero(per_row):
                self.row_memcg[r].promo_hist_events += int(per_row[r])

        age[acc] = 0
        age[idle] = np.minimum(age[idle] + 1, MAX_PAGE_AGE_SCANS)
        lru = self.lru_active[:u]
        lru[acc] = True
        lru[idle] = False
        accessed[res] = False

        # Dirtied NEAR pages shed their incompressible mark and resample
        # payload content.  The sampling itself must stay per memcg: each
        # memcg owns an independent RNG stream and the scalar kernel draws
        # exactly n_dirty values from it.
        dirty_idx = np.flatnonzero(res & self.dirtied[:u] & (state == PageState.NEAR))
        if dirty_idx.size:
            self.incompressible[dirty_idx] = False
            payload = self.payload_bytes[:u]
            for memcg in memcg_list:
                seg_row = memcg._pool_row
                seg_base = int(self.row_base[seg_row])
                lo = int(np.searchsorted(dirty_idx, seg_base))
                hi = int(np.searchsorted(
                    dirty_idx, seg_base + int(self.row_size[seg_row])
                ))
                if lo == hi:
                    continue
                payload[dirty_idx[lo:hi]] = (
                    memcg.content_profile.sample_payload_bytes(
                        hi - lo, memcg._rng
                    )
                )
                memcg.invalidate_reclaim_cache()
        self.dirtied[:u][res] = False

        self._update_cold_histograms_pooled(u, res, age, owner)

        if invariants_enabled():
            for memcg in memcg_list:
                check_memcg_histogram(memcg)
        # Per-row resident counts: what the scalar kernel books as
        # ``pages_scanned`` per memcg.  Kept for the cluster layer, which
        # attributes one pooled scan back to many machines' kstaleds.
        self.last_scan_row_pages = np.bincount(
            self.owner_row[:u][res], minlength=self._row_cap
        )
        return int(self.last_scan_row_pages.sum())

    def _propagate_huge_bits_pooled(self, u: int, res: np.ndarray) -> None:
        """Share accessed/dirty bits within every huge mapping at once.

        Group ids are memcg-local; adding the owner segment's base yields
        pool-global ids that cannot collide across memcgs, so one
        aggregate pass covers every mapping on the machine.
        """
        hg = self.huge_group[:u]
        hp = np.flatnonzero(res & (hg >= 0))
        if hp.size == 0:
            return
        groups = hg[hp] + self.row_base[self.owner_row[hp]]
        for bits in (self.accessed[:u], self.dirtied[:u]):
            aggregate = np.zeros(u, dtype=bool)
            np.logical_or.at(aggregate, groups, bits[hp])
            bits[hp] = aggregate[groups]

    def _update_cold_histograms_pooled(
        self, u: int, res: np.ndarray, age: np.ndarray, owner: np.ndarray
    ) -> None:
        """Incremental cold-age fold for all memcgs: the pooled twin of
        ``MemCg._update_cold_histogram`` (same changed-bin detection, same
        ±1 contributions, summed per (row, bin) by bincount)."""
        new_bins = np.full(u, _HIST_NO_PAGE, dtype=np.int16)
        new_bins[res] = self._bin_lut[np.minimum(age[res], MAX_PAGE_AGE_SCANS)]
        hist_bin = self.hist_bin[:u]
        changed = np.flatnonzero(new_bins != hist_bin)
        if changed.size == 0:
            return
        rows = owner[changed].astype(np.int64)
        old = hist_bin[changed].astype(np.int64)
        new = new_bins[changed].astype(np.int64)
        flat = self.cold_counts.reshape(-1)
        nbins = self._nbins
        old_binned = old >= 0
        if old_binned.any():
            flat -= np.bincount(
                rows[old_binned] * nbins + old[old_binned], minlength=flat.size
            )
        old_young = old == _HIST_YOUNG
        if old_young.any():
            self.cold_young -= np.bincount(
                rows[old_young], minlength=self._row_cap
            )
        new_binned = new >= 0
        if new_binned.any():
            flat += np.bincount(
                rows[new_binned] * nbins + new[new_binned], minlength=flat.size
            )
        new_young = new == _HIST_YOUNG
        if new_young.any():
            self.cold_young += np.bincount(
                rows[new_young], minlength=self._row_cap
            )
        hist_bin[changed] = new_bins[changed]

    # ------------------------------------------------------------------
    # Pooled kreclaimd candidate evaluation
    # ------------------------------------------------------------------

    def reclaim_pairs(
        self, memcgs: Iterable[MemCg]
    ) -> List[Tuple[MemCg, np.ndarray]]:
        """Reclaim candidates for every memcg from one machine-wide mask.

        Builds the eligibility mask (resident, NEAR, evictable,
        compressible, age at or beyond the *owning memcg's* threshold) in
        a single pass — per-row thresholds are pre-encoded in
        ``row_reclaim_thr`` (maintained by the memcg property setters, so
        no per-memcg gather loop runs here) — then groups the candidate
        list back into memcg-local indices along segment boundaries.
        Memcgs with zswap disabled or a non-finite threshold carry the
        never-matches sentinel and yield nothing, matching
        ``MemCg.reclaim_candidates``.

        Returns:
            ``(memcg, local_candidates)`` pairs in iteration order,
            candidates ascending — byte-identical to the scalar walk.
        """
        u = self.used
        if u == 0:
            return []
        owner = self.owner_row[:u]
        mask = (
            self.resident[:u]
            & (self.state[:u] == PageState.NEAR)
            & ~self.unevictable[:u]
            & ~self.incompressible[:u]
            & (self.age_scans[:u] >= self.row_reclaim_thr[owner])
        )
        cand = np.flatnonzero(mask)
        if cand.size == 0:
            return []
        # Segments are contiguous, so candidates sorted by slot are also
        # grouped by owning row; one boundary scan replaces the two
        # searchsorted calls per memcg.
        rows = owner[cand]
        starts = np.flatnonzero(np.r_[True, rows[1:] != rows[:-1]])
        bounds = np.append(starts[1:], rows.size)
        spans = {
            int(rows[s]): (int(s), int(e)) for s, e in zip(starts, bounds)
        }
        pairs: List[Tuple[MemCg, np.ndarray]] = []
        for memcg in memcgs:
            span = spans.get(memcg._pool_row)
            if span is None:
                continue
            lo, hi = span
            pairs.append(
                (memcg, cand[lo:hi] - int(self.row_base[memcg._pool_row]))
            )
        return pairs
