"""Promotion-rate SLI aggregation (Fig. 7).

Fig. 7 plots "the distribution of the promotion rate of each job normalized
to its working set size": one value per job — its average promotion rate
over its observed lifetime, as a percentage of its average working set per
minute — with the SLO requiring the 98th percentile of that distribution to
stay under 0.2 %/min.

The node agent's per-minute :class:`~repro.agent.node_agent.SliSample`
records are the raw input; this module reduces them per job.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.agent.node_agent import SliSample

__all__ = ["per_job_promotion_rates", "slo_violation_fraction"]


def per_job_promotion_rates(samples: Iterable[SliSample]) -> List[float]:
    """Per-job lifetime-average normalized promotion rate (%/min).

    For each job: total promotions across all observed minutes divided by
    the number of minutes, normalized by the job's mean working set.  Jobs
    never observed with a working set are skipped (nothing to normalize
    by).
    """
    promotions: Dict[str, int] = {}
    wss_sum: Dict[str, int] = {}
    minutes: Dict[str, int] = {}
    for sample in samples:
        promotions[sample.job_id] = (
            promotions.get(sample.job_id, 0) + sample.promotions
        )
        wss_sum[sample.job_id] = (
            wss_sum.get(sample.job_id, 0) + sample.working_set_pages
        )
        minutes[sample.job_id] = minutes.get(sample.job_id, 0) + 1

    rates = []
    for job_id, n_minutes in minutes.items():
        mean_wss = wss_sum[job_id] / n_minutes
        if mean_wss <= 0:
            continue
        per_min = promotions[job_id] / n_minutes
        rates.append(100.0 * per_min / mean_wss)
    return rates


def slo_violation_fraction(
    samples: Iterable[SliSample], limit_pct_per_min: float = 0.2
) -> float:
    """Fraction of per-minute samples whose normalized rate exceeded the
    SLO (the steady-state ``100 - K`` percent the §4.3 controller aims
    for)."""
    total = 0
    violations = 0
    for sample in samples:
        if sample.working_set_pages <= 0:
            continue
        total += 1
        if sample.normalized_rate_pct_per_min > limit_pct_per_min:
            violations += 1
    return violations / total if total else 0.0
