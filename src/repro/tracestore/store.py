"""Append-only columnar trace store (the on-disk telemetry warehouse).

The paper's control loop (§5.2-5.3) assumes a telemetry warehouse that
retains per-job cold-age histograms fleet-wide; the in-memory
:class:`~repro.cluster.trace_db.TraceDatabase` caps both fleet size and
trace horizon.  This module is the on-disk half of the columnar arc:
trace entries append into a bounded in-memory write buffer that seals
into fixed-schema ``.npz`` segments (one numpy array per column), a
small JSON manifest indexes the segments, per-window aggregates are
maintained incrementally at append time, and old segments can be
downsampled in place without losing those aggregates.

Layout of a store directory::

    store/
      manifest.json        # schema, string tables, segment + window index
      seg-000000.npz       # columns: time, job, machine, wss, resident,
      seg-000001.npz       #   cpu_cores, promotion_counts/_young,
      ...                  #   cold_counts/_young

Columns are fixed-schema: scalar per-row vectors plus two
``(rows, len(bins))`` histogram-count matrices over the shared candidate
threshold grid.  Job and machine ids are interned into string tables in
the manifest and stored as ordinals.  ``.npz`` members are read lazily
per column, so consumers that only need a few columns (e.g. the window
CLI reading ``time``) never materialize the histogram matrices.

The store is **single-writer**: the process that created (or opened) it
owns the files.  A forked copy — e.g. the parallel engine's workers,
which inherit the parent fleet via ``fork`` — keeps buffering appends in
memory but never touches disk, exactly like the in-memory database the
workers otherwise stage into.

Self-describing metrics (rows/segments/bytes written, flush latency,
buffer occupancy) register in the :mod:`repro.obs` catalog under the
``repro_tracestore_*`` names.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.common.errors import TraceError, TraceStoreError
from repro.common.validation import check_positive
from repro.core.histograms import AgeBins, AgeHistogram
from repro.model.trace import (
    TRACE_PERIOD_SECONDS,
    CompiledTrace,
    TelemetryBlock,
    TraceEntry,
)
from repro.obs import MetricName, MetricRegistry, Stopwatch, get_registry

__all__ = [
    "DEFAULT_BUFFER_ROWS",
    "DEFAULT_WINDOW_SECONDS",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "SegmentInfo",
    "TraceStore",
    "WindowSummary",
]

#: Manifest file name inside a store directory.
MANIFEST_NAME = "manifest.json"

#: On-disk format version; bumped on incompatible schema changes.
FORMAT_VERSION = 1

#: Rows buffered in memory before sealing a segment.
DEFAULT_BUFFER_ROWS = 4096

#: Width of one incremental-aggregation window (one hour of sim time).
DEFAULT_WINDOW_SECONDS = 3600

#: int64 per-row columns, in schema order.
_INT_COLUMNS = (
    "time",
    "job",
    "machine",
    "working_set_pages",
    "resident_pages",
    "promotion_young",
    "cold_young",
)

#: float64 per-row columns.
_FLOAT_COLUMNS = ("cpu_cores",)

#: ``(rows, len(bins))`` int64 histogram-count matrices.
_MATRIX_COLUMNS = ("promotion_counts", "cold_counts")

#: Every column a segment must carry.
COLUMNS = _INT_COLUMNS + _FLOAT_COLUMNS + _MATRIX_COLUMNS

#: Grow-on-demand ``arange`` shared by the block ingest fast path, so
#: detecting the canonical ``job == arange(n)`` layout allocates nothing.
_IDENTITY = np.arange(1024, dtype=np.int64)


def _identity_ordinals(n: int) -> np.ndarray:
    global _IDENTITY
    if n > _IDENTITY.size:
        _IDENTITY = np.arange(max(n, 2 * _IDENTITY.size), dtype=np.int64)
    return _IDENTITY[:n]


@dataclass
class SegmentInfo:
    """Manifest record for one sealed segment.

    Attributes:
        name: file name inside the store directory.
        rows: rows stored.
        time_min: earliest entry time in the segment.
        time_max: latest entry time in the segment.
        bytes: file size when sealed.
        downsample: aggregation factor relative to the raw trace period
            (1 = raw 5-minute rows; ``k`` = each row merges ``k``
            consecutive raw rows of one job).
    """

    name: str
    rows: int
    time_min: int
    time_max: int
    bytes: int
    downsample: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "rows": self.rows,
            "time_min": self.time_min,
            "time_max": self.time_max,
            "bytes": self.bytes,
            "downsample": self.downsample,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SegmentInfo":
        try:
            return cls(
                name=str(data["name"]),
                rows=int(data["rows"]),
                time_min=int(data["time_min"]),
                time_max=int(data["time_max"]),
                bytes=int(data["bytes"]),
                downsample=int(data.get("downsample", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceStoreError(f"bad segment record in manifest: {exc}") from exc


@dataclass
class WindowSummary:
    """Incremental aggregate over one fixed time window.

    Maintained at append time, so the full-resolution summary survives
    even after the raw rows underneath are downsampled away.

    Attributes:
        start: window start time (multiple of the window width).
        rows: entries recorded in the window.
        job_ordinals: distinct jobs seen (ordinals into the job table).
        working_set_pages: summed working-set sizes.
        cold_pages: summed cold pages at the minimum threshold.
        promoted_pages: summed would-be promotions at the minimum
            threshold.
    """

    start: int
    rows: int = 0
    job_ordinals: Set[int] = field(default_factory=set)
    working_set_pages: int = 0
    cold_pages: int = 0
    promoted_pages: int = 0

    @property
    def jobs(self) -> int:
        """Distinct jobs observed in the window."""
        return len(self.job_ordinals)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "start": self.start,
            "rows": self.rows,
            "job_ordinals": sorted(self.job_ordinals),
            "working_set_pages": self.working_set_pages,
            "cold_pages": self.cold_pages,
            "promoted_pages": self.promoted_pages,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WindowSummary":
        try:
            return cls(
                start=int(data["start"]),
                rows=int(data["rows"]),
                job_ordinals=set(int(j) for j in data["job_ordinals"]),
                working_set_pages=int(data["working_set_pages"]),
                cold_pages=int(data["cold_pages"]),
                promoted_pages=int(data["promoted_pages"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceStoreError(f"bad window record in manifest: {exc}") from exc


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file and an
    atomic rename, so a crash mid-write never leaves a truncated file."""
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # rename failed; don't litter
            tmp.unlink()


class TraceStore:
    """An append-only columnar store of trace telemetry.

    Args:
        root: store directory (created unless ``create=False``).
        buffer_rows: rows buffered before sealing a segment.
        window_seconds: width of the incremental aggregation windows.
        registry: metrics registry (defaults to the process-global one).
        create: when False, the directory must already hold a manifest —
            the mode the read-only CLI commands use, so a typo'd path
            fails loudly instead of silently creating an empty store.

    Raises:
        TraceStoreError: on a missing store (``create=False``) or a
            malformed manifest.
    """

    def __init__(
        self,
        root: Union[str, Path],
        buffer_rows: int = DEFAULT_BUFFER_ROWS,
        window_seconds: int = DEFAULT_WINDOW_SECONDS,
        registry: Optional[MetricRegistry] = None,
        create: bool = True,
    ):
        check_positive(buffer_rows, "buffer_rows")
        check_positive(window_seconds, "window_seconds")
        self.root = Path(root)
        self.buffer_rows = int(buffer_rows)
        self.window_seconds = int(window_seconds)
        self.interval_seconds = TRACE_PERIOD_SECONDS
        self._owner_pid = os.getpid()

        self.bins: Optional[AgeBins] = None
        self._jobs: List[str] = []
        self._job_index: Dict[str, int] = {}
        self._machines: List[str] = []
        self._machine_index: Dict[str, int] = {}
        #: Rows per job already sealed into segments (buffer excluded).
        self._job_sealed_rows: List[int] = []
        #: Last appended entry time per job (order enforcement).
        self._job_last_time: List[int] = []
        self.segments: List[SegmentInfo] = []
        self._next_segment_id = 0
        self._windows: Dict[int, WindowSummary] = {}
        self._buffer: Dict[str, list] = {name: [] for name in COLUMNS}
        #: Whole-window column chunks appended via :meth:`append_batch`,
        #: awaiting the next segment seal alongside the row buffer.
        self._chunks: List[Dict[str, np.ndarray]] = []
        self._chunk_rows = 0
        #: Interning results keyed by (kind, table tuple).  Exporters
        #: rebuild the same small string tables every window, so on the
        #: block fast path a cache hit replaces the per-id interning
        #: loop with one dict lookup.  Ordinals never change once
        #: assigned, which makes cached LUTs valid forever.
        self._lut_cache: Dict[Tuple[str, Tuple[str, ...]], np.ndarray] = {}
        #: Entries currently stored (sealed + buffered).
        self.rows_total = 0

        # Plain attributes mirrored into metrics, so the bench harness
        # can report them without scraping a registry.
        self.bytes_written = 0
        self.flush_count = 0
        self.flush_seconds_total = 0.0
        self.last_flush_seconds = 0.0
        self.rows_downsampled = 0

        manifest = self.root / MANIFEST_NAME
        if manifest.exists():
            self._load_manifest(manifest)
        elif not create:
            raise TraceStoreError(
                f"{self.root} is not a trace store (no {MANIFEST_NAME})"
            )
        else:
            self.root.mkdir(parents=True, exist_ok=True)

        self._bind_metrics(
            registry if registry is not None else get_registry()
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _bind_metrics(self, registry: MetricRegistry) -> None:
        store = self.root.name or "store"
        self._m_rows = registry.counter(
            MetricName.TRACESTORE_ROWS_TOTAL,
            "Trace rows appended to the columnar store.", ("store",)
        ).labels(store=store)
        self._m_segments = registry.counter(
            MetricName.TRACESTORE_SEGMENTS_TOTAL,
            "Columnar segments sealed to disk.", ("store",)
        ).labels(store=store)
        self._m_bytes = registry.counter(
            MetricName.TRACESTORE_BYTES_WRITTEN_TOTAL,
            "Bytes written to sealed segments.", ("store",)
        ).labels(store=store)
        self._m_flush = registry.histogram(
            MetricName.TRACESTORE_FLUSH_SECONDS,
            "Wall seconds per segment flush.", ("store",)
        ).labels(store=store)
        self._g_buffer = registry.gauge(
            MetricName.TRACESTORE_BUFFER_ROWS,
            "Rows currently waiting in the write buffer.", ("store",)
        ).labels(store=store)
        self._m_downsampled = registry.counter(
            MetricName.TRACESTORE_ROWS_DOWNSAMPLED_TOTAL,
            "Raw rows merged away by downsampling.", ("store",)
        ).labels(store=store)
        self._m_blocks = registry.counter(
            MetricName.TRACESTORE_BLOCKS_TOTAL,
            "Telemetry blocks ingested via the zero-copy column path.",
            ("store",)
        ).labels(store=store)
        self._m_block_rows = registry.counter(
            MetricName.TRACESTORE_BLOCK_ROWS_TOTAL,
            "Rows ingested via the zero-copy column path.", ("store",)
        ).labels(store=store)

    @property
    def _is_owner(self) -> bool:
        """True in the process that owns the files (see module doc)."""
        return os.getpid() == self._owner_pid

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def _load_manifest(self, path: Path) -> None:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise TraceStoreError(f"{path}: unreadable manifest: {exc}") from exc
        if not isinstance(data, dict):
            raise TraceStoreError(f"{path}: manifest is not a JSON object")
        version = data.get("version")
        if version != FORMAT_VERSION:
            raise TraceStoreError(
                f"{path}: manifest version {version!r}, "
                f"this build reads version {FORMAT_VERSION}"
            )
        try:
            thresholds = data["thresholds"]
            self.bins = (
                AgeBins(tuple(int(t) for t in thresholds))
                if thresholds is not None
                else None
            )
            self.interval_seconds = int(data["interval_seconds"])
            self.window_seconds = int(data["window_seconds"])
            self._jobs = [str(j) for j in data["jobs"]]
            self._machines = [str(m) for m in data["machines"]]
            self._job_sealed_rows = [int(n) for n in data["job_rows"]]
            self._job_last_time = [int(t) for t in data["job_last_time"]]
            self._next_segment_id = int(data["next_segment_id"])
            self.segments = [
                SegmentInfo.from_dict(seg) for seg in data["segments"]
            ]
            self._windows = {
                w.start: w
                for w in (
                    WindowSummary.from_dict(item) for item in data["windows"]
                )
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceStoreError(
                f"{path}: manifest missing or malformed field: {exc}"
            ) from exc
        if len(self._job_sealed_rows) != len(self._jobs) or len(
            self._job_last_time
        ) != len(self._jobs):
            raise TraceStoreError(
                f"{path}: job tables disagree on length"
            )
        self._job_index = {j: i for i, j in enumerate(self._jobs)}
        self._machine_index = {m: i for i, m in enumerate(self._machines)}
        self.rows_total = sum(seg.rows for seg in self.segments)

    def _write_manifest(self) -> None:
        data = {
            "version": FORMAT_VERSION,
            "thresholds": (
                list(self.bins.thresholds) if self.bins is not None else None
            ),
            "interval_seconds": self.interval_seconds,
            "window_seconds": self.window_seconds,
            "jobs": self._jobs,
            "machines": self._machines,
            "job_rows": self._job_sealed_rows,
            "job_last_time": self._job_last_time,
            "next_segment_id": self._next_segment_id,
            "segments": [seg.to_dict() for seg in self.segments],
            "windows": [
                self._windows[start].to_dict()
                for start in sorted(self._windows)
            ],
        }
        _atomic_write_text(
            self.root / MANIFEST_NAME, json.dumps(data, indent=1) + "\n"
        )

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------

    @property
    def jobs(self) -> List[str]:
        """Job ids in first-seen order."""
        return list(self._jobs)

    @property
    def machines(self) -> List[str]:
        """Machine ids in first-seen order."""
        return list(self._machines)

    def job_rows(self, job_id: str) -> int:
        """Rows currently stored for one job (sealed + buffered)."""
        ordinal = self._job_index.get(job_id)
        if ordinal is None:
            return 0
        sealed = self._job_sealed_rows[ordinal]
        buffered = sum(1 for j in self._buffer["job"] if j == ordinal)
        for chunk in self._chunks:
            buffered += int(np.count_nonzero(chunk["job"] == ordinal))
        return sealed + buffered

    def _intern_job(self, job_id: str) -> int:
        ordinal = self._job_index.get(job_id)
        if ordinal is None:
            ordinal = len(self._jobs)
            self._jobs.append(job_id)
            self._job_index[job_id] = ordinal
            self._job_sealed_rows.append(0)
            self._job_last_time.append(-1)
        return ordinal

    def _intern_machine(self, machine_id: str) -> int:
        ordinal = self._machine_index.get(machine_id)
        if ordinal is None:
            ordinal = len(self._machines)
            self._machines.append(machine_id)
            self._machine_index[machine_id] = ordinal
        return ordinal

    #: Bound on distinct interning LUTs kept; a churny fleet cycles many
    #: table shapes, and dropping the cache only costs a re-intern pass.
    _LUT_CACHE_MAX = 1024

    def _cache_lut(self, key: Tuple[str, Tuple[str, ...]],
                   lut: np.ndarray) -> None:
        if len(self._lut_cache) >= self._LUT_CACHE_MAX:
            self._lut_cache.clear()
        self._lut_cache[key] = lut

    def append(self, entry: TraceEntry) -> None:
        """Buffer one entry; seals a segment at the row threshold.

        Raises:
            TraceError: on a threshold-grid mismatch or an out-of-order
                entry for its job — the same contracts
                :class:`~repro.model.trace.JobTrace` enforces.
        """
        if self.bins is None:
            self.bins = entry.bins
        elif entry.bins.thresholds != self.bins.thresholds:
            raise TraceError(
                f"entry for job {entry.job_id} uses threshold grid "
                f"{list(entry.bins.thresholds)}, store is fixed to "
                f"{list(self.bins.thresholds)}"
            )
        job = self._intern_job(entry.job_id)
        if entry.time < self._job_last_time[job]:
            raise TraceError(
                f"out-of-order trace entry for job {entry.job_id} at "
                f"t={entry.time} after t={self._job_last_time[job]}"
            )
        self._job_last_time[job] = entry.time

        buf = self._buffer
        buf["time"].append(int(entry.time))
        buf["job"].append(job)
        buf["machine"].append(self._intern_machine(entry.machine_id))
        buf["working_set_pages"].append(int(entry.working_set_pages))
        buf["resident_pages"].append(int(entry.resident_pages))
        buf["cpu_cores"].append(float(entry.cpu_cores))
        buf["promotion_counts"].append(
            entry.promotion_histogram.counts.copy()
        )
        buf["promotion_young"].append(
            int(entry.promotion_histogram.young_count)
        )
        buf["cold_counts"].append(entry.cold_age_histogram.counts.copy())
        buf["cold_young"].append(int(entry.cold_age_histogram.young_count))

        self._observe_window(entry, job)
        self.rows_total += 1
        if self._is_owner:
            self._m_rows.inc()
            self._g_buffer.set(self._pending_rows)
        if self._pending_rows >= self.buffer_rows:
            self.flush()

    def append_batch(self, entries: Sequence[TraceEntry]) -> None:
        """Buffer a whole export window of entries as one column chunk.

        The batch half of the sink protocol: instead of per-entry list
        appends, the window's entries become numpy column arrays
        immediately and travel to the sealed segment as a single chunk.
        The columnar kernel's telemetry path uses this to ship each
        machine's 5-minute window in one call.  Store contents are
        identical to calling :meth:`append` once per entry, in order.

        Raises:
            TraceError: same contracts as :meth:`append` (threshold-grid
                match, per-job monotonic time).  The batch is rejected
                whole — on error nothing is appended.
        """
        if not entries:
            return
        if self.bins is None:
            self.bins = entries[0].bins
        # Validate the full batch before touching any store state, so a
        # bad batch cannot leave rows half-appended.
        watermark: Dict[str, int] = {}
        for entry in entries:
            if entry.bins.thresholds != self.bins.thresholds:
                raise TraceError(
                    f"entry for job {entry.job_id} uses threshold grid "
                    f"{list(entry.bins.thresholds)}, store is fixed to "
                    f"{list(self.bins.thresholds)}"
                )
            prev = watermark.get(entry.job_id)
            if prev is None:
                ordinal = self._job_index.get(entry.job_id)
                if ordinal is not None:
                    prev = self._job_last_time[ordinal]
            if prev is not None and entry.time < prev:
                raise TraceError(
                    f"out-of-order trace entry for job {entry.job_id} at "
                    f"t={entry.time} after t={prev}"
                )
            watermark[entry.job_id] = entry.time

        n = len(entries)
        jobs = np.empty(n, dtype=np.int64)
        machines = np.empty(n, dtype=np.int64)
        for i, entry in enumerate(entries):
            job = self._intern_job(entry.job_id)
            jobs[i] = job
            machines[i] = self._intern_machine(entry.machine_id)
            self._job_last_time[job] = entry.time
        chunk = {
            "time": np.fromiter(
                (e.time for e in entries), dtype=np.int64, count=n),
            "job": jobs,
            "machine": machines,
            "working_set_pages": np.fromiter(
                (e.working_set_pages for e in entries),
                dtype=np.int64, count=n),
            "resident_pages": np.fromiter(
                (e.resident_pages for e in entries),
                dtype=np.int64, count=n),
            "promotion_young": np.fromiter(
                (e.promotion_histogram.young_count for e in entries),
                dtype=np.int64, count=n),
            "cold_young": np.fromiter(
                (e.cold_age_histogram.young_count for e in entries),
                dtype=np.int64, count=n),
            "cpu_cores": np.fromiter(
                (e.cpu_cores for e in entries), dtype=np.float64, count=n),
            # np.stack copies, so the chunk never aliases live kernel
            # histograms.
            "promotion_counts": np.stack(
                [e.promotion_histogram.counts for e in entries]
            ).astype(np.int64),
            "cold_counts": np.stack(
                [e.cold_age_histogram.counts for e in entries]
            ).astype(np.int64),
        }
        self._commit_chunk(chunk)

    def append_columns(self, block: TelemetryBlock) -> None:
        """Zero-copy ingest of one :class:`TelemetryBlock`.

        The fast half of the sink protocol: the block's arrays become the
        pending chunk directly — only the job/machine ordinal columns are
        rewritten through the store's interning tables; the scalar and
        histogram columns travel to the sealed segment untouched, and no
        :class:`~repro.model.trace.TraceEntry` is ever constructed.
        Store contents are identical to calling :meth:`append` once per
        row of ``block.entries()``, in row order.

        Raises:
            TraceError: same contracts as :meth:`append` — schema/dtype
                validity (always enforced, not only under
                ``REPRO_CHECKS``), threshold-grid match, and per-job
                monotonic time.  The block is rejected whole: on error
                nothing is appended and no metric moves.
        """
        n = block.n_rows
        if n == 0:
            return
        # Hard schema gate: a malformed column must never reach a
        # segment, so validation is unconditional on this path (the
        # per-entry path gets the same guarantee from TraceEntry's
        # constructor normalizing field by field).
        block.validate()
        if self.bins is None:
            self.bins = block.bins
        elif block.bins.thresholds != self.bins.thresholds:
            raise TraceError(
                f"block for jobs {block.job_table[:3]} uses threshold "
                f"grid {list(block.bins.thresholds)}, store is fixed to "
                f"{list(self.bins.thresholds)}"
            )
        # Interning LUTs: exporters rebuild the same job/machine tables
        # window after window, so look the tuples up in the cache before
        # falling back to the per-id interning loop.  A cache hit means
        # every id is already interned, so watermark lookups need no
        # unknown-job sentinel.
        job_key = ("job", tuple(block.job_table))
        job_lut = self._lut_cache.get(job_key)
        last_times = self._job_last_time
        if (
            job_lut is not None
            and n == job_lut.size
            and np.array_equal(block.job, _identity_ordinals(n))
        ):
            # Identity fast path: the canonical exporter block carries
            # each job exactly once with ``job == arange(n)``, so
            # within-block order is trivially monotonic and the only
            # check left is the stored per-job watermark — two short
            # loops over the tiny table instead of the argsort below.
            times = block.time.tolist()
            ordinals = job_lut.tolist()
            for i, ordinal in enumerate(ordinals):
                if times[i] < last_times[ordinal]:
                    raise TraceError(
                        f"out-of-order trace entry for job "
                        f"{block.job_table[i]} at t={times[i]} after "
                        f"t={last_times[ordinal]}"
                    )
            for i, ordinal in enumerate(ordinals):
                last_times[ordinal] = times[i]
            job_col = job_lut.copy()
            time_range = (min(times), max(times))
        else:
            time_range = None
            # Validate per-job monotonic time before touching store
            # state, so a bad block cannot leave rows half-appended.  A
            # stable sort by job keeps row order within each job,
            # turning the per-job check into one vectorized diff.
            order = np.argsort(block.job, kind="stable")
            j_sorted = block.job[order]
            t_sorted = block.time[order]
            same = j_sorted[1:] == j_sorted[:-1]
            bad = same & (np.diff(t_sorted) < 0)
            if np.any(bad):
                at = int(np.flatnonzero(bad)[0])
                raise TraceError(
                    f"out-of-order trace entry for job "
                    f"{block.job_table[int(j_sorted[at + 1])]} at "
                    f"t={int(t_sorted[at + 1])} after t={int(t_sorted[at])}"
                )
            group_start = np.flatnonzero(
                np.concatenate([np.ones(1, dtype=bool), ~same])
            )
            if job_lut is not None:
                stored_last = np.fromiter(
                    (last_times[o] for o in job_lut.tolist()),
                    np.int64, job_lut.size,
                )
            else:
                floor = np.iinfo(np.int64).min
                stored_last = np.fromiter(
                    (
                        last_times[self._job_index[job_id]]
                        if job_id in self._job_index else floor
                        for job_id in block.job_table
                    ),
                    np.int64, len(block.job_table),
                )
            first_time = t_sorted[group_start]
            first_job = j_sorted[group_start]
            late = first_time < stored_last[first_job]
            if np.any(late):
                at = int(np.flatnonzero(late)[0])
                local = int(first_job[at])
                raise TraceError(
                    f"out-of-order trace entry for job "
                    f"{block.job_table[local]} at t={int(first_time[at])} "
                    f"after t={int(stored_last[local])}"
                )

            # All checks passed — intern tables, advance watermarks (the
            # last row of each stable-sorted group is the job's last row
            # in append order).  Interning happens only after validation
            # so a rejected block cannot grow the manifest tables.
            if job_lut is None:
                job_lut = np.fromiter(
                    (self._intern_job(job_id) for job_id in block.job_table),
                    np.int64, len(block.job_table),
                )
                self._cache_lut(job_key, job_lut)
            group_end = np.concatenate([group_start[1:], [n]]) - 1
            for local, last_time in zip(
                j_sorted[group_end], t_sorted[group_end]
            ):
                last_times[int(job_lut[int(local)])] = int(last_time)
            job_col = job_lut[block.job]
        machine_key = ("machine", tuple(block.machine_table))
        machine_lut = self._lut_cache.get(machine_key)
        if machine_lut is None:
            machine_lut = np.fromiter(
                (self._intern_machine(m) for m in block.machine_table),
                np.int64, len(block.machine_table),
            )
            self._cache_lut(machine_key, machine_lut)
        self._commit_chunk({
            "time": block.time,
            "job": job_col,
            "machine": machine_lut[block.machine],
            "working_set_pages": block.working_set_pages,
            "resident_pages": block.resident_pages,
            "promotion_young": block.promotion_young,
            "cold_young": block.cold_young,
            "cpu_cores": block.cpu_cores,
            "promotion_counts": block.promotion_counts,
            "cold_counts": block.cold_counts,
        }, time_range)
        if self._is_owner:
            self._m_blocks.inc()
            self._m_block_rows.inc(n)

    def _commit_chunk(
        self,
        chunk: Dict[str, np.ndarray],
        time_range: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Stage one validated column chunk: fold the row buffer ahead of
        it (append order must hold across mixed per-entry/batch/block
        use), update window aggregates, count rows, maybe seal.  Callers
        that already know the chunk's (min, max) time pass it as
        ``time_range`` to skip two reductions."""
        if self._buffer["time"]:
            sealed = self._buffer_arrays()
            self._chunks.append(sealed)
            self._chunk_rows += int(sealed["time"].size)
            for column in self._buffer.values():
                column.clear()

        n = int(chunk["time"].size)
        jobs = chunk["job"]
        if time_range is None:
            time_range = (int(chunk["time"].min()), int(chunk["time"].max()))
        first = time_range[0] // self.window_seconds * self.window_seconds
        if time_range[1] < first + self.window_seconds:
            # Fast path: an export window's rows share one summary
            # window, so skip the per-window selection masks entirely.
            window = self._windows.get(first)
            if window is None:
                window = WindowSummary(start=first)
                self._windows[first] = window
            window.rows += n
            window.job_ordinals.update(jobs.tolist())
            window.working_set_pages += int(chunk["working_set_pages"].sum())
            window.cold_pages += int(chunk["cold_counts"].sum())
            window.promoted_pages += int(chunk["promotion_counts"].sum())
        else:
            starts = (
                chunk["time"] // self.window_seconds
            ) * self.window_seconds
            for start in np.unique(starts):
                window = self._windows.get(int(start))
                if window is None:
                    window = WindowSummary(start=int(start))
                    self._windows[int(start)] = window
                sel = starts == start
                window.rows += int(np.count_nonzero(sel))
                window.job_ordinals.update(jobs[sel].tolist())
                window.working_set_pages += int(
                    chunk["working_set_pages"][sel].sum())
                window.cold_pages += int(chunk["cold_counts"][sel].sum())
                window.promoted_pages += int(
                    chunk["promotion_counts"][sel].sum())

        self._chunks.append(chunk)
        self._chunk_rows += n
        self.rows_total += n
        if self._is_owner:
            self._m_rows.inc(n)
            self._g_buffer.set(self._pending_rows)
        if self._pending_rows >= self.buffer_rows:
            self.flush()

    def _observe_window(self, entry: TraceEntry, job: int) -> None:
        start = (entry.time // self.window_seconds) * self.window_seconds
        window = self._windows.get(start)
        if window is None:
            window = WindowSummary(start=start)
            self._windows[start] = window
        window.rows += 1
        window.job_ordinals.add(job)
        window.working_set_pages += int(entry.working_set_pages)
        window.cold_pages += int(entry.cold_age_histogram.counts.sum())
        window.promoted_pages += int(entry.promotion_histogram.counts.sum())

    def flush(self) -> int:
        """Seal the buffer into a segment; returns rows sealed.

        A forked copy of the store (the parallel engine's workers) never
        writes: the buffer simply keeps accumulating in memory, exactly
        like the in-memory staging database it replaces.
        """
        n = self._pending_rows
        if n == 0 or not self._is_owner:
            return 0
        with Stopwatch() as watch:
            arrays = self._pending_arrays()
            name = f"seg-{self._next_segment_id:06d}.npz"
            path = self.root / name
            tmp = self.root / f".{name}.tmp"
            with tmp.open("wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
            info = SegmentInfo(
                name=name,
                rows=n,
                time_min=int(arrays["time"].min()),
                time_max=int(arrays["time"].max()),
                bytes=path.stat().st_size,
                downsample=1,
            )
            self.segments.append(info)
            self._next_segment_id += 1
            counts = np.bincount(
                arrays["job"], minlength=len(self._jobs)
            )
            for ordinal, count in enumerate(counts):
                self._job_sealed_rows[ordinal] += int(count)
            for column in self._buffer.values():
                column.clear()
            self._chunks.clear()
            self._chunk_rows = 0
            self._write_manifest()
        self.bytes_written += info.bytes
        self.flush_count += 1
        self.last_flush_seconds = watch.seconds
        self.flush_seconds_total += watch.seconds
        self._m_segments.inc()
        self._m_bytes.inc(info.bytes)
        self._m_flush.observe(watch.seconds)
        self._g_buffer.set(0)
        return n

    def close(self) -> None:
        """Flush any buffered rows (owner process only)."""
        self.flush()

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def _pending_rows(self) -> int:
        """Rows awaiting the next seal (chunks plus the row buffer)."""
        return self._chunk_rows + len(self._buffer["time"])

    def _pending_arrays(self) -> Optional[Dict[str, np.ndarray]]:
        """Everything unsealed as one column dict, in append order
        (chunks always precede the live row buffer); None when empty."""
        parts: List[Dict[str, np.ndarray]] = list(self._chunks)
        if self._buffer["time"]:
            parts.append(self._buffer_arrays())
        if not parts:
            return None
        if len(parts) == 1:
            return dict(parts[0])
        return {
            name: np.concatenate([p[name] for p in parts])
            for name in COLUMNS
        }

    def _buffer_arrays(self) -> Dict[str, np.ndarray]:
        buf = self._buffer
        bins = len(self.bins) if self.bins is not None else 0
        arrays: Dict[str, np.ndarray] = {}
        for name in _INT_COLUMNS:
            arrays[name] = np.asarray(buf[name], dtype=np.int64)
        for name in _FLOAT_COLUMNS:
            arrays[name] = np.asarray(buf[name], dtype=np.float64)
        for name in _MATRIX_COLUMNS:
            if buf[name]:
                arrays[name] = np.stack(buf[name]).astype(np.int64)
            else:
                arrays[name] = np.zeros((0, bins), dtype=np.int64)
        return arrays

    def pending_tail_columns(self, count: int) -> Dict[str, np.ndarray]:
        """The last ``count`` unsealed rows as one column dict, in append
        order.

        Walks the pending chunks from the end, so the cost is
        O(``count`` + chunks touched), not O(everything pending) — this
        is how a forked worker (which never seals, see :meth:`flush`)
        hands the barrier merge exactly the rows appended since the fork
        without re-materializing entry objects.

        Raises:
            TraceStoreError: when fewer than ``count`` rows are pending —
                the caller's bookkeeping disagrees with the store's.
        """
        count = int(count)
        if count <= 0 or count > self._pending_rows:
            raise TraceStoreError(
                f"pending_tail_columns: {count} rows requested, "
                f"{self._pending_rows} pending"
            )
        sources: List[Dict[str, np.ndarray]] = list(self._chunks)
        if self._buffer["time"]:
            sources.append(self._buffer_arrays())
        taken: List[Dict[str, np.ndarray]] = []
        need = count
        for arrays in reversed(sources):
            size = int(arrays["time"].size)
            if size <= need:
                taken.append(arrays)
                need -= size
            else:
                taken.append(
                    {name: arrays[name][size - need:] for name in COLUMNS}
                )
                need = 0
            if need == 0:
                break
        taken.reverse()
        if len(taken) == 1:
            return dict(taken[0])
        return {
            name: np.concatenate([part[name] for part in taken])
            for name in COLUMNS
        }

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def _open_segment(self, info: SegmentInfo):
        path = self.root / info.name
        try:
            return np.load(path)
        except (OSError, ValueError) as exc:
            raise TraceStoreError(
                f"{path}: unreadable segment (manifest lists {info.rows} "
                f"rows): {exc}"
            ) from exc

    def _iter_column_sources(self):
        """Sealed segment arrays in order, then unsealed chunks and the
        live row buffer."""
        for info in self.segments:
            with self._open_segment(info) as seg:
                yield {name: seg[name] for name in COLUMNS}
        yield from self._chunks
        if self._buffer["time"]:
            yield self._buffer_arrays()

    def job_columns(self, job_id: str) -> Dict[str, np.ndarray]:
        """One job's rows, concatenated across segments and the buffer.

        Raises:
            TraceError: if the job is unknown.
        """
        ordinal = self._job_index.get(job_id)
        if ordinal is None:
            raise TraceError(f"no trace recorded for job {job_id}")
        chunks: List[Dict[str, np.ndarray]] = []
        for cols in self._iter_column_sources():
            idx = np.flatnonzero(cols["job"] == ordinal)
            if idx.size:
                chunks.append({name: cols[name][idx] for name in COLUMNS})
        if not chunks:
            bins = len(self.bins) if self.bins is not None else 0
            out: Dict[str, np.ndarray] = {}
            for name in _INT_COLUMNS:
                out[name] = np.zeros(0, dtype=np.int64)
            for name in _FLOAT_COLUMNS:
                out[name] = np.zeros(0, dtype=np.float64)
            for name in _MATRIX_COLUMNS:
                out[name] = np.zeros((0, bins), dtype=np.int64)
            return out
        return {
            name: np.concatenate([c[name] for c in chunks])
            for name in COLUMNS
        }

    def _entry_from_columns(
        self, cols: Dict[str, np.ndarray], i: int
    ) -> TraceEntry:
        assert self.bins is not None
        promo = AgeHistogram(self.bins)
        promo.counts = np.array(cols["promotion_counts"][i], dtype=np.int64)
        promo.young_count = int(cols["promotion_young"][i])
        cold = AgeHistogram(self.bins)
        cold.counts = np.array(cols["cold_counts"][i], dtype=np.int64)
        cold.young_count = int(cols["cold_young"][i])
        return TraceEntry(
            job_id=self._jobs[int(cols["job"][i])],
            machine_id=self._machines[int(cols["machine"][i])],
            time=int(cols["time"][i]),
            working_set_pages=int(cols["working_set_pages"][i]),
            promotion_histogram=promo,
            cold_age_histogram=cold,
            resident_pages=int(cols["resident_pages"][i]),
            cpu_cores=float(cols["cpu_cores"][i]),
        )

    def entries_for(self, job_id: str, start: int = 0) -> List[TraceEntry]:
        """Materialize one job's entries from row ``start`` on.

        When every requested row still sits in the write buffer — the
        common case for the parallel engine's per-barrier delta — no
        segment is opened at all.

        Raises:
            TraceError: if the job is unknown.
        """
        ordinal = self._job_index.get(job_id)
        if ordinal is None:
            raise TraceError(f"no trace recorded for job {job_id}")
        if start >= self._job_sealed_rows[ordinal]:
            # Fast path: only unsealed rows are needed.
            skip = start - self._job_sealed_rows[ordinal]
            cols = self._pending_arrays()
            if cols is None:
                return []
            idx = np.flatnonzero(cols["job"] == ordinal)[skip:]
            return [self._entry_from_columns(cols, int(i)) for i in idx]
        cols = self.job_columns(job_id)
        return [
            self._entry_from_columns(cols, i)
            for i in range(start, cols["time"].size)
        ]

    def downsample_factor(self) -> int:
        """The store-wide downsampling factor.

        Raises:
            TraceStoreError: when segments mix factors (compile needs a
                uniform interval; re-run ``compact`` over the whole
                store to restore uniformity).
        """
        factors = {seg.downsample for seg in self.segments if seg.rows}
        if self._pending_rows:
            factors.add(1)
        if not factors:
            return 1
        if len(factors) > 1:
            raise TraceStoreError(
                f"segments mix downsample factors {sorted(factors)}; "
                f"compact the whole store to a single factor first"
            )
        return factors.pop()

    def compiled_traces(
        self,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[CompiledTrace]:
        """Compile every job's columns into replay tensors directly.

        One pass over the segments; no :class:`TraceEntry` objects are
        materialized.  Results are bit-identical to materializing each
        job and calling :meth:`~repro.model.trace.JobTrace.compile`
        (``CompiledTrace.from_columns`` is proven against
        ``from_trace``), and jobs come back in first-seen order — the
        same order the in-memory database yields.

        Args:
            start: include rows with ``time >= start`` (None = all).
            end: include rows with ``time < end`` (None = all).
        """
        factor = self.downsample_factor()
        interval = self.interval_seconds * factor
        per_job: List[List[Dict[str, np.ndarray]]] = [
            [] for _ in self._jobs
        ]
        for cols in self._iter_column_sources():
            times = cols["time"]
            mask = np.ones(times.shape, dtype=bool)
            if start is not None:
                mask &= times >= start
            if end is not None:
                mask &= times < end
            if not mask.any():
                continue
            jobs_col = cols["job"]
            for ordinal in np.unique(jobs_col[mask]):
                idx = np.flatnonzero(mask & (jobs_col == ordinal))
                per_job[int(ordinal)].append(
                    {name: cols[name][idx] for name in COLUMNS}
                )
        compiled = []
        for ordinal, chunks in enumerate(per_job):
            if not chunks:
                continue
            merged = {
                name: np.concatenate([c[name] for c in chunks])
                for name in COLUMNS
            }
            compiled.append(
                CompiledTrace.from_columns(
                    job_id=self._jobs[ordinal],
                    bins=self.bins,
                    cold_counts=merged["cold_counts"],
                    promotion_counts=merged["promotion_counts"],
                    working_set_pages=merged["working_set_pages"],
                    times=merged["time"],
                    resident_pages=merged["resident_pages"],
                    cpu_cores=merged["cpu_cores"],
                    interval_seconds=interval,
                )
            )
        return compiled

    def window_summaries(self) -> List[WindowSummary]:
        """The incremental per-window aggregates, oldest first."""
        return [self._windows[start] for start in sorted(self._windows)]

    @property
    def time_range(self) -> Optional[tuple]:
        """(earliest, latest) entry time stored, or None when empty."""
        lows = [seg.time_min for seg in self.segments if seg.rows]
        highs = [seg.time_max for seg in self.segments if seg.rows]
        if self._buffer["time"]:
            lows.append(min(self._buffer["time"]))
            highs.append(max(self._buffer["time"]))
        for chunk in self._chunks:
            lows.append(int(chunk["time"].min()))
            highs.append(int(chunk["time"].max()))
        if not lows:
            return None
        return (min(lows), max(highs))

    # ------------------------------------------------------------------
    # Downsampling
    # ------------------------------------------------------------------

    def compact(self, factor: int, before: Optional[int] = None) -> int:
        """Downsample raw segments in place; returns rows merged away.

        Each output row merges ``factor`` consecutive raw rows of one
        job: promotion counts accumulate (they are per-period deltas),
        the cold-age histogram keeps the last snapshot (it is a
        point-in-time state), the working set takes the group maximum
        (conservative), and the row keeps the group's first timestamp.
        Window aggregates are untouched — they were folded in at append
        time, which is exactly why aggregation is incremental.

        Args:
            factor: raw rows per output row (>= 2 to change anything).
            before: only downsample segments whose newest row is older
                than this time (None = all sealed segments).

        Raises:
            TraceStoreError: when called from a forked (non-owner) copy.
        """
        check_positive(factor, "factor")
        if not self._is_owner:
            raise TraceStoreError(
                "compact() from a forked copy would corrupt the owner's "
                "files"
            )
        self.flush()
        if factor == 1:
            return 0
        removed = 0
        for index, info in enumerate(self.segments):
            if info.downsample != 1 or info.rows == 0:
                continue
            if before is not None and info.time_max >= before:
                continue
            with self._open_segment(info) as seg:
                cols = {name: seg[name] for name in COLUMNS}
            new_cols = _downsample_columns(cols, factor)
            name = f"seg-{self._next_segment_id:06d}.npz"
            self._next_segment_id += 1
            path = self.root / name
            tmp = self.root / f".{name}.tmp"
            with tmp.open("wb") as fh:
                np.savez(fh, **new_cols)
            os.replace(tmp, path)
            (self.root / info.name).unlink()
            self.segments[index] = SegmentInfo(
                name=name,
                rows=int(new_cols["time"].size),
                time_min=int(new_cols["time"].min()),
                time_max=int(new_cols["time"].max()),
                bytes=path.stat().st_size,
                downsample=factor,
            )
            removed += info.rows - self.segments[index].rows
        if removed:
            # Sealed per-job row counts changed; rebuild from disk.
            sealed = np.zeros(len(self._jobs), dtype=np.int64)
            for info in self.segments:
                with self._open_segment(info) as seg:
                    sealed += np.bincount(
                        seg["job"], minlength=len(self._jobs)
                    )
            self._job_sealed_rows = [int(n) for n in sealed]
            self.rows_total -= removed
            self.rows_downsampled += removed
            self._m_downsampled.inc(removed)
        self._write_manifest()
        return removed


def _downsample_columns(
    cols: Dict[str, np.ndarray], factor: int
) -> Dict[str, np.ndarray]:
    """Merge groups of ``factor`` consecutive rows per job (see
    :meth:`TraceStore.compact` for the per-column policy)."""
    jobs_col = cols["job"]
    out: Dict[str, List] = {name: [] for name in COLUMNS}
    # First-appearance job order; the final sort canonicalizes anyway.
    seen = dict.fromkeys(jobs_col.tolist())
    for ordinal in seen:
        idx = np.flatnonzero(jobs_col == ordinal)
        for g in range(0, idx.size, factor):
            grp = idx[g:g + factor]
            first, last = int(grp[0]), int(grp[-1])
            out["time"].append(int(cols["time"][first]))
            out["job"].append(int(ordinal))
            out["machine"].append(int(cols["machine"][last]))
            out["working_set_pages"].append(
                int(cols["working_set_pages"][grp].max())
            )
            out["resident_pages"].append(int(cols["resident_pages"][last]))
            out["cpu_cores"].append(float(cols["cpu_cores"][grp].mean()))
            out["promotion_counts"].append(
                cols["promotion_counts"][grp].sum(axis=0)
            )
            out["promotion_young"].append(
                int(cols["promotion_young"][grp].sum())
            )
            out["cold_counts"].append(np.array(cols["cold_counts"][last]))
            out["cold_young"].append(int(cols["cold_young"][last]))
    arrays: Dict[str, np.ndarray] = {}
    for name in _INT_COLUMNS:
        arrays[name] = np.asarray(out[name], dtype=np.int64)
    for name in _FLOAT_COLUMNS:
        arrays[name] = np.asarray(out[name], dtype=np.float64)
    for name in _MATRIX_COLUMNS:
        arrays[name] = (
            np.stack(out[name]).astype(np.int64)
            if out[name]
            else np.zeros((0, cols[name].shape[1]), dtype=np.int64)
        )
    order = np.lexsort((arrays["job"], arrays["time"]))
    return {name: arrays[name][order] for name in COLUMNS}
