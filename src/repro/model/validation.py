"""Fast-model validation: do offline predictions track live outcomes?

The autotuner trusts the fast far memory model to *rank* parameter
configurations — the deployed winner is only as good as that ranking.
This module measures the agreement between model predictions and live
fleet measurements for a set of configurations:

* the model's objective (cold pages captured) vs the live fleet's
  measured coverage, and
* the model's constraint estimate (p98 promotion rate) vs the live SLI,

summarized as Spearman rank correlations (ranking quality is the property
the pipeline depends on; absolute calibration is not required).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.common.errors import AutotunerError
from repro.core.threshold_policy import ThresholdPolicyConfig
from repro.model.replay import FarMemoryModel

__all__ = ["ConfigOutcome", "ValidationReport", "ModelValidator"]


@dataclass(frozen=True)
class ConfigOutcome:
    """Model prediction and live measurement for one configuration.

    Attributes:
        config: the parameters evaluated.
        model_cold_pages: the model's objective value.
        model_p98: the model's constraint estimate (%/min).
        live_coverage: measured fleet coverage under the config.
        live_p98: measured fleet p98 normalized promotion rate (%/min).
    """

    config: ThresholdPolicyConfig
    model_cold_pages: float
    model_p98: float
    live_coverage: float
    live_p98: float


@dataclass(frozen=True)
class ValidationReport:
    """Rank-agreement summary over a configuration set.

    Attributes:
        outcomes: the per-config records.
        objective_rank_correlation: Spearman rho between model cold pages
            and live coverage.
        constraint_rank_correlation: Spearman rho between model p98 and
            live p98.
    """

    outcomes: List[ConfigOutcome]
    objective_rank_correlation: float
    constraint_rank_correlation: float

    @property
    def model_ranks_usefully(self) -> bool:
        """True when both correlations are positive — the bar the
        autotuner needs to make progress."""
        return (
            self.objective_rank_correlation > 0
            and self.constraint_rank_correlation > 0
        )


class ModelValidator:
    """Collects model predictions and live measurements per config.

    Args:
        model: the fast far memory model (built from reference traces).
    """

    def __init__(self, model: FarMemoryModel):
        self.model = model
        self._outcomes: List[ConfigOutcome] = []

    def record(
        self,
        config: ThresholdPolicyConfig,
        live_coverage: float,
        live_p98: float,
    ) -> ConfigOutcome:
        """Evaluate ``config`` on the model and pair it with live numbers."""
        report = self.model.evaluate(config)
        outcome = ConfigOutcome(
            config=config,
            model_cold_pages=report.total_cold_pages,
            model_p98=report.promotion_rate_p98,
            live_coverage=float(live_coverage),
            live_p98=float(live_p98),
        )
        self._outcomes.append(outcome)
        return outcome

    def record_many(
        self,
        configs: Sequence[ThresholdPolicyConfig],
        live_coverages: Sequence[float],
        live_p98s: Sequence[float],
    ) -> List[ConfigOutcome]:
        """Batched :meth:`record`: one ``evaluate_many`` model call.

        All three sequences pair up positionally and must have equal
        length; outcomes are recorded in order.
        """
        configs = list(configs)
        if not (len(configs) == len(live_coverages) == len(live_p98s)):
            raise AutotunerError(
                f"configs ({len(configs)}), live_coverages "
                f"({len(live_coverages)}) and live_p98s ({len(live_p98s)}) "
                "must pair up one-to-one"
            )
        outcomes = []
        reports = self.model.evaluate_many(configs)
        for config, report, coverage, p98 in zip(
            configs, reports, live_coverages, live_p98s
        ):
            outcome = ConfigOutcome(
                config=config,
                model_cold_pages=report.total_cold_pages,
                model_p98=report.promotion_rate_p98,
                live_coverage=float(coverage),
                live_p98=float(p98),
            )
            self._outcomes.append(outcome)
            outcomes.append(outcome)
        return outcomes

    def report(self) -> ValidationReport:
        """Compute the rank-agreement report.

        Raises:
            AutotunerError: with fewer than three configurations (rank
                correlation is meaningless below that).
        """
        require_count = 3
        if len(self._outcomes) < require_count:
            raise AutotunerError(
                f"need >= {require_count} configurations to validate, "
                f"have {len(self._outcomes)}"
            )
        model_obj = [o.model_cold_pages for o in self._outcomes]
        live_obj = [o.live_coverage for o in self._outcomes]
        model_con = [o.model_p98 for o in self._outcomes]
        live_con = [o.live_p98 for o in self._outcomes]
        objective_rho = _spearman(model_obj, live_obj)
        constraint_rho = _spearman(model_con, live_con)
        return ValidationReport(
            outcomes=list(self._outcomes),
            objective_rank_correlation=objective_rho,
            constraint_rank_correlation=constraint_rho,
        )


def _spearman(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rho, mapping degenerate (constant) inputs to 0."""
    if np.std(a) == 0 or np.std(b) == 0:
        return 0.0
    rho, _ = scipy_stats.spearmanr(a, b)
    return float(rho) if np.isfinite(rho) else 0.0
