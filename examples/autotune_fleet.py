#!/usr/bin/env python3
"""End-to-end autotuning: traces -> fast model -> GP-Bandit -> rollout.

Reproduces the paper's §5.3 pipeline in miniature:

1. run the fleet under hand-tuned parameters, exporting telemetry;
2. build the fast far memory model from the recorded traces;
3. explore (K, S) with GP-Bandit, maximizing cold memory captured subject
   to the p98 promotion-rate constraint;
4. deploy the winner through a staged rollout with SLO monitoring;
5. compare coverage before and after (the paper saw 15% -> 20%).

Run:
    python examples/autotune_fleet.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.autotuner import (
    AutotuningPipeline,
    DeploymentStage,
    StagedDeployment,
)
from repro.cluster import quickfleet
from repro.common.units import HOUR
from repro.core import ThresholdPolicyConfig
from repro.model import FarMemoryModel

# Manual tuning in production is risk-averse: a long warm-up and a very
# high percentile.  The autotuner's job is to find the real frontier.
HAND_TUNED = ThresholdPolicyConfig(percentile_k=99.0, warmup_seconds=7200)


def main() -> None:
    print("Phase 1: fleet under hand-tuned parameters (K=99, S=7200)...")
    fleet = quickfleet(
        clusters=3,
        machines_per_cluster=2,
        jobs_per_machine=6,
        seed=21,
        policy_config=HAND_TUNED,
        churn_duration_range=(2 * HOUR, 12 * HOUR),
    )
    fleet.run(6 * HOUR)
    before = fleet.coverage_report()
    print(f"  coverage: {before['coverage']:.1%}, "
          f"traces recorded: {len(fleet.trace_db)}")

    print("\nPhase 2: GP-Bandit over the fast far memory model...")
    model = FarMemoryModel(fleet.trace_db.traces())
    pipeline = AutotuningPipeline(model, batch_size=4, seed=0)
    result = pipeline.run(iterations=6)

    rows = [
        (
            f"{t.config.percentile_k:.1f}",
            t.config.warmup_seconds,
            f"{t.objective:,.0f}",
            f"{t.report.promotion_rate_p98:.3f}",
            "yes" if t.feasible else "NO",
        )
        for t in result.trials
    ]
    print(
        render_table(
            ["K", "S (s)", "cold pages captured", "p98 %/min", "feasible"],
            rows,
            title=f"Trials ({len(result.trials)} configurations)",
        )
    )
    best = result.best_config
    print(f"\n  winner: K={best.percentile_k:.1f}, S={best.warmup_seconds}s")

    print("\nPhase 3: staged rollout (qualification -> production)...")
    deployment = StagedDeployment(
        fleet,
        stages=[
            DeploymentStage("qualification", 0.34, HOUR),
            DeploymentStage("production", 1.0, HOUR),
        ],
        slo_limit=5.0,  # monitoring guardrail on per-minute sample p98
    )
    reached_production = deployment.deploy(best, HAND_TUNED)
    for outcome in deployment.outcomes:
        print(f"  stage {outcome.stage.name}: p98 "
              f"{outcome.p98_promotion_rate:.3f} %/min -> "
              f"{'pass' if outcome.passed else 'ROLLED BACK'}")

    print("\nPhase 4: soak under the deployed configuration...")
    fleet.run(4 * HOUR)
    after = fleet.coverage_report()
    improvement = (
        (after["coverage"] - before["coverage"]) / before["coverage"]
        if before["coverage"]
        else 0.0
    )
    print(
        render_table(
            ["", "coverage", "p98 %/min (samples)"],
            [
                ("hand-tuned", f"{before['coverage']:.1%}",
                 f"{before['promotion_rate_p98_pct_per_min']:.3f}"),
                ("autotuned", f"{after['coverage']:.1%}",
                 f"{after['promotion_rate_p98_pct_per_min']:.3f}"),
            ],
            title="Before vs after (paper: 15% -> 20%, a +30% gain)",
        )
    )
    print(f"\n  coverage improvement: {improvement:+.0%} "
          f"(production rollout {'completed' if reached_production else 'rolled back'})")


if __name__ == "__main__":
    main()
