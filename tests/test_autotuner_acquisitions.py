"""UCB vs Expected-Improvement acquisitions in the bandit."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.autotuner.gp_bandit import GpBandit
from repro.autotuner.search_space import ContinuousParameter, SearchSpace


def make_space():
    return SearchSpace(
        [ContinuousParameter("x0", 0.0, 1.0), ContinuousParameter("x1", 0.0, 1.0)]
    )


def objective(point):
    return -np.sum((point - np.array([0.6, 0.4])) ** 2)


class TestAcquisitionSelection:
    def test_unknown_acquisition_rejected(self):
        with pytest.raises(ConfigurationError):
            GpBandit(make_space(), constraint_limit=1.0, acquisition="pi")

    @pytest.mark.parametrize("acquisition", ["ucb", "ei"])
    def test_both_acquisitions_optimize(self, acquisition):
        bandit = GpBandit(
            make_space(), constraint_limit=10.0, seed=2,
            acquisition=acquisition,
        )
        for _ in range(22):
            point = bandit.suggest(1)[0]
            bandit.observe(point, objective(point), constraint=0.0)
        best = bandit.best()
        assert best is not None
        assert best.objective > -0.08

    def test_ei_exploits_after_good_observation(self):
        """EI should concentrate suggestions near a dominant optimum."""
        bandit = GpBandit(make_space(), constraint_limit=10.0, seed=3,
                          acquisition="ei")
        rng = np.random.default_rng(0)
        for _ in range(20):
            point = rng.random(2)
            bandit.observe(point, objective(point), 0.0)
        suggestion = bandit.suggest(1)[0]
        assert np.linalg.norm(suggestion - np.array([0.6, 0.4])) < 0.45

    def test_acquisitions_respect_constraint(self):
        for acquisition in ("ucb", "ei"):
            bandit = GpBandit(make_space(), constraint_limit=0.5, seed=4,
                              acquisition=acquisition)
            rng = np.random.default_rng(1)
            for _ in range(25):
                point = rng.random(2)
                # objective rises with x0, infeasible past x0 = 0.5
                bandit.observe(point, float(point[0]), float(point[0]))
            suggestions = bandit.suggest(4)
            on_feasible_side = sum(1 for p in suggestions if p[0] <= 0.65)
            assert on_feasible_side >= 3
