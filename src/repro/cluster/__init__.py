"""Cluster substrate: scheduler, clusters, the WSC fleet, trace database."""

from repro.cluster.cluster import Cluster
from repro.cluster.job import RunningJob
from repro.cluster.scheduler import BorgScheduler, EvictionSloTracker, Placement
from repro.cluster.trace_db import TraceDatabase
from repro.cluster.wsc import WSC, quickfleet

__all__ = [
    "BorgScheduler",
    "Cluster",
    "EvictionSloTracker",
    "Placement",
    "RunningJob",
    "TraceDatabase",
    "WSC",
    "quickfleet",
]
