"""Huge pages under the full control plane."""

import numpy as np
import pytest

from repro.agent import NodeAgent
from repro.common.rng import SeedSequenceFactory
from repro.core import ThresholdPolicyConfig
from repro.kernel import ContentProfile, Machine, MachineConfig


COMPRESSIBLE = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)


def drive(machine, agent, seconds, touch=None):
    start = machine.now
    for t in range(start, start + seconds, 60):
        if touch is not None:
            touch(t)
        machine.tick(t)
        agent.maybe_control(t)


class TestHugePagesEndToEnd:
    def test_idle_huge_mappings_get_compressed(self):
        """A fully idle huge mapping turns cold and is swapped out (the
        split happens automatically on swap-out)."""
        machine = Machine(
            "m", MachineConfig(dram_bytes=1 << 30),
            seeds=SeedSequenceFactory(3),
        )
        agent = NodeAgent(
            machine, ThresholdPolicyConfig(percentile_k=95, warmup_seconds=60)
        )
        memcg = machine.add_job("j", 2048, COMPRESSIBLE)
        machine.allocate("j", 2048)
        memcg.map_huge(0, pages_per_huge=512)
        drive(machine, agent, 1800)
        assert memcg.far_pages > 0
        # The idle mapping was split on swap-out.
        assert (memcg.huge_group[:512] == -1).all()

    def test_hot_huge_mapping_stays_near(self):
        machine = Machine(
            "m", MachineConfig(dram_bytes=1 << 30),
            seeds=SeedSequenceFactory(4),
        )
        agent = NodeAgent(
            machine, ThresholdPolicyConfig(percentile_k=95, warmup_seconds=60)
        )
        memcg = machine.add_job("j", 2048, COMPRESSIBLE)
        idx = machine.allocate("j", 2048)
        memcg.map_huge(0, pages_per_huge=512)

        def touch(t):
            machine.touch("j", idx[:1])  # one hot page pins the mapping

        drive(machine, agent, 1800, touch)
        # The whole 512-page mapping stayed uncompressed and mapped.
        assert (memcg.huge_group[:512] == 0).all()
        assert (memcg.state[:512] == 0).all()
        # Base pages elsewhere were compressed normally.
        assert memcg.far_pages > 0
