"""The warehouse-scale computer: a fleet of clusters (paper §2.2, §6).

:class:`WSC` aggregates clusters behind fleet-level metrics — coverage,
cold-memory distributions, SLI percentiles — and fans control-plane
deployments (new autotuner configurations) out to every cluster.
:func:`quickfleet` builds a small calibrated fleet in one call for
examples and tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.agent.node_agent import SliSample
from repro.common.rng import SeedSequenceFactory
from repro.common.units import GIB, HOUR, MIB, MIN_COLD_AGE_THRESHOLD, PAGE_SIZE
from repro.common.validation import check_positive
from repro.core.coverage import CoverageSample, fleet_coverage
from repro.cluster.cluster import Cluster
from repro.cluster.trace_db import TraceDatabase
from repro.kernel.machine import FarMemoryMode, MachineConfig
from repro.obs import (
    MetricName,
    MetricRegistry,
    Tracer,
    get_registry,
    get_tracer,
)
from repro.workloads.job_generator import FleetMixGenerator

__all__ = ["WSC", "quickfleet"]


class WSC:
    """A fleet of clusters sharing one trace database and one policy.

    Args:
        clusters: member clusters (each already wired to ``trace_db``).
        trace_db: the fleet telemetry store.
        registry: metrics registry the fleet-level gauges are published
            to (defaults to the process-global one).
        tracer: span tracer (defaults to the process-global one).
    """

    def __init__(
        self,
        clusters: Sequence[Cluster],
        trace_db: TraceDatabase,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        if not clusters:
            raise ValueError("a WSC needs at least one cluster")
        self._clusters = list(clusters)
        self._machines_cache: Optional[List] = None
        self.trace_db = trace_db
        self.sli_history: List[SliSample] = []
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()

    @property
    def clusters(self) -> List[Cluster]:
        """Member clusters.  Assigning a new list invalidates the machine
        cache; mutating the list in place requires calling
        :meth:`invalidate_caches` by hand."""
        return self._clusters

    @clusters.setter
    def clusters(self, clusters: Sequence[Cluster]) -> None:
        if not clusters:
            raise ValueError("a WSC needs at least one cluster")
        self._clusters = list(clusters)
        self.invalidate_caches()

    def invalidate_caches(self) -> None:
        """Drop cached aggregates derived from the cluster list."""
        self._machines_cache = None

    @property
    def machines(self) -> List:
        """Every machine in the fleet (cached; see :attr:`clusters`)."""
        if self._machines_cache is None:
            self._machines_cache = [
                m for c in self._clusters for m in c.machines
            ]
        return self._machines_cache

    @property
    def now(self) -> int:
        """Fleet time (clusters share a logical clock)."""
        return self._clusters[0].clock.now

    def run(self, seconds: int, collect_sli: bool = True,
            engine=None) -> None:
        """Advance every cluster by ``seconds``, in lockstep ticks.

        Args:
            seconds: simulated seconds to advance.
            collect_sli: drain per-cluster SLI samples into
                :attr:`sli_history` each tick.
            engine: optional :class:`repro.engine.FleetEngine` bound to
                this fleet; when given, execution is delegated to it
                (parallel across worker processes where possible) with
                results guaranteed identical to the serial path.
        """
        check_positive(seconds, "seconds")
        if engine is not None:
            engine.run(seconds, collect_sli=collect_sli)
            return
        end = self.now + seconds
        while self.now < end:
            for cluster in self._clusters:
                cluster.tick()
            if collect_sli:
                for cluster in self._clusters:
                    self.sli_history.extend(cluster.drain_sli_samples())

    def deploy_policy(self, policy: object) -> None:
        """Fleet-wide rollout of a cold-memory policy.

        Accepts a :class:`~repro.core.threshold_policy.ColdMemoryPolicy`
        or a bare :class:`ThresholdPolicyConfig` (the paper policy).
        """
        for cluster in self.clusters:
            cluster.deploy_policy(policy)

    # ------------------------------------------------------------------
    # Fleet metrics
    # ------------------------------------------------------------------

    def coverage(self) -> float:
        """Instantaneous fleet cold-memory coverage."""
        samples = [
            CoverageSample(
                far_memory_pages=m.far_pages,
                cold_pages_at_min_threshold=m.cold_pages(MIN_COLD_AGE_THRESHOLD),
            )
            for m in self.machines
        ]
        return fleet_coverage(samples)

    def cold_fraction(self, threshold_seconds: float) -> float:
        """Fleet share of used memory idle at least ``threshold_seconds``."""
        cold = 0
        resident = 0
        for machine in self.machines:
            cold += machine.cold_pages(threshold_seconds)
            resident += sum(m.resident_pages for m in machine.memcgs.values())
        return cold / resident if resident else 0.0

    def promotion_rate_percentile(self, percentile: float) -> float:
        """Fleet percentile of the normalized promotion-rate SLI (Fig. 7)."""
        rates = [
            s.normalized_rate_pct_per_min
            for s in self.sli_history
            if np.isfinite(s.normalized_rate_pct_per_min)
            and s.working_set_pages > 0
        ]
        if not rates:
            return 0.0
        return float(np.percentile(rates, percentile))

    def coverage_report(self) -> Dict[str, float]:
        """Headline fleet numbers in one dict."""
        return {
            "coverage": self.coverage(),
            "cold_fraction_at_min_threshold": self.cold_fraction(
                MIN_COLD_AGE_THRESHOLD
            ),
            "promotion_rate_p98_pct_per_min": self.promotion_rate_percentile(98.0),
            "far_memory_gib": sum(m.far_pages for m in self.machines)
            * PAGE_SIZE
            / GIB,
            "saved_gib": sum(m.saved_bytes() for m in self.machines) / GIB,
        }

    def fleet_health_report(self) -> Dict[str, float]:
        """The fleet health SLIs the paper monitors, in one dict.

        Extends :meth:`coverage_report` with the zswap quality numbers
        (mean compression ratio, incompressible fraction — §3.2/§6.3) and
        the promotion-rate SLI percentiles (Fig. 7).  Each derived number
        is also published to the registry as a ``repro_fleet_*`` gauge so
        it appears in the Prometheus exposition next to the raw counters.
        """
        compressed = rejected = payload = 0
        for machine in self.machines:
            for stats in machine.zswap.job_stats.values():
                compressed += stats.pages_compressed
                rejected += stats.pages_rejected
                payload += stats.payload_bytes_stored
        attempts = compressed + rejected
        incompressible = rejected / attempts if attempts else 0.0
        ratio = compressed * PAGE_SIZE / payload if payload else 0.0

        report = dict(self.coverage_report())
        report.update(
            {
                "promotion_rate_p50_pct_per_min": self.promotion_rate_percentile(50.0),
                "promotion_rate_p90_pct_per_min": self.promotion_rate_percentile(90.0),
                "incompressible_fraction": incompressible,
                "compression_ratio": ratio,
            }
        )

        gauges = {
            MetricName.FLEET_COVERAGE:
                ("Fleet cold-memory coverage (far / cold).", "coverage"),
            MetricName.FLEET_COLD_FRACTION:
                ("Fleet share of used memory cold at the minimum threshold.",
                 "cold_fraction_at_min_threshold"),
            MetricName.FLEET_COMPRESSION_RATIO:
                ("Fleet mean zswap compression ratio.", "compression_ratio"),
            MetricName.FLEET_INCOMPRESSIBLE_FRACTION:
                ("Fraction of compression attempts rejected as "
                 "incompressible.", "incompressible_fraction"),
            MetricName.FLEET_PROMOTION_RATE_P50_PCT_PER_MIN:
                ("Fleet p50 of the promotion-rate SLI.",
                 "promotion_rate_p50_pct_per_min"),
            MetricName.FLEET_PROMOTION_RATE_P90_PCT_PER_MIN:
                ("Fleet p90 of the promotion-rate SLI.",
                 "promotion_rate_p90_pct_per_min"),
            MetricName.FLEET_PROMOTION_RATE_P98_PCT_PER_MIN:
                ("Fleet p98 of the promotion-rate SLI.",
                 "promotion_rate_p98_pct_per_min"),
            MetricName.FLEET_FAR_MEMORY_GIB:
                ("GiB currently stored compressed fleet-wide.",
                 "far_memory_gib"),
            MetricName.FLEET_SAVED_GIB:
                ("GiB of DRAM saved by compression fleet-wide.",
                 "saved_gib"),
        }
        for name, (help_text, key) in gauges.items():
            self.registry.gauge(name, help_text).set(report[key])
        return report


def quickfleet(
    clusters: int = 1,
    machines_per_cluster: int = 4,
    jobs_per_machine: int = 8,
    seed: int = 0,
    machine_dram_gib: float = 4.0,
    job_pages_range: Optional[tuple] = None,
    mode: FarMemoryMode = FarMemoryMode.PROACTIVE,
    kernel: str = "scalar",
    pool_scope: str = "machine",
    scan_period: Optional[int] = None,
    control_period: Optional[int] = None,
    policy_config: Optional[object] = None,
    mean_cold_fraction: float = 0.32,
    warmup_hours: float = 0.0,
    placement: str = "spread",
    churn_duration_range: Optional[tuple] = None,
    registry: Optional[MetricRegistry] = None,
    tracer: Optional[Tracer] = None,
    trace_db=None,
) -> WSC:
    """Build a small, ready-to-run fleet with a calibrated job mix.

    Args:
        clusters: number of clusters.
        machines_per_cluster: machines per cluster.
        jobs_per_machine: jobs submitted per machine.
        seed: root RNG seed (everything is derived from it).
        machine_dram_gib: DRAM per machine.
        job_pages_range: (min_pages, max_pages) clip for job sizes;
            defaults to 4-32 MiB jobs so examples run in seconds.
        mode: far-memory mode for every machine.
        kernel: page-state backend for every machine — ``"scalar"`` or
            ``"columnar"`` (machine-pooled arrays, bit-equivalent; see
            :mod:`repro.kernel.columnar`).
        pool_scope: columnar pool placement — ``"machine"`` (private pool
            per machine) or ``"cluster"`` (one shared pool per cluster;
            scans and reclaim batch across all of a cluster's machines).
            Ignored for the scalar kernel.
        scan_period: kstaled period override in seconds (defaults to the
            kernel default, 120 s).
        control_period: node-agent control round period override in
            seconds (defaults to the paper's one-minute cadence).
        policy_config: initial policy — a ``ColdMemoryPolicy`` or a bare
            ``ThresholdPolicyConfig``; defaults to the paper defaults.
        mean_cold_fraction: target fleet-mean cold share.
        warmup_hours: optionally run the fleet forward before returning,
            so ages and histograms are populated.
        placement: scheduler strategy; defaults to "spread" so every
            machine hosts jobs (best_fit strands machines when jobs are
            small relative to DRAM).
        churn_duration_range: optional (low, high) job-lifetime seconds.
            When set, jobs have finite lives and the cluster keeps its
            population constant by admitting fresh jobs — the fleet churn
            that makes the warm-up parameter S meaningful.
        registry: metrics registry threaded through every layer
            (defaults to the process-global one).
        tracer: span tracer, likewise threaded (defaults to the global
            one).
        trace_db: the telemetry sink shared by every cluster — any
            object with the :class:`~repro.cluster.trace_db.TraceDatabase`
            surface, e.g. a
            :class:`~repro.tracestore.ColumnarTraceDatabase` to persist
            traces to disk as they stream (defaults to a fresh in-memory
            database).

    Returns:
        A :class:`WSC` with all jobs placed (and optionally warmed up).
    """
    seeds = SeedSequenceFactory(seed)
    if trace_db is None:
        trace_db = TraceDatabase()
    if job_pages_range is None:
        job_pages_range = ((4 * MIB) // PAGE_SIZE, (32 * MIB) // PAGE_SIZE)

    generator = FleetMixGenerator(
        seeds=seeds.fork("fleetmix"),
        mean_cold_fraction=mean_cold_fraction,
        min_pages=job_pages_range[0],
        max_pages=job_pages_range[1],
        duration_range=churn_duration_range,
    )
    config_kwargs = dict(
        dram_bytes=int(machine_dram_gib * GIB), mode=mode, kernel=kernel
    )
    if scan_period is not None:
        config_kwargs["scan_period"] = int(scan_period)
    machine_config = MachineConfig(**config_kwargs)
    built = []
    for c in range(clusters):
        cluster = Cluster(
            name=f"cluster-{c:02d}",
            n_machines=machines_per_cluster,
            machine_config=machine_config,
            seeds=seeds.fork("cluster", index=c),
            trace_db=trace_db,
            policy_config=policy_config,
            overcommit=0.0,
            placement=placement,
            pool_scope=pool_scope,
            control_period=control_period,
            registry=registry,
            tracer=tracer,
        )
        specs = generator.generate(machines_per_cluster * jobs_per_machine)
        cluster.submit_all(specs)
        if churn_duration_range is not None:
            # Each cluster gets its own churn generator so replacement-job
            # draws depend only on that cluster's history, never on how
            # clusters interleave — the property that lets the parallel
            # engine shard clusters across workers (repro.engine).
            churn_generator = FleetMixGenerator(
                seeds=seeds.fork("churn", index=c),
                mean_cold_fraction=mean_cold_fraction,
                min_pages=job_pages_range[0],
                max_pages=job_pages_range[1],
                duration_range=churn_duration_range,
                name_prefix=f"churn-c{c:02d}",
            )
            cluster.enable_churn(churn_generator.next_job, len(specs))
        built.append(cluster)
    fleet = WSC(built, trace_db, registry=registry, tracer=tracer)
    if warmup_hours > 0:
        fleet.run(int(warmup_hours * HOUR))
    return fleet
