"""Span-based tracing for the simulator's hot paths.

A :class:`Tracer` hands out :meth:`~Tracer.span` context managers that
time a block of work on the wall clock (``time.perf_counter``) and stamp
it with the simulation time of the enclosing tick.  Spans nest: the
tracer keeps a stack so each span knows how much of its wall time was
spent in child spans, which is what lets the profiler compute *self*
time per subsystem (the flame table in :mod:`repro.obs.profiling`).

Aggregated per-name statistics are unbounded (one record per distinct
span name); raw span records are kept in a bounded ring so multi-hour
fleet runs cannot grow without bound.  A disabled tracer returns a
shared no-op span, keeping instrumented call sites cheap enough to
leave on (the Fig. 8 analogue: observability itself must cost ~nothing).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Deque, Dict, List, Optional

__all__ = [
    "SpanRecord",
    "SpanStats",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes:
        name: dotted span name, e.g. ``"kstaled.scan"``.
        wall_seconds: wall-clock duration.
        sim_time: simulation time stamped at entry (None if not given).
        depth: nesting depth at entry (0 = top level).
        attrs: arbitrary key/value annotations.
    """

    name: str
    wall_seconds: float
    sim_time: Optional[int] = None
    depth: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)


@dataclass
class SpanStats:
    """Aggregate statistics for one span name.

    Attributes:
        name: the span name.
        calls: completed spans.
        wall_seconds: total wall time, children included.
        child_seconds: wall time spent inside nested spans.
        max_seconds: longest single span.
    """

    name: str
    calls: int = 0
    wall_seconds: float = 0.0
    child_seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def self_seconds(self) -> float:
        """Wall time attributable to this span alone."""
        return self.wall_seconds - self.child_seconds

    @property
    def mean_seconds(self) -> float:
        """Mean wall time per call."""
        return self.wall_seconds / self.calls if self.calls else 0.0


class _NullSpan:
    """Shared no-op span for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_tracer", "name", "sim_time", "attrs", "_start",
                 "child_seconds")

    def __init__(self, tracer: "Tracer", name: str,
                 sim_time: Optional[int], attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.sim_time = sim_time
        self.attrs = attrs
        self.child_seconds = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        duration = perf_counter() - self._start
        tracer = self._tracer
        stack = tracer._stack
        # Tolerate mispaired exits (a span left open by an exception in an
        # outer frame): unwind to and including this span.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].child_seconds += duration
        tracer._finish(self, duration, len(stack))
        return False


class Tracer:
    """Produces spans and aggregates their durations.

    Args:
        enabled: when False, :meth:`span` returns a shared no-op.
        max_records: raw :class:`SpanRecord` ring size (0 keeps only the
            aggregate statistics).
    """

    def __init__(self, enabled: bool = True, max_records: int = 4096):
        self.enabled = bool(enabled)
        self._stack: List[_Span] = []
        self._stats: Dict[str, SpanStats] = {}
        self._records: Optional[Deque[SpanRecord]] = (
            deque(maxlen=int(max_records)) if max_records > 0 else None
        )

    def span(self, name: str, sim_time: Optional[int] = None,
             **attrs: object):
        """A context manager timing the enclosed block.

        Args:
            name: dotted span name; the prefix before the first ``"."``
                is the subsystem the profiler groups by.
            sim_time: simulation time at entry, stamped on the record.
            **attrs: free-form annotations kept on the raw record.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, sim_time, attrs)

    def record(self, name: str, wall_seconds: float,
               sim_time: Optional[int] = None) -> None:
        """Record an externally timed duration (no nesting attribution)."""
        if not self.enabled:
            return
        stats = self._stats.get(name)
        if stats is None:
            stats = SpanStats(name)
            self._stats[name] = stats
        stats.calls += 1
        stats.wall_seconds += wall_seconds
        stats.max_seconds = max(stats.max_seconds, wall_seconds)
        if self._records is not None:
            self._records.append(
                SpanRecord(name=name, wall_seconds=wall_seconds,
                           sim_time=sim_time)
            )

    def _finish(self, span: _Span, duration: float, depth: int) -> None:
        stats = self._stats.get(span.name)
        if stats is None:
            stats = SpanStats(span.name)
            self._stats[span.name] = stats
        stats.calls += 1
        stats.wall_seconds += duration
        stats.child_seconds += span.child_seconds
        stats.max_seconds = max(stats.max_seconds, duration)
        if self._records is not None:
            self._records.append(
                SpanRecord(
                    name=span.name,
                    wall_seconds=duration,
                    sim_time=span.sim_time,
                    depth=depth,
                    attrs=span.attrs,
                )
            )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, SpanStats]:
        """Aggregate statistics keyed by span name (live references)."""
        return dict(self._stats)

    def records(self) -> List[SpanRecord]:
        """The retained raw span records, oldest first."""
        return list(self._records) if self._records is not None else []

    def total_seconds(self) -> float:
        """Wall time across top-level work (self time summed everywhere)."""
        return sum(s.self_seconds for s in self._stats.values())

    def merge(self, stats: Dict[str, SpanStats]) -> None:
        """Fold another tracer's aggregate statistics into this one.

        Used by the parallel engine to account worker-process spans in the
        parent's profile.  Raw span records are not transferred — only the
        per-name aggregates the flame table is built from.
        """
        if not self.enabled:
            return
        for name, other in stats.items():
            mine = self._stats.get(name)
            if mine is None:
                mine = SpanStats(name)
                self._stats[name] = mine
            mine.calls += other.calls
            mine.wall_seconds += other.wall_seconds
            mine.child_seconds += other.child_seconds
            mine.max_seconds = max(mine.max_seconds, other.max_seconds)

    def reset(self) -> None:
        """Drop all statistics and records."""
        self._stack.clear()
        self._stats.clear()
        if self._records is not None:
            self._records.clear()


#: A permanently disabled tracer.
NULL_TRACER = Tracer(enabled=False)

_global_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-global default tracer."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer; returns the previous one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer
    return previous
