"""WSC fleet aggregation and the quickfleet helper."""

import pytest

from repro.cluster import quickfleet
from repro.cluster.wsc import WSC
from repro.core.threshold_policy import ThresholdPolicyConfig
from repro.kernel.machine import FarMemoryMode


class TestQuickfleet:
    def test_builds_requested_shape(self):
        fleet = quickfleet(clusters=2, machines_per_cluster=3,
                           jobs_per_machine=2, seed=1)
        assert len(fleet.clusters) == 2
        assert len(fleet.machines) == 6
        total_jobs = sum(len(c.running) for c in fleet.clusters)
        assert total_jobs == 12

    def test_deterministic_under_seed(self):
        a = quickfleet(machines_per_cluster=2, jobs_per_machine=2, seed=5)
        b = quickfleet(machines_per_cluster=2, jobs_per_machine=2, seed=5)
        a.run(1200)
        b.run(1200)
        assert a.coverage() == b.coverage()
        assert a.cold_fraction(120) == b.cold_fraction(120)

    def test_different_seeds_differ(self):
        a = quickfleet(machines_per_cluster=2, jobs_per_machine=3, seed=1)
        b = quickfleet(machines_per_cluster=2, jobs_per_machine=3, seed=2)
        a.run(1200)
        b.run(1200)
        assert a.cold_fraction(120) != b.cold_fraction(120)

    def test_warmup_hours(self):
        fleet = quickfleet(machines_per_cluster=1, jobs_per_machine=2,
                           seed=3, warmup_hours=0.5)
        assert fleet.now == 1800


class TestFleetMetrics(object):
    def test_coverage_in_unit_range(self, warm_fleet):
        assert 0.0 <= warm_fleet.coverage() <= 1.0

    def test_cold_fraction_decreases_with_threshold(self, warm_fleet):
        assert warm_fleet.cold_fraction(120) >= warm_fleet.cold_fraction(960)

    def test_promotion_percentile_monotone(self, warm_fleet):
        assert warm_fleet.promotion_rate_percentile(
            98
        ) >= warm_fleet.promotion_rate_percentile(50)

    def test_coverage_report_keys(self, warm_fleet):
        report = warm_fleet.coverage_report()
        assert set(report) == {
            "coverage",
            "cold_fraction_at_min_threshold",
            "promotion_rate_p98_pct_per_min",
            "far_memory_gib",
            "saved_gib",
        }
        assert report["far_memory_gib"] >= 0

    def test_sli_history_populated(self, warm_fleet):
        assert len(warm_fleet.sli_history) > 0

    def test_far_memory_exists_after_warmup(self, warm_fleet):
        assert warm_fleet.coverage() > 0


class TestDeployment:
    def test_deploy_policy_fans_out(self):
        fleet = quickfleet(clusters=2, machines_per_cluster=1,
                           jobs_per_machine=1, seed=4)
        config = ThresholdPolicyConfig(percentile_k=60, warmup_seconds=30)
        fleet.deploy_policy(config)
        for cluster in fleet.clusters:
            assert cluster.policy_config.percentile_k == 60

    def test_off_mode_fleet_has_no_far_memory(self):
        fleet = quickfleet(machines_per_cluster=1, jobs_per_machine=2,
                           seed=5, mode=FarMemoryMode.OFF)
        fleet.run(1800)
        assert fleet.coverage() == 0.0

    def test_empty_fleet_rejected(self):
        from repro.cluster.trace_db import TraceDatabase

        with pytest.raises(ValueError):
            WSC([], TraceDatabase())
