"""Figure 2: cold-memory variation across machines within clusters.

Paper: per-machine cold percentage spans 1-52 % even within one cluster —
the case against fixed-size far memory.  We regenerate the per-cluster
violin summaries and verify that substantial within-cluster spread exists.
"""

from __future__ import annotations

from repro.analysis import (
    per_machine_cold_fractions_by_cluster,
    render_violins,
    violin_stats,
)


def test_fig2_per_machine_cold_variation(benchmark, paper_fleet, save_result):
    groups = benchmark(per_machine_cold_fractions_by_cluster, paper_fleet, 120)

    assert len(groups) == len(paper_fleet.clusters)
    all_fractions = [f for fractions in groups.values() for f in fractions]
    assert all(0.0 <= f <= 1.0 for f in all_fractions)

    # The paper's point: machines differ a lot.  Across the fleet the
    # spread between the coldest and hottest machine must be substantial.
    assert max(all_fractions) - min(all_fractions) > 0.05

    save_result(
        "fig2_cluster_variation",
        render_violins(
            {name: violin_stats(f) for name, f in groups.items() if f},
            title="Fig. 2 — per-machine cold memory by cluster "
            "(paper: 1-52% within a cluster)",
        ),
    )
