"""One WSC machine: DRAM + memcgs + kernel daemons (paper §5.1, Fig. 4).

A :class:`Machine` composes the kernel substrate — memcgs, kstaled,
kreclaimd, zswap over a global zsmalloc arena, and reactive direct reclaim
— behind the API the node agent and cluster scheduler use:

* job lifecycle (:meth:`add_job` / :meth:`remove_job`),
* the memory fast path (:meth:`touch`, :meth:`allocate`, :meth:`release`),
* a per-tick :meth:`tick` that runs whichever daemons are due.

The far-memory *mode* selects the paper's system (``PROACTIVE``), the Linux
default baseline (``REACTIVE``), or no far memory at all (``OFF``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.checks.invariants import check_machine_accounting, invariants_enabled
from repro.common.errors import OutOfMemoryError, SimulationError
from repro.common.events import EventKind, EventLog
from repro.common.rng import SeedSequenceFactory
from repro.common.units import KSTALED_SCAN_PERIOD, PAGE_SIZE
from repro.common.validation import check_positive, require
from repro.core.histograms import AgeBins, default_age_bins
from repro.kernel.compression import (
    DEFAULT_LATENCY_MODEL,
    CompressionLatencyModel,
    ContentProfile,
)
from repro.kernel.columnar import ColumnarMemCg, MachinePagePool
from repro.kernel.direct_reclaim import DirectReclaim
from repro.kernel.kreclaimd import Kreclaimd
from repro.kernel.kstaled import Kstaled
from repro.kernel.memcg import MemCg
from repro.kernel.zsmalloc import ZsmallocArena
from repro.kernel.zswap import Zswap, ZswapJobStats
from repro.obs import (
    MetricName,
    MetricRegistry,
    Tracer,
    get_registry,
    get_tracer,
)

__all__ = ["FarMemoryMode", "MachineConfig", "Machine"]


class FarMemoryMode(enum.Enum):
    """Which far-memory control plane a machine runs."""

    PROACTIVE = "proactive"  #: the paper's system: kreclaimd + node agent
    REACTIVE = "reactive"  #: stock Linux zswap: direct reclaim only
    OFF = "off"  #: no far memory (control group in A/B tests)


@dataclass(frozen=True)
class MachineConfig:
    """Static machine parameters.

    Attributes:
        dram_bytes: installed DRAM capacity.
        mode: far-memory control plane (see :class:`FarMemoryMode`).
        scan_period: kstaled period in seconds.
        reclaim_watermark_fraction: free-memory fraction below which
            reactive direct reclaim triggers on allocation.
        kreclaimd_pages_per_run: slack-cycle budget per kreclaimd pass.
        latency_model: compression cost model.
        zswap_max_pool_fraction: cap on the arena footprint as a fraction
            of DRAM (0 = uncapped; upstream zswap defaults to 20 %).
        kernel: page-state backend — ``"scalar"`` (one array set per
            memcg) or ``"columnar"`` (machine-pooled arrays; see
            :mod:`repro.kernel.columnar`).  Bit-equivalent by contract.
    """

    dram_bytes: int = 256 << 30
    mode: FarMemoryMode = FarMemoryMode.PROACTIVE
    scan_period: int = KSTALED_SCAN_PERIOD
    reclaim_watermark_fraction: float = 0.02
    kreclaimd_pages_per_run: Optional[int] = None
    latency_model: CompressionLatencyModel = DEFAULT_LATENCY_MODEL
    zswap_max_pool_fraction: float = 0.0
    kernel: str = "scalar"

    def __post_init__(self) -> None:
        check_positive(self.dram_bytes, "dram_bytes")
        check_positive(self.scan_period, "scan_period")
        require(
            self.kernel in ("scalar", "columnar"),
            f'kernel must be "scalar" or "columnar", got {self.kernel!r}',
        )
        require(
            0.0 <= self.reclaim_watermark_fraction < 1.0,
            "reclaim_watermark_fraction must be in [0, 1)",
        )
        require(
            0.0 <= self.zswap_max_pool_fraction <= 1.0,
            "zswap_max_pool_fraction must be in [0, 1]",
        )


class Machine:
    """A single server with software-defined far memory.

    Args:
        machine_id: fleet-unique identifier.
        config: static parameters.
        bins: fleet-wide candidate threshold grid.
        seeds: RNG factory (forked per job for payload sampling).
        events: optional shared event log.
        registry: metrics registry, threaded through to the kernel daemons
            with this machine's id as the ``machine`` label (defaults to
            the process-global registry).
        tracer: span tracer for the daemons (defaults to the global one).
        pool: an externally owned cluster-scoped
            :class:`~repro.kernel.columnar.MachinePagePool` shared by
            every machine in a cluster (requires ``kernel="columnar"``).
            A shared pool changes who *drives* the kernel fast paths —
            the cluster scans and reclaims all machines in one pooled
            sweep — but not their results: accounting falls back to the
            per-memcg view reductions, which are bit-identical.  Omitted
            (the default), a columnar machine owns a private pool.
    """

    def __init__(
        self,
        machine_id: str,
        config: MachineConfig,
        bins: Optional[AgeBins] = None,
        seeds: Optional[SeedSequenceFactory] = None,
        events: Optional[EventLog] = None,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
        pool: Optional[MachinePagePool] = None,
    ):
        self.machine_id = machine_id
        self.config = config
        self.bins = bins if bins is not None else default_age_bins()
        self._seeds = seeds if seeds is not None else SeedSequenceFactory(0)
        self.events = events if events is not None else EventLog(max_events=100_000)
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()

        self.memcgs: Dict[str, MemCg] = {}
        #: Columnar backend: the page pool holding this machine's memcg
        #: segments (None = scalar).  ``pool_shared`` marks a
        #: cluster-scoped pool: segments of *other* machines live in the
        #: same arrays, so machine-wide reductions, scans, and reclaim
        #: must not sweep the whole pool from here.
        if pool is not None:
            require(
                config.kernel == "columnar",
                "a shared pool requires the columnar kernel",
            )
            self.pool: Optional[MachinePagePool] = pool
            self.pool_shared = True
        else:
            self.pool = (
                MachinePagePool(self.bins, config.scan_period)
                if config.kernel == "columnar"
                else None
            )
            self.pool_shared = False
        self.arena = ZsmallocArena(machine_id=machine_id,
                                   registry=self.registry,
                                   tracer=self.tracer)
        self.zswap = Zswap(
            self.arena,
            config.latency_model,
            max_pool_bytes=int(
                config.zswap_max_pool_fraction * config.dram_bytes
            ),
            machine_id=machine_id,
            rng=self._seeds.stream("zswap_reservoir"),
            registry=self.registry,
            tracer=self.tracer,
        )
        self.kstaled = Kstaled(config.scan_period, machine_id=machine_id,
                               registry=self.registry, tracer=self.tracer)
        self.kreclaimd = Kreclaimd(self.zswap, config.kreclaimd_pages_per_run,
                                   machine_id=machine_id,
                                   registry=self.registry, tracer=self.tracer)
        self.direct_reclaim = DirectReclaim(self.zswap)
        self.now = 0
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        machine_id = self.machine_id
        self._m_promoted = self.registry.counter(
            MetricName.PAGES_PROMOTED_TOTAL,
            "Far pages faulted back to DRAM (promotions).", ("machine",)
        ).labels(machine=machine_id)
        self._g_arena = self.registry.gauge(
            MetricName.ARENA_FOOTPRINT_BYTES,
            "DRAM pinned by the zsmalloc arena.", ("machine",)
        ).labels(machine=machine_id)
        self._g_far = self.registry.gauge(
            MetricName.FAR_PAGES,
            "Pages currently stored compressed.", ("machine",)
        ).labels(machine=machine_id)

    def rebind_observability(self, registry: MetricRegistry,
                             tracer: Tracer) -> None:
        """Re-point this machine (and its daemons) at a new registry/tracer.

        The parallel engine ships clusters across processes by pickle;
        unpickled machines carry their own forked registry copies, so the
        parent re-binds every metric handle to its live registry and
        re-injects the machine-labelled promotion counter into each memcg.
        """
        self.registry = registry
        self.tracer = tracer
        self._bind_metrics()
        for memcg in self.memcgs.values():
            memcg.promoted_counter = self._m_promoted
        self.arena.rebind_observability(registry, tracer)
        self.zswap.rebind_observability(registry, tracer)
        self.kstaled.rebind_observability(registry, tracer)
        self.kreclaimd.rebind_observability(registry, tracer)

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------

    @property
    def _private_pool(self) -> Optional[MachinePagePool]:
        """The pool, when whole-pool sweeps equal machine-wide answers.

        A cluster-scoped pool also holds other machines' segments, so the
        accounting reductions fall back to per-memcg sums over the views
        (same arithmetic, restricted to this machine's segments).
        """
        return None if self.pool_shared else self.pool

    @property
    def near_bytes(self) -> int:
        """DRAM used by uncompressed pages."""
        if self._private_pool is not None:
            return self._private_pool.near_pages() * PAGE_SIZE
        total = 0
        for memcg in self.memcgs.values():
            total += memcg.near_pages
        return total * PAGE_SIZE

    @property
    def used_bytes(self) -> int:
        """Total DRAM in use (near pages + arena footprint)."""
        return self.near_bytes + self.arena.footprint_bytes

    @property
    def free_bytes(self) -> int:
        """Uncommitted DRAM."""
        return self.config.dram_bytes - self.used_bytes

    @property
    def far_pages(self) -> int:
        """Pages currently stored compressed, machine-wide."""
        if self._private_pool is not None:
            return self._private_pool.far_pages()
        total = 0
        for memcg in self.memcgs.values():
            total += memcg.far_pages
        return total

    def saved_bytes(self) -> int:
        """DRAM reclaimed by compression: far bytes minus arena footprint."""
        return self.far_pages * PAGE_SIZE - self.arena.footprint_bytes

    def cold_pages(self, threshold_seconds: float) -> int:
        """Machine-wide pages idle at least ``threshold_seconds``."""
        if self._private_pool is not None:
            return self._private_pool.cold_pages(threshold_seconds)
        return sum(
            m.cold_pages(threshold_seconds) for m in self.memcgs.values()
        )

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def add_job(
        self,
        job_id: str,
        capacity_pages: int,
        content_profile: Optional[ContentProfile] = None,
    ) -> MemCg:
        """Create a memcg for a newly scheduled job."""
        require(job_id not in self.memcgs, f"job {job_id} already on machine")
        profile = content_profile if content_profile is not None else ContentProfile()
        memcg_class = MemCg if self.pool is None else ColumnarMemCg
        memcg = memcg_class(
            job_id=job_id,
            capacity_pages=capacity_pages,
            content_profile=profile,
            bins=self.bins,
            rng=self._seeds.stream("payload", machine=hash(self.machine_id) & 0xFFFF,
                                   job=hash(job_id) & 0xFFFFFF),
            scan_period=self.config.scan_period,
        )
        if self.pool is not None:
            self.pool.add(memcg)
        memcg.start_time = self.now
        memcg.promoted_counter = self._m_promoted
        # Proactive mode: zswap is enabled per job after warm-up by the node
        # agent; reactive/off modes never run kreclaimd so the flag is moot.
        memcg.zswap_enabled = self.config.mode is FarMemoryMode.PROACTIVE
        self.memcgs[job_id] = memcg
        self.events.record(self.now, EventKind.MACHINE_JOB_ADDED, job=job_id,
                           machine=self.machine_id)
        return memcg

    def remove_job(self, job_id: str) -> ZswapJobStats:
        """Tear down a job's memcg, dropping its far pages from the arena."""
        memcg = self.memcgs.pop(job_id, None)
        if memcg is None:
            raise SimulationError(f"job {job_id} not on machine {self.machine_id}")
        far = np.flatnonzero(memcg.far_mask())
        self.zswap.evict_job(memcg, far)
        if self.pool is not None:
            self.pool.remove(memcg)
        self.events.record(self.now, EventKind.MACHINE_JOB_REMOVED, job=job_id,
                           machine=self.machine_id)
        return self.zswap.stats_for(job_id)

    # ------------------------------------------------------------------
    # Memory fast path
    # ------------------------------------------------------------------

    def allocate(self, job_id: str, n_pages: int) -> np.ndarray:
        """Allocate pages for a job, reclaiming under pressure.

        In REACTIVE mode a shortfall triggers synchronous direct reclaim
        (the stock-Linux behaviour).  In PROACTIVE mode the paper instead
        prefers failing fast: an unserviceable allocation raises
        :class:`OutOfMemoryError` so the scheduler can evict/reschedule.
        """
        memcg = self._memcg(job_id)
        needed = n_pages * PAGE_SIZE
        watermark = int(
            self.config.dram_bytes * self.config.reclaim_watermark_fraction
        )
        if self.free_bytes - needed < watermark:
            self.arena.compact()
        if (
            self.free_bytes - needed < watermark
            and self.config.mode is FarMemoryMode.REACTIVE
        ):
            shortfall = needed + watermark - self.free_bytes
            freed, stall = self.direct_reclaim.reclaim(
                self.memcgs.values(), shortfall
            )
            self.events.record(
                self.now, EventKind.MACHINE_DIRECT_RECLAIM, job=job_id,
                freed_bytes=freed, stall_seconds=stall,
            )
        if self.free_bytes < needed:
            raise OutOfMemoryError(
                f"machine {self.machine_id}: {n_pages} pages requested, "
                f"{self.free_bytes // PAGE_SIZE} free"
            )
        return memcg.allocate(n_pages)

    def release(self, job_id: str, indices: np.ndarray) -> None:
        """Free pages, dropping any compressed copies from the arena."""
        memcg = self._memcg(job_id)
        far = memcg.release(indices)
        self.zswap.evict_job(memcg, far)

    def touch(self, job_id: str, indices: np.ndarray, write: bool = False) -> int:
        """Access pages; faults on far pages decompress them (promotion).

        Returns the number of promotions performed.
        """
        memcg = self._memcg(job_id)
        far = memcg.touch(indices, write=write)
        if far.size:
            self.zswap.decompress(memcg, far)
        return int(far.size)

    # ------------------------------------------------------------------
    # Daemons
    # ------------------------------------------------------------------

    def tick(self, now: int) -> None:
        """Advance machine time: run kstaled (if due) and kreclaimd.

        The node agent's control loop runs *between* kstaled scans and
        kreclaimd passes; the cluster layer sequences
        ``machine.tick -> agent.control -> machine.run_reclaim``.
        """
        require(now >= self.now, "time went backwards")
        self.now = now
        if not self.pool_shared:
            # With a cluster-scoped pool the cluster runs one pooled scan
            # for all machines (Cluster._pooled_scan) and books pages back
            # via Kstaled.record_scan; scanning here would age everyone
            # else's segments too.
            self.kstaled.maybe_scan(now, self.memcgs.values(), pool=self.pool)
        self._g_arena.set(self.arena.footprint_bytes)
        self._g_far.set(self.far_pages)
        if invariants_enabled():
            check_machine_accounting(self)

    def run_reclaim(self) -> int:
        """One kreclaimd pass (proactive mode only); returns pages moved.

        With a cluster-scoped pool this is a no-op: the cluster batches
        one reclaim round for every machine whose agent just controlled
        (:meth:`Cluster._pooled_reclaim`), evaluating the shared candidate
        mask once instead of per machine.
        """
        if self.config.mode is not FarMemoryMode.PROACTIVE or self.pool_shared:
            return 0
        return self.kreclaimd.run(self.memcgs.values(), pool=self.pool)

    def __setstate__(self, state: dict) -> None:
        # The parallel engine ships machines by pickle.  Columnar memcgs
        # arrive without their view arrays (see
        # ``ColumnarMemCg.__getstate__``); the pool carries the data, so
        # rebind every memcg to its segment on this side of the fork.  A
        # cluster-scoped pool is referenced by many machines; the
        # staleness flag makes the rebind run once, not once per machine.
        self.__dict__.update(state)
        pool = self.__dict__.get("pool")
        if pool is not None and getattr(pool, "_views_stale", True):
            pool.rebind_all()

    def _memcg(self, job_id: str) -> MemCg:
        memcg = self.memcgs.get(job_id)
        if memcg is None:
            raise SimulationError(
                f"job {job_id} not on machine {self.machine_id}"
            )
        return memcg
