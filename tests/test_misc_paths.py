"""Coverage for less-travelled paths across modules."""

import numpy as np
import pytest

from repro.cluster import quickfleet
from repro.common.rng import SeedSequenceFactory
from repro.common.units import MIB
from repro.kernel import ContentProfile, Machine, MachineConfig
from repro.workloads.job_generator import FleetMixGenerator


COMPRESSIBLE = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)


class TestMachineRelease:
    def test_release_far_pages_drains_arena(self):
        machine = Machine(
            "m", MachineConfig(dram_bytes=64 * MIB),
            seeds=SeedSequenceFactory(8),
        )
        memcg = machine.add_job("j", 500, COMPRESSIBLE)
        idx = machine.allocate("j", 500)
        for t in range(0, 481, 60):
            machine.tick(t)
        memcg.cold_age_threshold = 120.0
        machine.run_reclaim()
        assert machine.arena.live_objects == 500
        machine.release("j", idx[:200])
        assert machine.arena.live_objects == 300
        assert memcg.resident_pages == 300


class TestWscRunModes:
    def test_run_without_sli_collection(self):
        fleet = quickfleet(clusters=1, machines_per_cluster=1,
                           jobs_per_machine=2, seed=6)
        fleet.run(600, collect_sli=False)
        assert fleet.sli_history == []
        # SLI samples still accumulate inside the agents, undreained.
        assert any(
            agent.sli_samples
            for cluster in fleet.clusters
            for agent in cluster.agents.values()
        )

    def test_empty_fleet_percentile(self):
        fleet = quickfleet(clusters=1, machines_per_cluster=1,
                           jobs_per_machine=1, seed=6)
        assert fleet.promotion_rate_percentile(98) == 0.0


class TestGeneratorStyles:
    def test_all_pattern_styles_produce_valid_steps(self, rng):
        """Across a larger draw, zipf/phased/poisson factories all appear
        and every pattern emits in-range indices."""
        generator = FleetMixGenerator(seeds=SeedSequenceFactory(77))
        styles_seen = set()
        for spec in generator.generate(40):
            pattern = spec.pattern_factory(rng)
            styles_seen.add(type(pattern).__name__)
            inner = getattr(pattern, "inner", pattern)
            styles_seen.add(type(inner).__name__)
            for t in (0, 3600):
                reads, writes = pattern.step(t, 60, rng)
                if reads.size:
                    assert 0 <= reads.min() and reads.max() < spec.pages
        assert "HeterogeneousPoissonPattern" in styles_seen
        assert len(styles_seen) >= 3


class TestEventsFlow:
    def test_cluster_records_lifecycle_events(self):
        fleet = quickfleet(clusters=1, machines_per_cluster=1,
                           jobs_per_machine=2, seed=6)
        cluster = fleet.clusters[0]
        assert len(cluster.events.of_kind("scheduler.place")) == 2
        job_id = next(iter(cluster.running))
        cluster.finish(job_id)
        assert len(cluster.events.of_kind("scheduler.remove")) == 1
