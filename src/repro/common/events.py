"""Lightweight event recording for simulator observability.

Components append :class:`Event` records to an :class:`EventLog`; analysis
code filters by kind.  This is the simulator's stand-in for the paper's
monitoring infrastructure — cheap enough to leave on, structured enough to
drive assertions in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["Event", "EventKind", "EventLog", "KNOWN_EVENT_KINDS"]


class EventKind:
    """Canonical event-kind names (the OBS001 source of truth).

    Every ``EventLog.record`` call site must use one of these constants
    (or a literal equal to one of them — ``repro lint`` flags anything
    else), so the set of kinds in flight can never drift from what
    analysis code, docs, and the ``repro_events_total`` bridge expect.
    """

    MACHINE_JOB_ADDED = "machine.job_added"
    MACHINE_JOB_REMOVED = "machine.job_removed"
    MACHINE_DIRECT_RECLAIM = "machine.direct_reclaim"
    CLUSTER_MACHINE_FAILURE = "cluster.machine_failure"
    CLUSTER_MACHINE_REPAIRED = "cluster.machine_repaired"
    CLUSTER_ADMISSION_REJECT = "cluster.admission_reject"
    CLUSTER_REPLENISH_REJECT = "cluster.replenish_reject"
    SCHEDULER_PLACE = "scheduler.place"
    SCHEDULER_REMOVE = "scheduler.remove"
    SCHEDULER_EVICT = "scheduler.evict"
    TELEMETRY_HISTOGRAM_RESET = "telemetry.histogram_reset"
    TELEMETRY_SINK_OUTAGE = "telemetry.sink_outage"
    TELEMETRY_SINK_RECOVERED = "telemetry.sink_recovered"
    TELEMETRY_ENTRIES_DROPPED = "telemetry.entries_dropped"
    AGENT_HISTOGRAM_REWARM = "agent.histogram_rewarm"
    FAULT_INJECTED = "faults.injected"
    FAULT_CLEARED = "faults.cleared"
    CANARY_DEPLOY = "canary.deploy"
    CANARY_ROLLBACK = "canary.rollback"


#: Every kind an event may be recorded under (frozen view of
#: :class:`EventKind`, consumed by the OBS001 lint rule).
KNOWN_EVENT_KINDS = frozenset(
    value
    for name, value in vars(EventKind).items()
    if not name.startswith("_") and isinstance(value, str)
)


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence.

    Attributes:
        time: simulation time in seconds.
        kind: dotted event name, e.g. ``"scheduler.evict"``.
        payload: arbitrary structured details.
    """

    time: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only event sink with simple filtering and subscriptions.

    A log may be created bounded (``max_events``) for long simulations;
    when full, the oldest events are dropped from the *retained buffer*
    and ``dropped_count`` records how many.  Dropping only affects later
    reads (``__iter__``/``of_kind``/``between``): every event was already
    delivered to subscribers at :meth:`record` time, so ``dropped_count``
    measures lost history, never lost notifications.
    """

    def __init__(self, max_events: Optional[int] = None):
        if max_events is not None and max_events <= 0:
            raise ValueError("max_events must be positive or None")
        self._events: List[Event] = []
        self._max_events = max_events
        self._subscribers: List[Tuple[str, Callable[[Event], None]]] = []
        self.dropped_count = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle without subscribers (callbacks are process-local closures).

        The parallel engine ships whole clusters between processes; the
        owner is expected to re-subscribe its bridges after unpickling
        (see ``Cluster.rebind_runtime``).
        """
        state = self.__dict__.copy()
        state["_subscribers"] = []
        return state

    def subscribe(
        self, kind_prefix: str, callback: Callable[[Event], None]
    ) -> Callable[[], None]:
        """Invoke ``callback`` for every future event matching the prefix.

        Matching follows :meth:`of_kind`: an event matches when its kind
        equals ``kind_prefix`` or is nested under it (``"zswap"`` matches
        ``"zswap.store"``).  The empty prefix matches everything.
        Callbacks fire synchronously inside :meth:`record`, before the
        bounded-buffer eviction, so subscribers see every event even when
        the log is dropping history.

        Returns:
            A zero-argument function that unsubscribes the callback.
        """
        entry = (kind_prefix, callback)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    def clear_subscribers(self) -> None:
        """Drop every subscription.

        Used when a log's owner re-wires its bridges in place (e.g. the
        parallel engine re-binding a cluster it never pickled): clearing
        first keeps the re-subscription from stacking a duplicate callback
        that would double-count every future event.
        """
        self._subscribers.clear()

    def record(self, time: int, kind: str, **payload: Any) -> Event:
        """Append and return a new event (notifying subscribers first)."""
        event = Event(time=time, kind=kind, payload=payload)
        for prefix, callback in self._subscribers:
            if not prefix or kind == prefix or kind.startswith(prefix + "."):
                callback(event)
        self._events.append(event)
        if self._max_events is not None and len(self._events) > self._max_events:
            overflow = len(self._events) - self._max_events
            del self._events[:overflow]
            self.dropped_count += overflow
        return event

    def of_kind(self, kind: str) -> List[Event]:
        """All events whose kind equals or is nested under ``kind``."""
        prefix = kind + "."
        return [e for e in self._events if e.kind == kind or e.kind.startswith(prefix)]

    def between(self, start: int, end: int) -> List[Event]:
        """All events with ``start <= time < end``."""
        return [e for e in self._events if start <= e.time < end]

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
