"""Helpers far from the tick path: the taint *source* layer."""

import time


def wall_now() -> float:
    # The nondeterminism source (DET001 locally; FLOW001's origin).
    return time.time()


def jitter() -> float:
    # The intermediate hop: no source of its own, taint flows through.
    return wall_now() % 1.0


def pure(x: int) -> int:
    # Clean helper: calling this taints nobody.
    return x * 2
