"""Cold-memory coverage accounting."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.coverage import (
    CoverageSample,
    cold_memory_coverage,
    coverage_timeseries,
    fleet_coverage,
)


class TestColdMemoryCoverage:
    def test_basic_ratio(self):
        assert cold_memory_coverage(20, 100) == pytest.approx(0.2)

    def test_no_cold_memory(self):
        assert cold_memory_coverage(0, 0) == 0.0

    def test_clamped_at_one(self):
        # Races between sampling far and cold counts can overshoot.
        assert cold_memory_coverage(110, 100) == 1.0


class TestCoverageSample:
    def test_property(self):
        sample = CoverageSample(far_memory_pages=15, cold_pages_at_min_threshold=60)
        assert sample.coverage == pytest.approx(0.25)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            CoverageSample(far_memory_pages=-1, cold_pages_at_min_threshold=0)


class TestFleetCoverage:
    def test_weighted_by_cold_size(self):
        # A big machine at 10% and a tiny machine at 100%: fleet coverage
        # must sit near the big machine, not at the mean of ratios.
        samples = [
            CoverageSample(100, 1000),
            CoverageSample(10, 10),
        ]
        assert fleet_coverage(samples) == pytest.approx(110 / 1010)

    def test_empty_fleet(self):
        assert fleet_coverage([]) == 0.0


class TestCoverageTimeseries:
    def test_windows_aggregate(self):
        samples = [
            CoverageSample(1, 10, time=0),
            CoverageSample(2, 10, time=100),
            CoverageSample(3, 10, time=300),
        ]
        series = coverage_timeseries(samples, window_seconds=300)
        assert len(series) == 2
        assert series[0].far_memory_pages == 3
        assert series[0].cold_pages_at_min_threshold == 20
        assert series[1].time == 300

    def test_zero_window_passthrough(self):
        samples = [CoverageSample(1, 2, time=5)]
        assert coverage_timeseries(samples, 0) == samples
