"""Thermostat-style sampling cold detector."""

import numpy as np
import pytest

from repro.baselines import ThermostatConfig, ThermostatDetector


def run_epochs(detector, hot_pages, rng, epochs=20, ticks_per_epoch=2):
    """Drive the detector: `hot_pages` are touched every tick."""
    for _ in range(epochs):
        detector.begin_epoch(rng)
        for _ in range(ticks_per_epoch):
            detector.record_accesses(hot_pages)
        detector.end_epoch()


class TestBasics:
    def test_region_mapping(self):
        detector = ThermostatDetector(
            2048, ThermostatConfig(region_pages=512)
        )
        assert detector.n_regions == 4
        np.testing.assert_array_equal(
            detector.region_of(np.array([0, 511, 512, 2047])), [0, 0, 1, 3]
        )

    def test_sample_size(self, rng):
        detector = ThermostatDetector(
            51200, ThermostatConfig(region_pages=512, sample_fraction=0.1)
        )
        sample = detector.begin_epoch(rng)
        assert sample.size == 10
        assert np.unique(sample).size == 10

    def test_validation(self):
        with pytest.raises(Exception):
            ThermostatDetector(0)


class TestFaultAccounting:
    def test_first_touch_faults_once(self, rng):
        config = ThermostatConfig(region_pages=512, sample_fraction=1.0)
        detector = ThermostatDetector(1024, config)
        detector.begin_epoch(rng)
        page = np.array([7])
        assert detector.record_accesses(page) == 1
        # Poison was cleared by the first fault.
        assert detector.record_accesses(page) == 0
        assert detector.total_sampled_faults == 1

    def test_unsampled_regions_never_fault(self, rng):
        config = ThermostatConfig(region_pages=512, sample_fraction=0.5)
        detector = ThermostatDetector(1024, config)  # 2 regions, sample 1
        sample = detector.begin_epoch(rng)
        unsampled = 1 - int(sample[0])
        pages = np.arange(unsampled * 512, unsampled * 512 + 10)
        assert detector.record_accesses(pages) == 0


class TestClassification:
    def test_separates_hot_from_cold_regions(self, rng):
        # 8 regions; regions 0-3 hot, 4-7 never touched.
        config = ThermostatConfig(region_pages=512, sample_fraction=0.5)
        detector = ThermostatDetector(8 * 512, config)
        hot_pages = np.arange(0, 4 * 512)
        run_epochs(detector, hot_pages, rng, epochs=30)

        cold = set(detector.cold_regions(max_faults_per_epoch=0.0))
        assert cold, "sampling never classified anything cold"
        assert cold <= {4, 5, 6, 7}
        hot_estimates = detector.estimated_rate[:4]
        known_hot = hot_estimates[~np.isnan(hot_estimates)]
        assert (known_hot > 0).all()

    def test_cold_page_mask_matches_regions(self, rng):
        config = ThermostatConfig(region_pages=512, sample_fraction=1.0)
        detector = ThermostatDetector(4 * 512, config)
        run_epochs(detector, np.arange(512), rng, epochs=3)
        mask = detector.cold_page_mask()
        assert not mask[:512].any()
        assert mask[512:].all()

    def test_coverage_grows_with_epochs(self, rng):
        config = ThermostatConfig(region_pages=512, sample_fraction=0.1)
        detector = ThermostatDetector(100 * 512, config)
        run_epochs(detector, np.zeros(0, dtype=int), rng, epochs=5)
        early = detector.coverage_fraction
        run_epochs(detector, np.zeros(0, dtype=int), rng, epochs=30)
        assert detector.coverage_fraction >= early
        assert detector.coverage_fraction < 1.0 or detector.epochs >= 10

    def test_unsampled_regions_not_classified(self, rng):
        config = ThermostatConfig(region_pages=512, sample_fraction=0.01)
        detector = ThermostatDetector(100 * 512, config)
        detector.begin_epoch(rng)
        detector.end_epoch()
        # Only the single sampled region can be classified.
        assert detector.cold_regions().size <= 1


class TestThermostatThresholdPolicy:
    """The policy-level adapter on the node-agent control surface."""

    def make(self, bins, period=2, alpha=0.5, warmup=0):
        from repro.baselines import (
            ThermostatPolicyConfig,
            ThermostatThresholdPolicy,
        )

        config = ThermostatPolicyConfig(
            sample_period_intervals=period,
            ewma_alpha=alpha,
            warmup_seconds=warmup,
        )
        return ThermostatThresholdPolicy(config, bins)

    def hist(self, bins, ages):
        from repro.core.histograms import AgeHistogram

        hist = AgeHistogram(bins)
        hist.add_ages(np.array(ages, dtype=float))
        return hist

    def test_no_estimate_means_no_compression(self, bins):
        from repro.core.threshold_policy import DISABLED

        policy = self.make(bins)
        assert policy.threshold() == DISABLED

    def test_duty_cycle_skips_unsampled_intervals(self, bins):
        policy = self.make(bins, period=2)
        quiet = self.hist(bins, [])
        # Interval 1 is off-phase: the histogram is not even read and
        # the estimate stays unset; interval 2 samples and locks in the
        # most aggressive threshold for a quiet job.
        policy.observe(quiet, working_set_size_pages=10_000)
        assert np.isnan(policy._estimate)
        policy.observe(quiet, working_set_size_pages=10_000)
        assert policy.threshold() == bins.min_threshold

    def test_warmup_clock_advances_on_unsampled_intervals(self, bins):
        from repro.core.threshold_policy import DISABLED

        policy = self.make(bins, period=2, warmup=60)
        assert not policy.warmed_up
        policy.observe_zero(interval_seconds=60)  # unsampled, but counts
        assert policy.warmed_up
        policy.observe_zero(interval_seconds=60)
        assert policy.threshold() != DISABLED

    def test_estimate_is_an_ewma_snapped_up_to_the_grid(self, bins):
        policy = self.make(bins, period=1, alpha=0.5)
        slo_budget_wss = 10_000
        # First sample: quiet -> best 120.  Second: pressure at ~130 s
        # pushes the best to 240.  EWMA(0.5) = 180 -> snaps up to 240.
        policy.observe(self.hist(bins, []), slo_budget_wss)
        policy.observe(self.hist(bins, [130] * 500), slo_budget_wss)
        assert policy._estimate == pytest.approx(180.0)
        assert policy.threshold() == 240.0

    def test_inherit_from_paper_controller_rebuilds_estimate(self, bins):
        from repro.core.threshold_policy import (
            ColdAgeThresholdPolicy,
            ThresholdPolicyConfig,
        )

        paper = ColdAgeThresholdPolicy(
            ThresholdPolicyConfig(warmup_seconds=0), bins
        )
        for _ in range(4):
            paper.observe(self.hist(bins, []), 10_000)
        swapped = self.make(bins, period=2)
        swapped.inherit_state(paper)
        # History, warm-up clock, and duty-cycle phase all carry over;
        # the estimate is rebuilt by folding the inherited history.
        assert swapped._intervals == 4
        assert swapped._estimate == pytest.approx(120.0)
        assert swapped.threshold() == bins.min_threshold

    def test_inherit_between_thermostats_is_verbatim(self, bins):
        old = self.make(bins, period=2)
        old.observe(self.hist(bins, []), 10_000)
        old.observe(self.hist(bins, []), 10_000)
        new = self.make(bins, period=2)
        new.inherit_state(old)
        assert new._estimate == old._estimate
        assert new._intervals == old._intervals

    def test_reset_clears_the_estimate(self, bins):
        from repro.core.threshold_policy import DISABLED

        policy = self.make(bins, period=1)
        policy.observe(self.hist(bins, []), 10_000)
        policy.reset()
        assert policy.threshold() == DISABLED
        assert policy._intervals == 0


class TestThermostatPolicySeam:
    def test_builds_thermostat_controllers(self, bins):
        from repro.baselines import (
            ThermostatPolicy,
            ThermostatThresholdPolicy,
        )

        policy = ThermostatPolicy()
        controller = policy.build(bins)
        assert isinstance(controller, ThermostatThresholdPolicy)
        assert controller.thermostat is policy.config

    def test_is_a_comparable_value_object(self):
        from repro.baselines import ThermostatPolicy

        assert ThermostatPolicy() == ThermostatPolicy()
        assert "thermostat" in ThermostatPolicy().describe()
