"""Figure 8: CPU overhead of compression/decompression, per job and machine.

Paper: for 98 % of jobs, compression costs <= 0.01 % and on-demand
decompression <= 0.09 % of the job's CPU; per-machine medians are 0.005 %
(compression) and 0.001 % (decompression).  The headline: zswap's cycle
cost is negligible next to 20 % coverage.  We regenerate both CDFs and
verify the orders of magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    cpu_overhead_per_job,
    cpu_overhead_per_machine,
    render_table,
)
from repro.common.units import HOUR

ELAPSED = 8 * HOUR


def test_fig8_cpu_overhead(benchmark, paper_fleet, save_result):
    job_compress, job_decompress = benchmark(
        cpu_overhead_per_job, paper_fleet, ELAPSED
    )
    machine_compress, machine_decompress = cpu_overhead_per_machine(
        paper_fleet, ELAPSED
    )

    assert job_compress and machine_compress
    jc98 = float(np.percentile(job_compress, 98))
    jd98 = float(np.percentile(job_decompress, 98))
    mc50 = float(np.median(machine_compress))
    md50 = float(np.median(machine_decompress))

    # Order-of-magnitude checks against the paper's numbers: overheads are
    # small fractions of a percent, and machine-level medians are far
    # below the per-job p98 (pooling across jobs dilutes the overhead).
    assert jc98 < 0.5
    assert jd98 < 0.5
    assert mc50 < jc98 + 1e-12
    assert md50 < 0.1

    rows = [
        ("per-job compression p98", f"{jc98:.5f}", "0.01"),
        ("per-job decompression p98", f"{jd98:.5f}", "0.09"),
        ("per-machine compression p50", f"{mc50:.5f}", "0.005"),
        ("per-machine decompression p50", f"{md50:.5f}", "0.001"),
    ]
    save_result(
        "fig8_cpu_overhead",
        render_table(
            ["metric", "measured (% of CPU)", "paper (% of CPU)"],
            rows,
            title="Fig. 8 — zswap CPU overhead",
        ),
    )
