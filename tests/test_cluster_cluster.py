"""Cluster composition: job lifecycle, the tick loop, pressure eviction."""

import numpy as np
import pytest

from repro.common.rng import SeedSequenceFactory
from repro.common.units import MIB, PAGE_SIZE
from repro.cluster.cluster import Cluster
from repro.cluster.trace_db import TraceDatabase
from repro.core.threshold_policy import ThresholdPolicyConfig
from repro.kernel.compression import ContentProfile
from repro.kernel.machine import FarMemoryMode, MachineConfig
from repro.workloads.access_patterns import HeterogeneousPoissonPattern
from repro.workloads.job_generator import JobSpec


def quiet_pattern_factory(pages):
    """A pattern that touches a 10-page hot set every tick."""

    def factory(rng):
        rates = np.zeros(pages)
        rates[:10] = 1.0
        return HeterogeneousPoissonPattern(rates)

    return factory


def make_spec(job_id, pages=500, priority=1, duration=None):
    return JobSpec(
        job_id=job_id,
        pages=pages,
        cpu_cores=1.0,
        priority=priority,
        content_profile=ContentProfile(incompressible_fraction=0.0, min_ratio=1.5),
        pattern_factory=quiet_pattern_factory(pages),
        duration_seconds=duration,
    )


def make_cluster(n_machines=1, dram=64 * MIB, mode=FarMemoryMode.PROACTIVE,
                 warmup=60):
    return Cluster(
        name="c0",
        n_machines=n_machines,
        machine_config=MachineConfig(dram_bytes=dram, mode=mode),
        seeds=SeedSequenceFactory(17),
        policy_config=ThresholdPolicyConfig(percentile_k=90, warmup_seconds=warmup),
    )


class TestLifecycle:
    def test_submit_places_and_allocates(self):
        cluster = make_cluster()
        job = cluster.submit(make_spec("j"))
        machine = cluster.machines[0]
        assert "j" in machine.memcgs
        assert machine.memcgs["j"].resident_pages == 500

    def test_finish_releases_everything(self):
        cluster = make_cluster()
        cluster.submit(make_spec("j"))
        cluster.finish("j")
        assert cluster.running == {}
        assert cluster.machines[0].used_bytes == 0
        assert cluster.scheduler.placements == {}

    def test_expired_jobs_auto_finish(self):
        cluster = make_cluster()
        cluster.submit(make_spec("short", duration=120))
        cluster.submit(make_spec("long"))
        cluster.run(300)
        assert "short" not in cluster.running
        assert "long" in cluster.running

    def test_submit_all_skips_oversized(self):
        cluster = make_cluster(dram=4 * MIB)  # 1024 pages
        placed = cluster.submit_all([make_spec("fits", 500),
                                     make_spec("too-big", 5000)])
        assert [j.job_id for j in placed] == ["fits"]
        assert len(cluster.events.of_kind("cluster.admission_reject")) == 1


class TestTickLoop:
    def test_far_memory_accumulates(self):
        cluster = make_cluster()
        cluster.submit(make_spec("j"))
        cluster.run(1800)
        machine = cluster.machines[0]
        assert machine.far_pages > 0
        assert len(cluster.coverage_samples) > 0

    def test_telemetry_flows_to_db(self):
        cluster = make_cluster()
        cluster.submit(make_spec("j"))
        cluster.run(900)
        assert "j" in cluster.trace_db.job_ids

    def test_clock_advances(self):
        cluster = make_cluster()
        cluster.run(300)
        assert cluster.clock.now == 300


class TestPressureEviction:
    def test_overcommitted_machine_evicts_best_effort(self):
        # Overcommit heavily; decompression growth will exceed DRAM.
        cluster = Cluster(
            name="c0",
            n_machines=1,
            machine_config=MachineConfig(dram_bytes=4 * MIB),
            seeds=SeedSequenceFactory(17),
            policy_config=ThresholdPolicyConfig(percentile_k=90,
                                                warmup_seconds=60),
            overcommit=1.0,
        )
        cluster.submit(make_spec("a", 900, priority=0))
        cluster.submit(make_spec("b", 900, priority=2))
        # Even without compression this machine is over capacity: the
        # pressure loop must evict the best-effort job.
        cluster.run(300)
        assert "a" not in cluster.running
        assert "b" in cluster.running
        assert cluster.scheduler.evictions_total >= 1


class TestMetrics:
    def test_machine_cold_fractions(self):
        cluster = make_cluster()
        cluster.submit(make_spec("j"))
        cluster.run(600)
        fractions = cluster.machine_cold_fractions(120)
        assert len(fractions) == 1
        assert 0.0 <= fractions[0] <= 1.0

    def test_machine_coverages(self):
        cluster = make_cluster()
        cluster.submit(make_spec("j"))
        cluster.run(1800)
        coverages = cluster.machine_coverages()
        assert len(coverages) == 1
        assert coverages[0] > 0

    def test_deploy_policy_reaches_agents(self):
        cluster = make_cluster(n_machines=2)
        new = ThresholdPolicyConfig(percentile_k=75, warmup_seconds=30)
        cluster.deploy_policy(new)
        assert all(
            agent.policy_config.percentile_k == 75
            for agent in cluster.agents.values()
        )

    def test_drain_sli_samples(self):
        cluster = make_cluster()
        cluster.submit(make_spec("j"))
        cluster.run(600)
        samples = cluster.drain_sli_samples()
        assert samples
        assert cluster.drain_sli_samples() == []
