"""A cluster: machines + node agents + running jobs, driven tick by tick.

This is the composition root of the simulator (the paper's Fig. 4, scaled
to one cluster): every machine runs the kernel daemons, a node agent with
the §4.3 policy, and a telemetry exporter feeding the shared trace
database.  The cluster advances all of them on a common clock and handles
job lifecycle, memory-pressure eviction, and coverage sampling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.agent.node_agent import NodeAgent, SliSample
from repro.agent.telemetry import TelemetryExporter
from repro.common.errors import OutOfMemoryError, SchedulingError
from repro.common.events import EventKind, EventLog
from repro.common.rng import SeedSequenceFactory
from repro.common.simtime import DEFAULT_TICK_SECONDS, Clock, PeriodicSchedule
from repro.common.units import MIN_COLD_AGE_THRESHOLD
from repro.common.validation import check_positive
from repro.core.coverage import CoverageSample
from repro.core.histograms import AgeBins, default_age_bins
from repro.core.slo import PromotionRateSlo
from repro.core.threshold_policy import (
    ColdMemoryPolicy,
    ThresholdPolicyConfig,
    as_policy,
)
from repro.cluster.job import RunningJob
from repro.cluster.scheduler import BorgScheduler
from repro.cluster.trace_db import TraceDatabase
from repro.kernel.columnar import MachinePagePool
from repro.kernel.machine import FarMemoryMode, Machine, MachineConfig
from repro.obs import (
    MetricName,
    MetricRegistry,
    Tracer,
    get_registry,
    get_tracer,
)
from repro.workloads.job_generator import JobSpec

__all__ = ["Cluster"]

#: How often coverage samples are taken (seconds).
COVERAGE_SAMPLE_PERIOD = 300


class Cluster:
    """One named cluster of machines under a single scheduler.

    Args:
        name: cluster name (e.g. ``"cluster-00"``).
        n_machines: machines to create.
        machine_config: per-machine static parameters.
        seeds: RNG factory for all cluster randomness.
        trace_db: shared trace database (fleet telemetry sink).
        policy_config: what the node agents run — a deployable
            :class:`~repro.core.threshold_policy.ColdMemoryPolicy` or a
            bare :class:`ThresholdPolicyConfig` (coerced to the paper
            policy).
        slo: the promotion-rate SLO.
        bins: candidate-threshold grid; defaults to the paper grid.
        overcommit: scheduler memory overcommit fraction.
        placement: scheduler strategy ("best_fit" or "spread").
        pool_scope: with the columnar kernel, where the page pool lives —
            ``"machine"`` (default: each machine owns a private
            :class:`~repro.kernel.columnar.MachinePagePool`) or
            ``"cluster"`` (one pool shared by every machine; the cluster
            scans and reclaims all of them in single pooled sweeps,
            amortizing the per-machine numpy dispatch across the whole
            engine shard).  Bit-equivalent by contract; ignored for the
            scalar kernel.
        control_period: seconds between node-agent control rounds
            (default: one minute, the paper's cadence).  Dense
            simulation configs stretch it to trade SLI sampling
            resolution for wall-clock throughput.
        registry: metrics registry threaded to every machine, agent and
            exporter (defaults to the process-global one).  The cluster
            also bridges its event log into the registry: every recorded
            event increments ``repro_events_total{kind=...}``.
        tracer: span tracer, likewise threaded down (defaults to the
            process-global one).
    """

    def __init__(
        self,
        name: str,
        n_machines: int,
        machine_config: MachineConfig,
        seeds: SeedSequenceFactory,
        trace_db: Optional[TraceDatabase] = None,
        policy_config: Optional[object] = None,
        slo: Optional[PromotionRateSlo] = None,
        bins: Optional[AgeBins] = None,
        overcommit: float = 0.0,
        placement: str = "best_fit",
        pool_scope: str = "machine",
        control_period: Optional[int] = None,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        check_positive(n_machines, "n_machines")
        if pool_scope not in ("machine", "cluster"):
            raise ValueError(
                f'pool_scope must be "machine" or "cluster", got {pool_scope!r}'
            )
        self.name = name
        self.seeds = seeds
        self.bins = bins if bins is not None else default_age_bins()
        self.slo = slo if slo is not None else PromotionRateSlo()
        self.policy: ColdMemoryPolicy = as_policy(
            policy_config if policy_config is not None else ThresholdPolicyConfig()
        )
        self.trace_db = trace_db if trace_db is not None else TraceDatabase()
        self.events = EventLog(max_events=200_000)
        self.clock = Clock(tick_seconds=DEFAULT_TICK_SECONDS)
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()

        self._wire_event_bridge()

        #: Cluster-scoped columnar pool (None = per-machine pools or the
        #: scalar kernel).  Shared by every machine below; the cluster
        #: drives the pooled scan/reclaim passes from :meth:`tick`.
        self.pool: Optional[MachinePagePool] = None
        self._scan_schedule: Optional[PeriodicSchedule] = None
        if pool_scope == "cluster" and machine_config.kernel == "columnar":
            self.pool = MachinePagePool(self.bins, machine_config.scan_period)
            # Mirrors the schedule each machine's kstaled would follow, so
            # pooled scans land at exactly the per-machine scan instants.
            self._scan_schedule = PeriodicSchedule(machine_config.scan_period)

        self.machines: List[Machine] = [
            Machine(
                machine_id=f"{name}/m{i:04d}",
                config=machine_config,
                bins=self.bins,
                seeds=seeds.fork("machine", index=i),
                events=self.events,
                registry=self.registry,
                tracer=self.tracer,
                pool=self.pool,
            )
            for i in range(n_machines)
        ]
        self.scheduler = BorgScheduler(
            self.machines,
            overcommit=overcommit,
            strategy=placement,
            events=self.events,
        )
        agent_kwargs = {}
        if control_period is not None:
            agent_kwargs["control_period"] = control_period
        self.agents: Dict[str, NodeAgent] = {
            m.machine_id: NodeAgent(m, self.policy, self.slo,
                                    events=self.events,
                                    registry=self.registry, tracer=self.tracer,
                                    **agent_kwargs)
            for m in self.machines
        }
        self.exporters: Dict[str, TelemetryExporter] = {
            m.machine_id: TelemetryExporter(
                m,
                self.trace_db,
                cpu_lookup=self._cpu_of,
                slo=self.slo,
                events=self.events,
                registry=self.registry,
                tracer=self.tracer,
            )
            for m in self.machines
        }
        self.running: Dict[str, RunningJob] = {}
        #: Machines whose SLI telemetry is currently lost (e.g. the fault
        #: injector's sink outage).  Their agents keep controlling; the
        #: cluster just drops their samples on the floor at drain time, so
        #: monitors see a telemetry gap rather than stale late batches.
        self.sli_blocked_machines: set = set()
        self.coverage_samples: List[CoverageSample] = []
        self._next_coverage_sample = 0
        self._job_source = None
        self._target_population = 0
        self.fault_injector = None

    def _wire_event_bridge(self) -> None:
        """Bridge the event log into the registry (events -> counter).

        The subscription closure is process-local (EventLog drops
        subscribers on pickle), so this is called both at construction and
        from :meth:`rebind_runtime` after a cross-process move.
        """
        events_counter = self.registry.counter(
            MetricName.EVENTS_TOTAL,
            "Simulation events recorded, by event kind.", ("kind",)
        )
        self.events.subscribe(
            "", lambda event: events_counter.labels(kind=event.kind).inc()
        )

    def rebind_runtime(self, registry: MetricRegistry, tracer: Tracer,
                       trace_db: TraceDatabase) -> None:
        """Re-attach a cluster that crossed a process boundary.

        An unpickled cluster carries its own forked registry/tracer copies,
        an empty event-subscriber list, and a private trace database.  The
        parallel engine calls this after swapping worker clusters back into
        the parent fleet so every metric handle, span, subscription, and
        telemetry sink points at the parent's live objects again.
        """
        self.registry = registry
        self.tracer = tracer
        self.trace_db = trace_db
        # A cluster rebound *in place* (engine shard fallback) still has
        # its previous bridge subscribed; clear before re-wiring so events
        # are never double-counted.  Unpickled clusters arrive with an
        # empty subscriber list, so this is a no-op on the common path.
        self.events.clear_subscribers()
        self._wire_event_bridge()
        for machine in self.machines:
            machine.rebind_observability(registry, tracer)
        for agent in self.agents.values():
            agent.rebind_observability(registry, tracer)
        for exporter in self.exporters.values():
            exporter.rebind_observability(registry, tracer)
            exporter.sink = trace_db

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec) -> RunningJob:
        """Place and start a job; raises SchedulingError when full.

        If the chosen machine cannot physically back the allocation (it can
        be overcommitted), lower-priority jobs are evicted to make room —
        the paper's kill-and-reschedule escape hatch.  The submission fails
        only when eviction cannot help.
        """
        placement = self.scheduler.place(spec, self.clock.now)
        machine = self.scheduler.machines[placement.machine_id]
        while True:
            try:
                job = RunningJob(
                    spec,
                    machine,
                    self.seeds.fork("job", index=self._job_index(spec)),
                    start_time=self.clock.now,
                )
                break
            except OutOfMemoryError:
                if spec.job_id in machine.memcgs:
                    machine.remove_job(spec.job_id)
                victim = self.scheduler.evict_for_pressure(
                    placement.machine_id, self.clock.now
                )
                victim_job = self.running.pop(victim, None) if victim else None
                if victim_job is not None:
                    victim_job.stop()
                if victim is None or victim == spec.job_id:
                    raise SchedulingError(
                        f"machine {placement.machine_id} cannot back "
                        f"job {spec.job_id} even after eviction"
                    ) from None
        self.running[spec.job_id] = job
        return job

    def submit_all(self, specs: Sequence[JobSpec]) -> List[RunningJob]:
        """Submit many jobs; skips (and reports) the ones that don't fit."""
        placed = []
        for spec in specs:
            try:
                placed.append(self.submit(spec))
            except SchedulingError:
                self.events.record(
                    self.clock.now, EventKind.CLUSTER_ADMISSION_REJECT, job=spec.job_id
                )
        return placed

    def finish(self, job_id: str) -> None:
        """Stop a job and release its resources."""
        job = self.running.pop(job_id)
        job.stop()
        self.scheduler.remove(job_id, self.clock.now)

    def enable_churn(self, job_source, target_population: int) -> None:
        """Keep the cluster population at a target as jobs finish.

        Args:
            job_source: zero-argument callable returning a fresh
                :class:`JobSpec` (e.g. ``generator.next_job``).
            target_population: jobs to keep running; each tick, departed
                jobs are replaced (placement failures are skipped quietly
                and retried next tick).
        """
        check_positive(target_population, "target_population")
        self._job_source = job_source
        self._target_population = int(target_population)

    def _replenish(self) -> None:
        if self._job_source is None:
            return
        while len(self.running) < self._target_population:
            spec = self._job_source()
            try:
                self.submit(spec)
            except SchedulingError:
                self.events.record(
                    self.clock.now, EventKind.CLUSTER_REPLENISH_REJECT,
                    job=spec.job_id,
                )
                break

    def _job_index(self, spec: JobSpec) -> int:
        return abs(hash(spec.job_id)) & 0x7FFFFFFF

    def _cpu_of(self, job_id: str) -> float:
        try:
            return self.scheduler.spec_of(job_id).cpu_cores
        except SchedulingError:
            return 1.0

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------

    def attach_fault_injector(self, injector) -> None:
        """Install a :class:`repro.faults.FaultInjector` on this cluster.

        The injector fires inside :meth:`tick` — *before* jobs, daemons,
        agents, and exporters run — so faults land at the same simulated
        instant whether the cluster ticks in-process or inside a parallel
        engine worker.  That placement is what keeps chaos runs replayable
        bit-for-bit across execution modes.
        """
        self.fault_injector = injector
        injector.bind(self)

    def tick(self) -> None:
        """Advance one tick: jobs, daemons, agents, exporters, sampling."""
        now = self.clock.now

        with self.tracer.span("cluster.tick", sim_time=now):
            if self.fault_injector is not None:
                self.fault_injector.on_tick(self, now)
            for job_id in [
                j for j, job in self.running.items() if job.expired(now)
            ]:
                self.finish(job_id)
            self._replenish()

            for job in self.running.values():
                job.step(now, self.clock.tick_seconds)

            self._pooled_scan(now)
            for machine in self.machines:
                machine.tick(now)
                self._relieve_pressure(machine, now)

            if self.pool is None:
                for agent in self.agents.values():
                    agent.maybe_control(now)
            else:
                # Agents publish thresholds as usual but skip their
                # per-machine reclaim (Machine.run_reclaim no-ops on a
                # shared pool); one pooled pass then reclaims for every
                # machine that just controlled.
                controlled = [
                    machine
                    for machine in self.machines
                    if self.agents[machine.machine_id].maybe_control(now)
                ]
                self._pooled_reclaim(controlled)
            for exporter in self.exporters.values():
                exporter.maybe_export(now)

            if now >= self._next_coverage_sample:
                self._sample_coverage(now)
                self._next_coverage_sample = now + COVERAGE_SAMPLE_PERIOD

        self.clock.advance()

    def _pooled_scan(self, now: int) -> None:
        """One kstaled pass for the whole cluster (cluster-scoped pool).

        Equivalent to every machine scanning on its own tick — scans on
        different machines touch disjoint pool segments and each memcg
        draws from its own RNG stream, so hoisting them into one sweep
        changes neither results nor draw sequences.  Pages and CPU cost
        are booked back to each machine's kstaled so the per-machine
        counters and metrics match the scalar kernel exactly.
        """
        if self._scan_schedule is None or not self._scan_schedule.due(now):
            return
        memcgs = [
            memcg
            for machine in self.machines
            for memcg in machine.memcgs.values()
        ]
        with self.tracer.span("kstaled.scan", sim_time=now):
            self.pool.scan_all(memcgs)
        per_row = self.pool.last_scan_row_pages
        for machine in self.machines:
            pages = 0
            for memcg in machine.memcgs.values():
                pages += int(per_row[memcg._pool_row])
            machine.kstaled.record_scan(pages)

    def _pooled_reclaim(self, machines: List[Machine]) -> None:
        """One reclaim round for every machine whose agent just ran.

        Evaluates the shared pool's candidate mask once, then hands each
        machine's kreclaimd its own ``(memcg, candidates)`` slice —
        budgets, LRU ordering, compression, and metrics all stay
        per-machine, identical to each machine reclaiming alone.
        """
        eligible = [
            machine
            for machine in machines
            if machine.config.mode is FarMemoryMode.PROACTIVE
        ]
        if not eligible:
            return
        pairs = self.pool.reclaim_pairs(
            [m for machine in eligible for m in machine.memcgs.values()]
        )
        index = 0
        for machine in eligible:
            own = machine.memcgs
            mine = []
            while (
                index < len(pairs)
                and own.get(pairs[index][0].job_id) is pairs[index][0]
            ):
                mine.append(pairs[index])
                index += 1
            machine.kreclaimd.run(own.values(), pairs=mine)

    def run(self, seconds: int) -> None:
        """Run the cluster forward by ``seconds``."""
        check_positive(seconds, "seconds")
        end = self.clock.now + seconds
        while self.clock.now < end:
            self.tick()

    def fail_machine(self, machine_id: str) -> List[str]:
        """Simulate a machine crash: its jobs die and reschedule elsewhere.

        The paper's reliability argument for zswap is that compression
        confines the failure domain to one machine — this method is that
        failure.  Jobs are torn down (their far-memory copies vanish with
        the machine), recorded against the eviction SLO, and resubmitted
        to the remaining machines where capacity allows.

        Returns:
            Job ids that could not be rescheduled.
        """
        machine = self.scheduler.machines.get(machine_id)
        if machine is None:
            raise SchedulingError(f"unknown machine {machine_id}")
        victims = self.scheduler.jobs_on(machine_id)
        self.scheduler.mark_offline(machine_id)
        self.events.record(self.clock.now, EventKind.CLUSTER_MACHINE_FAILURE,
                           machine=machine_id, jobs=len(victims))
        unplaced: List[str] = []
        for job_id in victims:
            spec = self.scheduler.spec_of(job_id)
            job = self.running.pop(job_id, None)
            if job is not None:
                job.stop()
            self.scheduler.remove(job_id, self.clock.now)
            self.scheduler.eviction_slo.record(job_id, self.clock.now)
            # Resubmit under a restart name (job ids are unique per life).
            respawn = JobSpec(
                job_id=f"{spec.job_id}.r{self.clock.now}",
                pages=spec.pages,
                cpu_cores=spec.cpu_cores,
                priority=spec.priority,
                content_profile=spec.content_profile,
                pattern_factory=spec.pattern_factory,
                cold_fraction_target=spec.cold_fraction_target,
                duration_seconds=spec.duration_seconds,
            )
            try:
                self.submit(respawn)
            except SchedulingError:
                unplaced.append(job_id)
        return unplaced

    def eviction_slo_jobs(self) -> set:
        """Job ids with at least one recorded eviction."""
        return set(self.scheduler.eviction_slo.evictions)

    def repair_machine(self, machine_id: str) -> None:
        """Bring a failed machine back into the placement pool."""
        self.scheduler.mark_online(machine_id)
        self.events.record(self.clock.now, EventKind.CLUSTER_MACHINE_REPAIRED,
                           machine=machine_id)

    def _relieve_pressure(self, machine: Machine, now: int) -> None:
        """Evict best-effort jobs while a machine is over capacity."""
        while machine.free_bytes < 0:
            victim = self.scheduler.evict_for_pressure(machine.machine_id, now)
            if victim is None:
                break
            job = self.running.pop(victim, None)
            if job is not None:
                job.stop()

    def _sample_coverage(self, now: int) -> None:
        for machine in self.machines:
            self.coverage_samples.append(
                CoverageSample(
                    far_memory_pages=machine.far_pages,
                    cold_pages_at_min_threshold=machine.cold_pages(
                        MIN_COLD_AGE_THRESHOLD
                    ),
                    time=now,
                )
            )

    # ------------------------------------------------------------------
    # Control-plane management
    # ------------------------------------------------------------------

    @property
    def policy_config(self) -> object:
        """The deployed policy's tunables (the policy itself if it has none).

        Kept for the pre-seam spelling ``cluster.policy_config == config``:
        paper/fixed policies expose their :class:`ThresholdPolicyConfig`
        here, so config-level comparisons keep working unchanged.
        """
        return getattr(self.policy, "config", self.policy)

    def deploy_policy(self, policy: object) -> None:
        """Roll a new cold-memory policy to every node agent.

        Accepts either a deployable :class:`ColdMemoryPolicy` or a bare
        :class:`ThresholdPolicyConfig` (the paper policy with those
        tunables).  Per-job controller history carries over.
        """
        self.policy = as_policy(policy)
        for agent in self.agents.values():
            agent.set_policy(self.policy)

    def drain_sli_samples(self) -> List[SliSample]:
        """Collect and clear SLI samples from all agents.

        Samples from machines in :attr:`sli_blocked_machines` are drained
        but discarded — a telemetry outage loses data, it does not queue
        it for later delivery.
        """
        samples: List[SliSample] = []
        for machine_id, agent in self.agents.items():
            drained = agent.drain_sli_samples()
            if machine_id in self.sli_blocked_machines:
                continue
            samples.extend(drained)
        return samples

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def machine_cold_fractions(self, threshold_seconds: float) -> List[float]:
        """Per-machine cold memory share of used memory (Fig. 2)."""
        fractions = []
        for machine in self.machines:
            resident = sum(m.resident_pages for m in machine.memcgs.values())
            if resident == 0:
                continue
            fractions.append(machine.cold_pages(threshold_seconds) / resident)
        return fractions

    def machine_coverages(self) -> List[float]:
        """Per-machine instantaneous coverage (Fig. 6)."""
        coverages = []
        for machine in self.machines:
            cold = machine.cold_pages(MIN_COLD_AGE_THRESHOLD)
            if cold == 0:
                continue
            coverages.append(min(1.0, machine.far_pages / cold))
        return coverages
