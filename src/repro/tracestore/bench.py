"""The ``repro bench --trace`` harness behind ``BENCH_trace.json``.

Measures the columnar trace store end to end on a synthetic fleet:
ingest throughput (rows/s through ``append`` + segment sealing), segment
flush latency, and — the headline — replaying the same what-if batch two
ways from the same on-disk store:

* the **object path**: materialize every ``TraceEntry``, build
  ``JobTrace`` objects, compile, evaluate (what the in-memory database
  forces);
* the **columnar path**: ``CompiledTrace.from_columns`` straight from the
  on-disk columns, evaluate (no entry objects at all).

Both paths must produce bit-identical fleet reports (``equivalent``),
and the report carries the compile speedup and the peak-memory ratio
(columnar / object, tracemalloc peaks) — the number that shows a
simulated week of a large fleet fits where the object path would not.
"""

from __future__ import annotations

import json
import tempfile
import tracemalloc
from pathlib import Path
from typing import Dict, Optional, Union

from repro.common.validation import check_positive
from repro.core.slo import PromotionRateSlo
from repro.model.bench import bench_configs, synthetic_fleet_traces
from repro.model.replay import FarMemoryModel
from repro.obs import Stopwatch
from repro.tracestore.database import ColumnarTraceDatabase

__all__ = ["run_trace_bench"]


def _peak_bytes_during(fn):
    """Run ``fn`` under tracemalloc; returns (result, peak_bytes)."""
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def run_trace_bench(
    jobs: int = 24,
    intervals: int = 288,
    configs: int = 4,
    buffer_rows: int = 2048,
    seed: int = 17,
    root: Optional[Union[str, Path]] = None,
    output: Optional[Union[str, Path]] = None,
) -> Dict:
    """Benchmark the columnar store against the object path.

    Args:
        jobs: synthetic fleet size (one trace per job).
        intervals: 5-minute periods per trace (288 = one day).
        configs: candidate configurations in the what-if batch.
        buffer_rows: store write-buffer size; the default seals several
            segments at the default workload shape so flush latency is
            actually exercised.
        seed: trace-generation seed.
        root: store directory (default: a temporary directory, removed
            afterwards).
        output: when given, the report is also written there as JSON
            (conventionally ``BENCH_trace.json``).

    Returns:
        The report dict; ``equivalent`` is True iff both replay paths
        returned bit-identical fleet reports, and ``peak_mem_ratio``
        below 1.0 means the columnar path peaked lower.
    """
    check_positive(jobs, "jobs")
    check_positive(intervals, "intervals")
    check_positive(configs, "configs")
    tmpdir: Optional[tempfile.TemporaryDirectory] = None
    if root is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-tracebench-")
        root = Path(tmpdir.name) / "store"
    try:
        traces = synthetic_fleet_traces(jobs, intervals, seed)
        batch = bench_configs(configs)
        slo = PromotionRateSlo()

        # Ingest: every entry through the TraceSink surface.
        db = ColumnarTraceDatabase(root, buffer_rows=buffer_rows)
        with Stopwatch() as ingest_watch:
            for trace in traces:
                for entry in trace.entries:
                    db.add(entry)
            db.flush()
        store = db.store
        rows = store.rows_total

        # Object path: disk -> TraceEntry objects -> JobTrace -> compile.
        def _object_path():
            with Stopwatch() as compile_watch:
                materialized = db.traces()
                model = FarMemoryModel(materialized, slo)
                model.compiled_traces
            with model, Stopwatch() as eval_watch:
                reports = model.evaluate_many(batch)
            return reports, compile_watch.seconds, eval_watch.seconds

        (obj_reports, obj_compile, obj_eval), obj_peak = _peak_bytes_during(
            _object_path
        )

        # Columnar path: disk -> CompiledTrace.from_columns -> evaluate.
        def _columnar_path():
            with Stopwatch() as compile_watch:
                compiled = db.compiled_traces()
                model = FarMemoryModel(compiled, slo)
            with model, Stopwatch() as eval_watch:
                reports = model.evaluate_many(batch)
            return reports, compile_watch.seconds, eval_watch.seconds

        (col_reports, col_compile, col_eval), col_peak = _peak_bytes_during(
            _columnar_path
        )

        equivalent = obj_reports == col_reports
        report = {
            "workload": {
                "jobs": jobs,
                "intervals": intervals,
                "configs": configs,
                "buffer_rows": buffer_rows,
                "seed": seed,
            },
            "ingest": {
                "rows": rows,
                "wall_seconds": round(ingest_watch.seconds, 4),
                "rows_per_second": (
                    round(rows / ingest_watch.seconds, 1)
                    if ingest_watch.seconds > 0
                    else 0.0
                ),
            },
            "flush": {
                "segments": store.flush_count,
                "bytes_written": store.bytes_written,
                "mean_seconds": (
                    round(store.flush_seconds_total / store.flush_count, 5)
                    if store.flush_count
                    else 0.0
                ),
                "last_seconds": round(store.last_flush_seconds, 5),
            },
            "object_path": {
                "compile_wall_seconds": round(obj_compile, 4),
                "evaluate_wall_seconds": round(obj_eval, 4),
                "peak_bytes": obj_peak,
            },
            "columnar_path": {
                "compile_wall_seconds": round(col_compile, 4),
                "evaluate_wall_seconds": round(col_eval, 4),
                "peak_bytes": col_peak,
            },
            "compile_speedup": (
                round(obj_compile / col_compile, 2) if col_compile > 0 else None
            ),
            "peak_mem_ratio": (
                round(col_peak / obj_peak, 3) if obj_peak > 0 else None
            ),
            "equivalent": equivalent,
        }
        if output is not None:
            Path(output).write_text(
                json.dumps(report, indent=2) + "\n", encoding="utf-8"
            )
        return report
    finally:
        if tmpdir is not None:
            tmpdir.cleanup()
