"""Fleet job-mix generation: heterogeneity, determinism, Fig. 3 shape."""

import numpy as np
import pytest

from repro.common.rng import SeedSequenceFactory
from repro.workloads.content import CONTENT_PROFILES, profile_for
from repro.workloads.job_generator import FleetMixGenerator, JobSpec


@pytest.fixture
def generator(seeds):
    return FleetMixGenerator(seeds=seeds)


class TestJobSpec:
    def test_bytes_property(self):
        spec = JobSpec(
            job_id="j",
            pages=1000,
            cpu_cores=2.0,
            priority=1,
            content_profile=CONTENT_PROFILES["mixed"],
            pattern_factory=lambda rng: None,
        )
        assert spec.bytes == 1000 * 4096

    def test_validation(self):
        with pytest.raises(Exception):
            JobSpec(
                job_id="j",
                pages=0,
                cpu_cores=1.0,
                priority=0,
                content_profile=CONTENT_PROFILES["mixed"],
                pattern_factory=lambda rng: None,
            )


class TestFleetMix:
    def test_unique_sequential_ids(self, generator):
        specs = generator.generate(10)
        assert len({s.job_id for s in specs}) == 10

    def test_deterministic_for_seed(self):
        a = FleetMixGenerator(seeds=SeedSequenceFactory(7)).generate(5)
        b = FleetMixGenerator(seeds=SeedSequenceFactory(7)).generate(5)
        assert [s.pages for s in a] == [s.pages for s in b]
        assert [s.cold_fraction_target for s in a] == [
            s.cold_fraction_target for s in b
        ]

    def test_sizes_within_bounds(self, generator):
        specs = generator.generate(100)
        assert all(
            generator.min_pages <= s.pages <= generator.max_pages for s in specs
        )

    def test_cold_fraction_mean_near_paper(self, seeds):
        generator = FleetMixGenerator(seeds=seeds, mean_cold_fraction=0.32)
        targets = [s.cold_fraction_target for s in generator.generate(500)]
        assert np.mean(targets) == pytest.approx(0.32, abs=0.04)

    def test_cold_fraction_deciles_match_fig3(self, seeds):
        """Fig. 3: top decile >= ~43% cold, bottom decile < ~9%."""
        generator = FleetMixGenerator(seeds=seeds, mean_cold_fraction=0.32)
        targets = [s.cold_fraction_target for s in generator.generate(1000)]
        p10, p90 = np.percentile(targets, [10, 90])
        assert p90 >= 0.43
        assert p10 <= 0.15

    def test_priorities_spread(self, generator):
        priorities = {s.priority for s in generator.generate(100)}
        assert priorities == {0, 1, 2}

    def test_patterns_buildable(self, generator, rng):
        for spec in generator.generate(10):
            pattern = spec.pattern_factory(rng)
            reads, writes = pattern.step(0, 60, rng)
            if reads.size:
                assert reads.max() < spec.pages


class TestContentProfiles:
    def test_profile_lookup(self):
        assert profile_for("text").median_ratio == 4.0

    def test_unknown_kind_lists_known(self):
        with pytest.raises(KeyError, match="multimedia"):
            profile_for("nope")

    def test_multimedia_mostly_incompressible(self):
        assert CONTENT_PROFILES["multimedia"].incompressible_fraction > 0.5

    def test_fleet_mixture_lands_near_31_percent(self, seeds, rng):
        """The job-kind mixture should produce ~31% incompressible cold
        pages fleet-wide (Fig. 9a's excluded share)."""
        from repro.common.units import ZSMALLOC_MAX_PAYLOAD

        generator = FleetMixGenerator(seeds=seeds)
        rejected = 0
        total = 0
        for spec in generator.generate(300):
            payloads = spec.content_profile.sample_payload_bytes(200, rng)
            rejected += int((payloads > ZSMALLOC_MAX_PAYLOAD).sum())
            total += payloads.size
        assert rejected / total == pytest.approx(0.31, abs=0.08)
