"""Randomized property tests: the columnar kernel vs the scalar oracle.

The columnar backend (:mod:`repro.kernel.columnar`) promises
*bit-equivalence* with the scalar kernel: pooled scan, pooled reclaim,
promotion, huge-page propagation, churn and compaction must all produce
exactly the per-page state, histograms, and daemon counters the scalar
kernel produces.  These tests drive both backends through identical
randomized operation scripts — at machine scope and at cluster scope
(one shared pool, scanned and reclaimed the way ``Cluster`` drives it) —
and assert full-state equality along the way.  A chaos scenario at the
engine level checks the same property end to end.

Two helper contracts promised elsewhere are property-tested here too:
``_sorted_percentile`` is bit-identical to ``np.percentile`` and the
zsmalloc arena's running totals always match a fresh per-class recount.
"""

import math
import pickle

import numpy as np
import pytest

from repro.cluster.wsc import quickfleet
from repro.common.rng import SeedSequenceFactory
from repro.common.simtime import PeriodicSchedule
from repro.common.units import MIB, PAGE_SIZE
from repro.core.threshold_policy import _sorted_percentile
from repro.faults import attach_scenario
from repro.kernel.columnar import _NEVER_SCANS, MachinePagePool
from repro.kernel.compression import ContentProfile
from repro.kernel.machine import FarMemoryMode, Machine, MachineConfig
from repro.kernel.memcg import PageState
from repro.kernel.zsmalloc import ZsmallocArena
from repro.obs import MetricRegistry, Tracer

SCAN_PERIOD = 120
PAGES_PER_HUGE = 8

#: Mildly incompressible, mildly compressible: exercises both the
#: incompressible-skip and the payload-resample paths.
_PROFILE = ContentProfile(incompressible_fraction=0.15, min_ratio=1.3)

_THRESHOLDS = (120.0, 240.0, 480.0, 960.0, float("inf"))

_PAGE_ATTRS = (
    "resident", "age_scans", "accessed", "state", "incompressible",
    "dirtied", "unevictable", "payload_bytes", "lru_active", "huge_group",
)


def _make_machine(kernel, index, seed, shared_pool=None, dram=64 * MIB):
    """A machine whose RNG streams depend only on (index, seed), so a
    scalar machine and its columnar twin draw identical sequences."""
    config = MachineConfig(
        dram_bytes=dram,
        mode=FarMemoryMode.PROACTIVE,
        kernel=kernel,
        scan_period=SCAN_PERIOD,
    )
    return Machine(
        f"m{index}",
        config,
        seeds=SeedSequenceFactory(seed * 1000 + index),
        registry=MetricRegistry(),
        tracer=Tracer(),
        pool=shared_pool,
    )


def _memcg_state(memcg):
    """Every per-page column plus histograms and counters, as a
    comparable value (bytes, so dtype differences would also fail)."""
    arrays = tuple(
        np.asarray(getattr(memcg, attr)).tobytes() for attr in _PAGE_ATTRS
    )
    return arrays + (
        tuple(int(c) for c in memcg.cold_age_histogram.counts),
        int(memcg.cold_age_histogram.young_count),
        tuple(int(c) for c in memcg.promotion_histogram.counts),
        int(memcg.promotion_histogram.young_count),
        int(memcg.promo_hist_events),
        int(memcg.resident_pages),
        int(memcg.far_pages),
        float(memcg.cold_age_threshold),
        bool(memcg.zswap_enabled),
    )


def _machine_state(machine):
    return {
        "jobs": {
            job_id: _memcg_state(memcg)
            for job_id, memcg in machine.memcgs.items()
        },
        "far_pages": machine.far_pages,
        "used_bytes": machine.used_bytes,
        "pages_scanned": machine.kstaled.pages_scanned,
        "scans_completed": machine.kstaled.scans_completed,
        "reclaim_runs": machine.kreclaimd.runs,
        "pages_reclaimed": machine.kreclaimd.pages_reclaimed,
        "arena": machine.arena.stats(),
    }


class _Backend:
    """A list of machines ticked and reclaimed the standalone way
    (each machine drives its own kstaled/kreclaimd — the scalar kernel
    and the columnar kernel with private per-machine pools)."""

    def __init__(self, machines):
        self.machines = machines

    def tick(self, now):
        for machine in self.machines:
            machine.tick(now)

    def reclaim(self):
        for machine in self.machines:
            machine.run_reclaim()

    def state(self):
        return [_machine_state(machine) for machine in self.machines]


class _PooledBackend(_Backend):
    """Machines sharing one cluster-scoped pool, driven exactly the way
    ``Cluster._pooled_scan`` / ``Cluster._pooled_reclaim`` drive them:
    one pool-wide scan booked back per machine, one pool-wide candidate
    mask sliced back to each machine's kreclaimd."""

    def __init__(self, machines, pool):
        super().__init__(machines)
        self.pool = pool
        self._schedule = PeriodicSchedule(SCAN_PERIOD)

    def tick(self, now):
        if self._schedule.due(now):
            memcgs = [
                memcg
                for machine in self.machines
                for memcg in machine.memcgs.values()
            ]
            self.pool.scan_all(memcgs)
            per_row = self.pool.last_scan_row_pages
            for machine in self.machines:
                pages = sum(
                    int(per_row[memcg._pool_row])
                    for memcg in machine.memcgs.values()
                )
                machine.kstaled.record_scan(pages)
        for machine in self.machines:
            machine.tick(now)

    def reclaim(self):
        pairs = self.pool.reclaim_pairs(
            [
                memcg
                for machine in self.machines
                for memcg in machine.memcgs.values()
            ]
        )
        index = 0
        for machine in self.machines:
            own = machine.memcgs
            mine = []
            while (
                index < len(pairs)
                and own.get(pairs[index][0].job_id) is pairs[index][0]
            ):
                mine.append(pairs[index])
                index += 1
            machine.kreclaimd.run(own.values(), pairs=mine)


def _apply_random_ops(rng, oracle, candidate, steps):
    """One random op script applied to both backends simultaneously.

    Every state-dependent draw (which pages to release, where a huge
    mapping fits) reads the *oracle's* state; because the backends are
    bit-equivalent the script is equally valid for the candidate — and
    if they ever diverge, the periodic full-state comparison fails.
    """
    fleets = (oracle, candidate)
    n_machines = len(oracle.machines)
    now = 0
    next_job = 0
    for step in range(steps):
        mi = int(rng.integers(n_machines))
        target = oracle.machines[mi]
        jobs = sorted(target.memcgs)
        op = int(rng.integers(10))
        if op == 0 or not jobs:
            cap = int(rng.integers(32, 129))
            pages = int(rng.integers(1, cap + 1))
            job = f"m{mi}-j{next_job}"
            next_job += 1
            for fleet in fleets:
                fleet.machines[mi].add_job(job, cap, _PROFILE)
                fleet.machines[mi].allocate(job, pages)
        elif op == 1:
            job = jobs[int(rng.integers(len(jobs)))]
            for fleet in fleets:
                fleet.machines[mi].remove_job(job)
        elif op == 2:
            job = jobs[int(rng.integers(len(jobs)))]
            memcg = target.memcgs[job]
            free = memcg.capacity_pages - memcg.resident_pages
            if free:
                pages = int(rng.integers(1, free + 1))
                for fleet in fleets:
                    fleet.machines[mi].allocate(job, pages)
        elif op in (3, 4):
            job = jobs[int(rng.integers(len(jobs)))]
            resident = np.flatnonzero(target.memcgs[job].resident)
            if resident.size:
                take = np.sort(rng.choice(
                    resident,
                    size=int(rng.integers(1, resident.size + 1)),
                    replace=False,
                ))
                if op == 3:
                    for fleet in fleets:
                        fleet.machines[mi].release(job, take)
                else:
                    write = bool(rng.integers(2))
                    for fleet in fleets:
                        fleet.machines[mi].touch(job, take, write=write)
        elif op == 5:
            job = jobs[int(rng.integers(len(jobs)))]
            threshold = float(_THRESHOLDS[int(rng.integers(len(_THRESHOLDS)))])
            for fleet in fleets:
                fleet.machines[mi].memcgs[job].cold_age_threshold = threshold
        elif op == 6:
            job = jobs[int(rng.integers(len(jobs)))]
            enabled = not target.memcgs[job].zswap_enabled
            for fleet in fleets:
                fleet.machines[mi].memcgs[job].zswap_enabled = enabled
        elif op == 7:
            job = jobs[int(rng.integers(len(jobs)))]
            memcg = target.memcgs[job]
            starts = [
                s
                for s in range(
                    0, memcg.capacity_pages - PAGES_PER_HUGE + 1,
                    PAGES_PER_HUGE,
                )
                if memcg.resident[s:s + PAGES_PER_HUGE].all()
                and (memcg.state[s:s + PAGES_PER_HUGE]
                     == PageState.NEAR).all()
                and (memcg.huge_group[s:s + PAGES_PER_HUGE] == -1).all()
            ]
            if starts:
                start = starts[int(rng.integers(len(starts)))]
                for fleet in fleets:
                    fleet.machines[mi].memcgs[job].map_huge(
                        start, PAGES_PER_HUGE
                    )
            else:
                groups = np.unique(memcg.huge_group[memcg.huge_group >= 0])
                if groups.size:
                    group = int(groups[int(rng.integers(groups.size))])
                    for fleet in fleets:
                        fleet.machines[mi].memcgs[job].split_huge(group)
        elif op == 8:
            for _ in range(int(rng.integers(1, 4))):
                now += 60
                for fleet in fleets:
                    fleet.tick(now)
        else:
            for fleet in fleets:
                fleet.reclaim()
        if step % 10 == 0:
            assert candidate.state() == oracle.state(), f"diverged at {step}"
    assert candidate.state() == oracle.state()


class TestRandomizedEquivalence:
    """Columnar == scalar over randomized operation mixes."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_machine_scope(self, seed):
        rng = np.random.default_rng(seed)
        oracle = _Backend([_make_machine("scalar", 0, seed)])
        candidate = _Backend([_make_machine("columnar", 0, seed)])
        _apply_random_ops(rng, oracle, candidate, steps=120)

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_cluster_scope(self, seed):
        rng = np.random.default_rng(seed)
        oracle = _Backend(
            [_make_machine("scalar", i, seed) for i in range(2)]
        )
        scalars = oracle.machines
        pool = MachinePagePool(scalars[0].bins, SCAN_PERIOD)
        candidate = _PooledBackend(
            [
                _make_machine("columnar", i, seed, shared_pool=pool)
                for i in range(2)
            ],
            pool,
        )
        _apply_random_ops(rng, oracle, candidate, steps=100)


class TestThresholdMirroring:
    """The ColumnarMemCg property setters keep ``row_reclaim_thr`` in
    sync — the pooled reclaim mask never walks memcgs to gather gates."""

    def _machine(self):
        return _make_machine("columnar", 0, 9)

    def test_threshold_encodes_in_scans(self):
        machine = self._machine()
        memcg = machine.add_job("j", 64, _PROFILE)
        memcg.cold_age_threshold = 600.0
        row = memcg._pool_row
        assert machine.pool.row_reclaim_thr[row] == math.ceil(
            600.0 / SCAN_PERIOD
        )

    def test_disabled_zswap_is_the_never_sentinel(self):
        machine = self._machine()
        memcg = machine.add_job("j", 64, _PROFILE)
        memcg.cold_age_threshold = 600.0
        row = memcg._pool_row
        memcg.zswap_enabled = False
        assert machine.pool.row_reclaim_thr[row] == _NEVER_SCANS
        memcg.zswap_enabled = True
        assert machine.pool.row_reclaim_thr[row] == math.ceil(
            600.0 / SCAN_PERIOD
        )

    def test_infinite_threshold_is_the_never_sentinel(self):
        machine = self._machine()
        memcg = machine.add_job("j", 64, _PROFILE)
        memcg.cold_age_threshold = float("inf")
        assert (
            machine.pool.row_reclaim_thr[memcg._pool_row] == _NEVER_SCANS
        )


class TestPoolCompaction:
    """Removing a memcg compacts the pool and freezes the departing
    memcg's state as private copies."""

    def test_remove_middle_job_compacts_and_detaches(self):
        machine = _make_machine("columnar", 0, 10)
        for job, cap in (("a", 32), ("b", 48), ("c", 16)):
            machine.add_job(job, cap, _PROFILE)
            machine.allocate(job, cap)
        pool = machine.pool
        departing = machine.memcgs["b"]
        machine.remove_job("b")
        assert departing._pool is None
        assert departing.resident.base is None  # owns private copies now
        frozen = departing.resident.copy()
        assert pool.used == 32 + 16
        for job in ("a", "c"):
            memcg = machine.memcgs[job]
            assert memcg.resident.base is pool.resident  # still a view
            assert memcg.resident.all()
        # Later pool activity cannot disturb the frozen snapshot.
        machine.add_job("d", 64, _PROFILE)
        machine.allocate("d", 64)
        assert (departing.resident == frozen).all()


class TestChaosReplay:
    """A mixed chaos scenario replays identically under every backend:
    same coverage report, same SLI history, sample for sample."""

    def test_mixed_scenario_identical_across_backends(self):
        snapshots = []
        for kernel, scope in (
            ("scalar", "machine"),
            ("columnar", "machine"),
            ("columnar", "cluster"),
        ):
            fleet = quickfleet(
                clusters=1,
                machines_per_cluster=3,
                jobs_per_machine=6,
                seed=11,
                machine_dram_gib=0.5,
                job_pages_range=(
                    (1 * MIB) // PAGE_SIZE, (4 * MIB) // PAGE_SIZE
                ),
                kernel=kernel,
                pool_scope=scope,
                scan_period=60,
                churn_duration_range=(1800, 5400),
                registry=MetricRegistry(),
                tracer=Tracer(),
            )
            attach_scenario(fleet, "mixed", duration_seconds=7200, seed=7)
            fleet.run(7200)
            sli = tuple(
                (s.job_id, s.time, s.working_set_pages, s.promotions,
                 s.normalized_rate_pct_per_min, s.threshold)
                for s in fleet.sli_history
            )
            snapshots.append((fleet.coverage_report(), sli))
        assert len(snapshots[0][1]) > 0
        assert snapshots[1] == snapshots[0]
        assert snapshots[2] == snapshots[0]


class TestSharedPoolPickle:
    """The parallel engine ships clusters by pickle; a cluster-scoped
    pool must rebind its memcg views exactly once on arrival and the
    clone must continue bit-identically."""

    def _fleet(self):
        return quickfleet(
            clusters=1,
            machines_per_cluster=3,
            jobs_per_machine=4,
            seed=5,
            machine_dram_gib=0.5,
            kernel="columnar",
            pool_scope="cluster",
            scan_period=60,
            registry=MetricRegistry(),
            tracer=Tracer(),
        )

    def test_unpickle_rebinds_shared_pool_once(self):
        fleet = self._fleet()
        fleet.run(1800)
        blob = pickle.dumps(fleet.clusters[0])
        calls = []
        original = MachinePagePool.rebind_all

        def counting(self):
            calls.append(self)
            return original(self)

        MachinePagePool.rebind_all = counting
        try:
            clone = pickle.loads(blob)
        finally:
            MachinePagePool.rebind_all = original
        assert len(calls) == 1  # one pool, many machines: one rebind
        pool = clone.machines[0].pool
        assert all(machine.pool is pool for machine in clone.machines)
        for machine in clone.machines:
            for memcg in machine.memcgs.values():
                assert memcg.resident.base is pool.resident

    def test_clone_continues_identically(self):
        fleet = self._fleet()
        fleet.run(1800)
        cluster = fleet.clusters[0]
        clone = pickle.loads(pickle.dumps(cluster))
        cluster.run(1800)
        clone.run(1800)
        for machine, twin in zip(cluster.machines, clone.machines):
            assert _machine_state(twin) == _machine_state(machine)


class TestSortedPercentile:
    """``_sorted_percentile`` reimplements numpy's default linear
    interpolation bit-identically (the docstring's promise)."""

    def test_matches_numpy_on_randomized_inputs(self):
        rng = np.random.default_rng(123)
        for _ in range(300):
            n = int(rng.integers(1, 40))
            values = np.sort(rng.uniform(-1000.0, 1000.0, n))
            k = float(rng.uniform(0.0, 100.0))
            assert _sorted_percentile(values.tolist(), k) == float(
                np.percentile(values, k)
            )

    @pytest.mark.parametrize("k", [0.0, 25.0, 50.0, 75.0, 98.0, 100.0])
    def test_matches_numpy_at_grid_points(self, k):
        values = [1.0, 1.0, 2.0, 3.5, 3.5, 3.5, 10.0]
        assert _sorted_percentile(values, k) == float(
            np.percentile(values, k)
        )

    def test_single_element(self):
        assert _sorted_percentile([42.0], 63.0) == 42.0


class TestArenaRecount:
    """The zsmalloc arena's O(1) running totals always agree with a
    fresh per-class recount (the docstring's promise), under randomized
    store/release/compact mixes."""

    def test_running_totals_match_recount(self):
        rng = np.random.default_rng(7)
        arena = ZsmallocArena(registry=MetricRegistry(), tracer=Tracer())
        live = []
        for _ in range(200):
            op = int(rng.integers(3))
            if op == 0 or not live:
                payloads = rng.integers(
                    1, PAGE_SIZE + 1, int(rng.integers(1, 64))
                )
                arena.store(payloads)
                live.extend(int(p) for p in payloads)
            elif op == 1:
                take = rng.choice(
                    len(live),
                    size=int(rng.integers(1, len(live) + 1)),
                    replace=False,
                )
                arena.release(np.array([live[i] for i in take]))
                for i in sorted(take, reverse=True):
                    live.pop(i)
            else:
                arena.compact()
            assert arena.stats() == arena.recounted_stats()
