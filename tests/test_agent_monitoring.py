"""SLI monitoring and alerting."""

import pytest

from repro.agent.monitoring import Alert, AlertRule, SliWindow, SloMonitor
from repro.agent.node_agent import SliSample


def sample(time, rate, job="j", wss=1000):
    return SliSample(
        time=time,
        job_id=job,
        promotions=int(rate * wss / 100),
        working_set_pages=wss,
        normalized_rate_pct_per_min=rate,
        threshold=120.0,
    )


class TestSliWindow:
    def test_eviction_by_age(self):
        window = SliWindow(window_seconds=600)
        window.extend([sample(t, 0.1) for t in range(0, 1200, 60)])
        assert len(window) == 11  # t in [540, 1140]

    def test_percentile(self):
        window = SliWindow()
        window.extend([sample(i, float(i)) for i in range(100)])
        assert window.percentile(50) == pytest.approx(49.5)

    def test_violation_fraction(self):
        window = SliWindow()
        window.extend([sample(0, 0.1), sample(1, 0.3), sample(2, 0.5)])
        assert window.violation_fraction(0.2) == pytest.approx(2 / 3)

    def test_empty_wss_samples_ignored(self):
        window = SliWindow()
        window.extend([sample(0, 5.0, wss=0)])
        assert window.rates().size == 0
        assert window.percentile(98) == 0.0

    def test_out_of_order_samples_are_sorted(self):
        window = SliWindow(window_seconds=600)
        # Two machines drained together: their clocks interleave.
        window.extend([sample(120, 0.2), sample(0, 0.1), sample(60, 0.3)])
        assert [s.time for s in window._samples] == [0, 60, 120]
        assert len(window) == 3

    def test_out_of_order_eviction_matches_in_order(self):
        in_order = SliWindow(window_seconds=600)
        shuffled = SliWindow(window_seconds=600)
        samples = [sample(t, 0.1) for t in range(0, 1200, 60)]
        in_order.extend(samples)
        shuffled.extend(samples[10:] + samples[:10])
        assert [s.time for s in shuffled._samples] == [
            s.time for s in in_order._samples
        ]

    def test_late_sample_within_window_is_kept(self):
        window = SliWindow(window_seconds=600)
        window.extend([sample(1000, 0.1)])
        window.extend([sample(700, 0.5)])  # late but inside the window
        assert len(window) == 2
        window.extend([sample(100, 0.9)])  # late and already expired
        assert [s.time for s in window._samples] == [700, 1000]


class TestSloMonitor:
    def test_healthy_under_slo(self):
        monitor = SloMonitor(slo_limit=0.2)
        samples = [sample(t, 0.05) for t in range(0, 3600, 60)]
        assert monitor.observe(3600, samples) == []
        assert monitor.healthy

    def test_p98_alert_fires(self):
        monitor = SloMonitor(slo_limit=0.2)
        samples = [sample(t, 1.0) for t in range(0, 3600, 60)]
        fired = monitor.observe(3600, samples)
        assert any(a.rule == "p98-over-slo" for a in fired)
        assert not monitor.healthy

    def test_violation_fraction_alert(self):
        monitor = SloMonitor(slo_limit=0.2)
        # 10% of minutes violate: p98 can be fine, fraction rule fires.
        samples = [
            sample(t, 0.5 if i % 10 == 0 else 0.01)
            for i, t in enumerate(range(0, 7200, 60))
        ]
        fired = monitor.observe(7200, samples)
        assert any(a.rule == "violation-fraction" for a in fired)

    def test_min_samples_suppresses_startup_noise(self):
        monitor = SloMonitor(slo_limit=0.2)
        fired = monitor.observe(60, [sample(0, 99.0)])
        assert fired == []  # only 1 sample < min_samples

    def test_custom_rule(self):
        rule = AlertRule(
            name="median-drift",
            evaluate=lambda w: w.percentile(50),
            limit=0.1,
            min_samples=2,
        )
        monitor = SloMonitor(rules=[rule])
        fired = monitor.observe(120, [sample(0, 0.5), sample(60, 0.5)])
        assert [a.rule for a in fired] == ["median-drift"]

    def test_alert_history_accumulates(self):
        monitor = SloMonitor(slo_limit=0.01)
        bad = [sample(t, 1.0) for t in range(0, 3600, 60)]
        monitor.observe(3600, bad)
        monitor.observe(7200, [sample(t, 1.0) for t in range(3600, 7200, 60)])
        assert len(monitor.alerts) >= 2

    def test_empty_rules_rejected(self):
        with pytest.raises(Exception):
            SloMonitor(rules=[])


class TestIngestionAccounting:
    """`samples_ingested` is the coverage evidence canaries gate on."""

    def test_counts_every_observed_sample(self):
        monitor = SloMonitor(window_seconds=600)
        monitor.observe(600, [sample(t, 0.1) for t in range(0, 600, 60)])
        monitor.observe(1200, [sample(t, 0.1) for t in range(600, 1200, 60)])
        assert monitor.samples_ingested == 20

    def test_counts_survive_window_eviction(self):
        # Eviction trims the window, not the evidence that telemetry
        # arrived — the fail-closed canary gate relies on that.
        monitor = SloMonitor(window_seconds=60)
        monitor.observe(3600, [sample(t, 0.1) for t in range(0, 3600, 60)])
        assert len(monitor.window) < 60
        assert monitor.samples_ingested == 60

    def test_zero_ingestion_is_distinguishable_from_healthy(self):
        # The empty window reports percentile 0.0 and `healthy` True —
        # the vacuous pass.  The counter is what tells the two apart.
        monitor = SloMonitor(window_seconds=600)
        monitor.observe(600, [])
        assert monitor.healthy
        assert monitor.samples_ingested == 0
