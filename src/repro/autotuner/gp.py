"""Gaussian-process regression, from scratch.

Exact GP regression with a Gaussian likelihood: Cholesky factorization of
``K + sigma_n^2 I``, predictive mean/variance, log marginal likelihood, and
simple multi-start hyperparameter optimization (lengthscales, signal
variance, noise) by maximizing the marginal likelihood with scipy.

Targets are standardized internally so hyperpriors and initializations are
scale-free; predictions are mapped back to the original units.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import optimize
from scipy.linalg import cho_factor, cho_solve, cholesky

from repro.common.errors import AutotunerError
from repro.common.validation import check_positive, require
from repro.autotuner.kernels import Kernel, Matern52Kernel

__all__ = ["GaussianProcess"]

#: Jitter added to the diagonal for numerical stability.
JITTER = 1e-8


class GaussianProcess:
    """Exact GP regression model.

    Args:
        kernel: covariance function (default Matérn-5/2, unit scales).
        noise_variance: Gaussian observation-noise variance (in
            standardized-target units).
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise_variance: float = 1e-4,
    ):
        check_positive(noise_variance, "noise_variance")
        self.kernel = kernel if kernel is not None else Matern52Kernel(0.2)
        self.noise_variance = float(noise_variance)
        self._x: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._alpha: Optional[np.ndarray] = None
        self._chol = None

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._alpha is not None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        optimize_hyperparameters: bool = True,
        restarts: int = 3,
        seed: int = 0,
    ) -> "GaussianProcess":
        """Condition the GP on observations.

        Args:
            x: inputs, shape (n, d) — for the bandit these live in [0,1]^d.
            y: targets, shape (n,).
            optimize_hyperparameters: maximize the marginal likelihood over
                lengthscales/variance/noise (multi-start L-BFGS-B).
            restarts: random restarts for the optimizer.
            seed: restart-sampling seed.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        require(x.shape[0] == y.size, "x and y disagree on sample count")
        require(x.shape[0] >= 1, "need at least one observation")

        self._x = x
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        y_norm = (y - self._y_mean) / self._y_std

        if optimize_hyperparameters and x.shape[0] >= 3:
            self._optimize_hyperparameters(x, y_norm, restarts, seed)

        self._factorize(x, y_norm)
        return self

    def _factorize(self, x: np.ndarray, y_norm: np.ndarray) -> None:
        k = self.kernel(x, x)
        k[np.diag_indices_from(k)] += self.noise_variance + JITTER
        try:
            self._chol = cho_factor(k, lower=True)
        except np.linalg.LinAlgError as exc:
            raise AutotunerError(f"kernel matrix not PD: {exc}") from exc
        self._alpha = cho_solve(self._chol, y_norm)
        self._y_norm = y_norm

    def _optimize_hyperparameters(
        self, x: np.ndarray, y_norm: np.ndarray, restarts: int, seed: int
    ) -> None:
        dim = x.shape[1]
        rng = np.random.default_rng(seed)

        def negative_lml(log_params: np.ndarray) -> float:
            scales = np.exp(log_params[:dim])
            variance = float(np.exp(log_params[dim]))
            noise = float(np.exp(log_params[dim + 1]))
            kernel = self.kernel.with_params(scales, variance)
            k = kernel(x, x)
            k[np.diag_indices_from(k)] += noise + JITTER
            try:
                lower = cholesky(k, lower=True)
            except np.linalg.LinAlgError:
                return 1e10
            alpha = cho_solve((lower, True), y_norm)
            lml = (
                -0.5 * float(y_norm @ alpha)
                - float(np.log(np.diag(lower)).sum())
                - 0.5 * y_norm.size * np.log(2 * np.pi)
            )
            return -lml

        best = None
        starts = [
            np.concatenate(
                [
                    np.log(self.kernel._broadcast_scales(dim)),
                    [np.log(self.kernel.variance)],
                    [np.log(self.noise_variance)],
                ]
            )
        ]
        for _ in range(restarts):
            starts.append(
                np.concatenate(
                    [
                        rng.uniform(np.log(0.05), np.log(2.0), size=dim),
                        [rng.uniform(np.log(0.1), np.log(4.0))],
                        [rng.uniform(np.log(1e-6), np.log(1e-1))],
                    ]
                )
            )
        bounds = (
            [(np.log(1e-2), np.log(1e1))] * dim
            + [(np.log(1e-3), np.log(1e2))]
            + [(np.log(1e-8), np.log(1.0))]
        )
        for start in starts:
            result = optimize.minimize(
                negative_lml, start, method="L-BFGS-B", bounds=bounds
            )
            if best is None or result.fun < best.fun:
                best = result
        if best is not None and np.isfinite(best.fun):
            self.kernel = self.kernel.with_params(
                np.exp(best.x[:dim]), float(np.exp(best.x[dim]))
            )
            self.noise_variance = float(np.exp(best.x[dim + 1]))

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(self, x_new: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Predictive mean and standard deviation at new points.

        Returns:
            ``(mean, std)`` in original target units, each shape (n,).
        """
        require(self.is_fitted, "predict() before fit()")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=np.float64))
        k_star = self.kernel(x_new, self._x)
        mean_norm = k_star @ self._alpha
        v = cho_solve(self._chol, k_star.T)
        var_norm = self.kernel.diagonal(x_new.shape[0]) - np.einsum(
            "ij,ji->i", k_star, v
        )
        var_norm = np.maximum(var_norm, 0.0)
        mean = mean_norm * self._y_std + self._y_mean
        std = np.sqrt(var_norm) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """LML of the (standardized) training data under current params."""
        require(self.is_fitted, "log_marginal_likelihood() before fit()")
        lower = self._chol[0]
        return (
            -0.5 * float(self._y_norm @ self._alpha)
            - float(np.log(np.diag(lower)).sum())
            - 0.5 * self._y_norm.size * np.log(2 * np.pi)
        )
