"""DET004 positive fixture: per-page Python loops in pooled kernel code."""

import numpy as np


class Pool:
    def slow_scan(self, u):
        res = self.resident[:u]
        total = 0
        for page in np.flatnonzero(res & self.accessed[:u]):  # finding
            total += int(self.age_scans[page])
        for i in range(self.used):  # finding: range sized by the page count
            if self.state[i] == 2:
                total += 1
        return total

    def slow_resample(self, u):
        dirty = np.flatnonzero(self.dirtied[:u])
        for page in dirty:  # finding: page-axis local tracked via assignment
            self.payload_bytes[page] = 0

    def slow_mask(self, u):
        return [p for p in np.flatnonzero(self.reclaim_mask[:u])]  # finding
