"""Trace database: indexing, windowing, JSON-lines persistence."""

import numpy as np
import pytest

from repro.cluster.trace_db import TraceDatabase
from repro.common.errors import TraceError
from repro.core.histograms import AgeHistogram, default_age_bins
from repro.model.trace import JobTrace, TraceEntry


def make_entry(job_id="j", time=0, wss=100, machine="m0"):
    bins = default_age_bins()
    promo = AgeHistogram(bins)
    promo.add_ages(np.array([150.0] * 5))
    cold = AgeHistogram(bins)
    cold.add_ages(np.array([150.0] * 30 + [10.0] * 70))
    return TraceEntry(
        job_id=job_id,
        machine_id=machine,
        time=time,
        working_set_pages=wss,
        promotion_histogram=promo,
        cold_age_histogram=cold,
        resident_pages=100,
        cpu_cores=2.0,
    )


class TestIndexing:
    def test_add_and_lookup(self):
        db = TraceDatabase()
        db.add(make_entry("a", 0))
        db.add(make_entry("a", 300))
        db.add(make_entry("b", 0))
        assert len(db) == 3
        assert db.job_ids == ["a", "b"]
        assert len(db.trace_for("a")) == 2

    def test_unknown_job_raises(self):
        with pytest.raises(TraceError):
            TraceDatabase().trace_for("ghost")

    def test_out_of_order_rejected(self):
        db = TraceDatabase()
        db.add(make_entry("a", 600))
        with pytest.raises(TraceError):
            db.add(make_entry("a", 300))

    def test_windowed_traces(self):
        db = TraceDatabase()
        for t in (0, 300, 600, 900):
            db.add(make_entry("a", t))
        windowed = db.traces(start=300, end=900)
        assert len(windowed) == 1
        assert [e.time for e in windowed[0].entries] == [300, 600]

    def test_window_excluding_everything(self):
        db = TraceDatabase()
        db.add(make_entry("a", 0))
        assert db.traces(start=1000) == []


class TestPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        db = TraceDatabase()
        db.add(make_entry("a", 0))
        db.add(make_entry("a", 300))
        db.add(make_entry("b", 0, machine="m1"))
        path = tmp_path / "traces.jsonl"
        written = db.save_jsonl(path)
        assert written == 3

        loaded = TraceDatabase.load_jsonl(path)
        assert loaded.job_ids == ["a", "b"]
        original = db.trace_for("a").entries[0]
        restored = loaded.trace_for("a").entries[0]
        assert restored.working_set_pages == original.working_set_pages
        assert restored.machine_id == original.machine_id
        np.testing.assert_array_equal(
            restored.promotion_histogram.counts,
            original.promotion_histogram.counts,
        )

    def test_corrupt_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "a trace entry"}\n')
        with pytest.raises(TraceError, match="bad.jsonl:1"):
            TraceDatabase.load_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        db = TraceDatabase()
        db.add(make_entry("a", 0))
        path = tmp_path / "traces.jsonl"
        db.save_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(TraceDatabase.load_jsonl(path)) == 1


class TestJobTrace:
    def test_wrong_job_rejected(self):
        trace = JobTrace("a")
        with pytest.raises(TraceError):
            trace.append(make_entry("b", 0))

    def test_duration(self):
        trace = JobTrace("a")
        trace.append(make_entry("a", 0))
        trace.append(make_entry("a", 600))
        assert trace.duration_seconds == 900

    def test_empty_duration(self):
        assert JobTrace("a").duration_seconds == 0

    def test_dict_roundtrip(self):
        trace = JobTrace("a")
        trace.append(make_entry("a", 0))
        rebuilt = JobTrace.from_dicts("a", trace.to_dicts())
        assert len(rebuilt) == 1
        assert rebuilt.entries[0].time == 0
