"""The zswap pool-size cap (upstream max_pool_percent behaviour)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import SeedSequenceFactory
from repro.common.units import MIB, PAGE_SIZE
from repro.core.histograms import default_age_bins
from repro.kernel.compression import ContentProfile
from repro.kernel.machine import Machine, MachineConfig
from repro.kernel.memcg import MemCg
from repro.kernel.zsmalloc import ZsmallocArena
from repro.kernel.zswap import Zswap


COMPRESSIBLE = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)


def make_memcg(rng, n=2000):
    return MemCg("job", n, COMPRESSIBLE, default_age_bins(), rng)


class TestPoolCap:
    def test_uncapped_by_default(self, rng):
        zswap = Zswap(ZsmallocArena())
        assert not zswap.pool_full()
        memcg = make_memcg(rng)
        idx = memcg.allocate(2000)
        assert zswap.compress(memcg, idx) == 2000

    def test_cap_stops_stores(self, rng):
        zswap = Zswap(ZsmallocArena(), max_pool_bytes=64 * PAGE_SIZE)
        memcg = make_memcg(rng)
        idx = memcg.allocate(2000)
        stored_total = 0
        # Feed batches until the cap bites.
        for start in range(0, 2000, 200):
            stored_total += zswap.compress(memcg, idx[start : start + 200])
        assert zswap.pool_full()
        assert stored_total < 2000
        assert zswap.pool_limit_rejections > 0
        assert zswap.arena.footprint_bytes >= 64 * PAGE_SIZE

    def test_no_cycles_charged_when_full(self, rng):
        zswap = Zswap(ZsmallocArena(), max_pool_bytes=1)
        memcg = make_memcg(rng, 100)
        idx = memcg.allocate(100)
        zswap.compress(memcg, idx[:50])  # fills past the 1-byte cap
        before = zswap.stats_for("job").compress_seconds
        assert zswap.compress(memcg, idx[50:]) == 0
        assert zswap.stats_for("job").compress_seconds == before

    def test_promotions_reopen_the_pool(self, rng):
        zswap = Zswap(ZsmallocArena(), max_pool_bytes=400 * PAGE_SIZE)
        memcg = make_memcg(rng)
        idx = memcg.allocate(2000)
        while not zswap.pool_full():
            remaining = np.flatnonzero(
                memcg.resident & (memcg.state == 0) & ~memcg.incompressible
            )
            if remaining.size == 0:
                break
            zswap.compress(memcg, remaining[:100])
        assert zswap.pool_full()
        far = np.flatnonzero(memcg.far_mask())
        zswap.decompress(memcg, far)
        # Freeing objects leaves holes; the footprint only shrinks once
        # the (agent-triggered) compaction runs.
        zswap.arena.compact()
        assert not zswap.pool_full()


class TestMachinePlumbing:
    def test_machine_config_sets_pool_bytes(self):
        machine = Machine(
            "m",
            MachineConfig(dram_bytes=100 * MIB, zswap_max_pool_fraction=0.2),
            seeds=SeedSequenceFactory(1),
        )
        assert machine.zswap.max_pool_bytes == int(0.2 * 100 * MIB)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(zswap_max_pool_fraction=1.5)

    def test_capped_machine_limits_far_memory(self):
        config = MachineConfig(dram_bytes=64 * MIB,
                               zswap_max_pool_fraction=0.05)
        machine = Machine("m", config, seeds=SeedSequenceFactory(2))
        memcg = machine.add_job("j", 10_000, COMPRESSIBLE)
        machine.allocate("j", 10_000)
        for t in range(0, 481, 60):
            machine.tick(t)
        memcg.cold_age_threshold = 120.0
        machine.run_reclaim()
        cap = int(0.05 * 64 * MIB)
        # The arena never exceeds the cap by more than one batch overshoot.
        assert machine.arena.footprint_bytes <= cap + 64 * PAGE_SIZE * 4
        assert machine.far_pages < 10_000
