"""Gaussian-process regression behaviour."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.autotuner.gp import GaussianProcess
from repro.autotuner.kernels import Matern52Kernel, RbfKernel


def toy_function(x):
    return np.sin(6.0 * x[:, 0]) + 0.5 * x[:, 0]


class TestInterpolation:
    def test_mean_passes_through_training_points(self):
        x = np.linspace(0, 1, 8)[:, None]
        y = toy_function(x)
        gp = GaussianProcess(noise_variance=1e-8)
        gp.fit(x, y, optimize_hyperparameters=False)
        mean, std = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-3)
        assert std.max() < 0.1

    def test_uncertainty_grows_away_from_data(self):
        x = np.array([[0.4], [0.5], [0.6]])
        gp = GaussianProcess().fit(
            x, toy_function(x), optimize_hyperparameters=False
        )
        _, std_near = gp.predict(np.array([[0.45]]))
        _, std_far = gp.predict(np.array([[0.0]]))
        assert std_far[0] > std_near[0]

    def test_interpolates_smooth_function(self):
        rng = np.random.default_rng(0)
        x = rng.random((25, 1))
        y = toy_function(x)
        gp = GaussianProcess().fit(x, y, seed=1)
        test_x = np.linspace(0.1, 0.9, 20)[:, None]
        mean, _ = gp.predict(test_x)
        np.testing.assert_allclose(mean, toy_function(test_x), atol=0.15)


class TestHyperparameters:
    def test_optimization_improves_lml(self):
        rng = np.random.default_rng(1)
        x = rng.random((20, 1))
        y = toy_function(x) + rng.normal(0, 0.05, 20)
        fixed = GaussianProcess(Matern52Kernel(1.5), noise_variance=0.5)
        fixed.fit(x, y, optimize_hyperparameters=False)
        lml_fixed = fixed.log_marginal_likelihood()
        tuned = GaussianProcess(Matern52Kernel(1.5), noise_variance=0.5)
        tuned.fit(x, y, optimize_hyperparameters=True, seed=2)
        assert tuned.log_marginal_likelihood() >= lml_fixed

    def test_skipped_below_three_points(self):
        gp = GaussianProcess(Matern52Kernel(0.33))
        gp.fit(np.array([[0.0], [1.0]]), np.array([0.0, 1.0]))
        assert gp.kernel.lengthscales[0] == pytest.approx(0.33)


class TestEdgeCases:
    def test_single_observation(self):
        gp = GaussianProcess().fit(np.array([[0.5]]), np.array([2.0]))
        mean, std = gp.predict(np.array([[0.5]]))
        assert mean[0] == pytest.approx(2.0, abs=0.1)

    def test_constant_targets(self):
        x = np.linspace(0, 1, 5)[:, None]
        gp = GaussianProcess().fit(x, np.full(5, 3.0),
                                   optimize_hyperparameters=False)
        mean, _ = gp.predict(np.array([[0.5]]))
        assert mean[0] == pytest.approx(3.0, abs=1e-6)

    def test_predict_before_fit_raises(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess().predict(np.zeros((1, 1)))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess().fit(np.zeros((3, 1)), np.zeros(2))

    def test_rbf_kernel_works_too(self):
        x = np.linspace(0, 1, 6)[:, None]
        gp = GaussianProcess(RbfKernel(0.3)).fit(
            x, toy_function(x), optimize_hyperparameters=False
        )
        mean, _ = gp.predict(x)
        np.testing.assert_allclose(mean, toy_function(x), atol=0.05)

    def test_predictions_in_original_units(self):
        """Standardization must be invisible to callers."""
        x = np.linspace(0, 1, 10)[:, None]
        y = 1000.0 + 500.0 * toy_function(x)
        gp = GaussianProcess().fit(x, y, optimize_hyperparameters=False)
        mean, _ = gp.predict(x)
        np.testing.assert_allclose(mean, y, rtol=0.05)
