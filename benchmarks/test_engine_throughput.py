"""Parallel-engine throughput: the ``repro bench --quick`` acceptance run.

Asserts the parallel engine actually buys wall-clock time on hardware
that can show it (4+ usable cores), and that it never pays for that
speed with correctness — the equivalence bit must hold everywhere the
benchmark runs.  ``BENCH_engine.json`` lands in ``results/`` next to the
figure outputs; the top-level ``BENCH_fleet.json`` artifact comes from
running ``python -m repro bench`` directly.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import default_worker_count, fork_available
from repro.engine.bench import run_bench

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def bench_report(results_dir):
    """One ``--quick``-sized bench run, persisted for inspection."""
    report = run_bench(
        hours=0.5, clusters=4, machines=1, jobs=2, seed=42, workers=4,
        output=results_dir / "BENCH_engine.json",
    )
    print("\n" + json.dumps(report, indent=2))
    return report


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_parallel_results_equivalent(bench_report):
    assert bench_report["equivalent"]


@pytest.mark.skipif(
    not fork_available() or default_worker_count() < 4,
    reason="speedup needs 4+ usable cores and fork support",
)
def test_parallel_speedup_on_multicore_host(bench_report):
    assert bench_report["parallel"]["mode"] == "parallel"
    assert bench_report["speedup"] >= 1.5
