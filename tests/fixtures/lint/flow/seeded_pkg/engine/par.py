"""Fork-boundary module: FLOW002's reachable unpicklable class."""


class Job:
    def __init__(self, path: str) -> None:
        # FLOW002: an open file handle cannot cross the fork boundary,
        # and worker_main constructs this class.
        self.log = open(path, "a")


class SafeJob:
    """Same hazard, but with a pickle hook: FLOW002 must stay quiet."""

    def __init__(self, path: str) -> None:
        self.log = open(path, "a")

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("log", None)
        return state


class UnreachedJob:
    """Hazardous but never constructed from a worker: no finding."""

    def __init__(self, path: str) -> None:
        self.log = open(path, "a")


def build_job(path: str) -> Job:
    return Job(path)


def worker_main(path: str) -> None:
    # The fork worker entry point; Job is reachable through build_job.
    job = build_job(path)
    safe = SafeJob(path)
    del job, safe
