"""Parameter redeployment must preserve per-job controller state."""

import numpy as np

from repro.core.histograms import AgeHistogram, default_age_bins
from repro.core.threshold_policy import (
    ColdAgeThresholdPolicy,
    ThresholdPolicyConfig,
)


class TestInheritState:
    def test_pool_and_clock_carry_over(self, bins):
        old = ColdAgeThresholdPolicy(
            ThresholdPolicyConfig(percentile_k=98, warmup_seconds=300), bins
        )
        for _ in range(10):
            old.observe(AgeHistogram(bins), 1000)
        assert old.warmed_up

        new = ColdAgeThresholdPolicy(
            ThresholdPolicyConfig(percentile_k=80, warmup_seconds=300), bins
        )
        new.inherit_state(old)
        # No fresh warm-up: the job has been running for 10 minutes.
        assert new.warmed_up
        assert len(new.history) == 10
        # New K applies to the inherited pool immediately.
        assert new.threshold() == bins.min_threshold

    def test_shorter_history_keeps_most_recent(self, bins):
        old = ColdAgeThresholdPolicy(
            ThresholdPolicyConfig(warmup_seconds=0, history_length=100), bins
        )
        quiet = AgeHistogram(bins)
        burst = AgeHistogram(bins)
        burst.add_ages(np.full(500, 1000.0))
        for _ in range(20):
            old.observe(quiet, 1000)
        old.observe(burst, 1000)

        new = ColdAgeThresholdPolicy(
            ThresholdPolicyConfig(warmup_seconds=0, history_length=5), bins
        )
        new.inherit_state(old)
        assert len(new.history) == 5
        # The most recent (burst) entry survived the truncation.
        assert new.history[-1] == old.history[-1]


class TestAgentRedeployment:
    def test_redeploy_does_not_restart_warmup(self):
        from repro.agent.node_agent import NodeAgent
        from repro.common.rng import SeedSequenceFactory
        from repro.kernel.compression import ContentProfile
        from repro.kernel.machine import Machine, MachineConfig

        machine = Machine(
            "m", MachineConfig(dram_bytes=1 << 30),
            seeds=SeedSequenceFactory(6),
        )
        agent = NodeAgent(
            machine,
            ThresholdPolicyConfig(percentile_k=98, warmup_seconds=300),
        )
        machine.add_job(
            "j", 1000,
            ContentProfile(incompressible_fraction=0.0, min_ratio=1.5),
        )
        machine.allocate("j", 1000)
        for t in range(0, 900, 60):
            machine.tick(t)
            agent.maybe_control(t)
        memcg = machine.memcgs["j"]
        assert memcg.zswap_enabled

        agent.set_policy_config(
            ThresholdPolicyConfig(percentile_k=90, warmup_seconds=300)
        )
        machine.tick(900)
        agent.maybe_control(900)
        # The job stayed warmed-up across the redeployment.
        assert memcg.zswap_enabled
        assert np.isfinite(memcg.cold_age_threshold)
