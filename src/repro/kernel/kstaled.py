"""kstaled: the page-age scanner daemon (paper §5.1).

kstaled walks page tables every ``scan_period`` (120 s), reads and clears
PTE accessed bits, maintains the 8-bit per-page ages, and updates the two
per-job histograms the control plane consumes.  The heavy lifting is inside
:meth:`repro.kernel.memcg.MemCg.scan_update`; this daemon sequences scans
across memcgs, tracks its own CPU cost (the paper budgets <11 % of one
logical core), and exposes scan counters for tests and monitoring.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.common.simtime import PeriodicSchedule
from repro.common.units import KSTALED_SCAN_PERIOD
from repro.common.validation import check_positive
from repro.kernel.memcg import MemCg

if TYPE_CHECKING:
    from repro.kernel.columnar import MachinePagePool
from repro.obs import (
    MetricName,
    MetricRegistry,
    Tracer,
    get_registry,
    get_tracer,
)

__all__ = ["Kstaled"]

#: Modelled cost of examining one page's PTEs during a scan.  ~20 ns/page
#: keeps a 256 GiB machine (64 M pages) around 10 % of one core at a 120 s
#: period, matching the paper's measured budget.
SCAN_SECONDS_PER_PAGE = 20e-9


class Kstaled:
    """Machine-wide scanner over all memcgs.

    Args:
        scan_period: seconds between scans of each memcg (120 s).
        machine_id: label value for exported metrics ("" standalone).
        registry: metrics registry (defaults to the process-global one).
        tracer: span tracer (defaults to the process-global one).
    """

    def __init__(
        self,
        scan_period: int = KSTALED_SCAN_PERIOD,
        machine_id: str = "",
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        check_positive(scan_period, "scan_period")
        self.scan_period = int(scan_period)
        self.machine_id = machine_id
        self._schedule = PeriodicSchedule(self.scan_period)
        self.scans_completed = 0
        self.pages_scanned = 0
        self.cpu_seconds = 0.0

        registry = registry if registry is not None else get_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        self._bind_metrics(registry)

    def _bind_metrics(self, registry: MetricRegistry) -> None:
        machine_id = self.machine_id
        self._m_pages = registry.counter(
            MetricName.PAGES_SCANNED_TOTAL,
            "Pages examined by kstaled accessed-bit scans.", ("machine",)
        ).labels(machine=machine_id)
        self._m_scans = registry.counter(
            MetricName.KSTALED_SCANS_TOTAL,
            "Completed machine-wide kstaled scan rounds.", ("machine",)
        ).labels(machine=machine_id)
        self._m_cpu = registry.counter(
            MetricName.KSTALED_CPU_SECONDS_TOTAL,
            "Modelled kstaled CPU seconds (paper budget: <11% of a core).",
            ("machine",)
        ).labels(machine=machine_id)

    def rebind_observability(self, registry: MetricRegistry,
                             tracer: Tracer) -> None:
        """Re-point metric handles and tracer after a cross-process move."""
        self._tracer = tracer
        self._bind_metrics(registry)

    def maybe_scan(
        self,
        now: int,
        memcgs: Iterable[MemCg],
        pool: Optional["MachinePagePool"] = None,
    ) -> bool:
        """Run a scan if the period boundary has been crossed.

        Returns True when a scan ran.
        """
        if not self._schedule.due(now):
            return False
        with self._tracer.span("kstaled.scan", sim_time=now):
            self.scan(memcgs, pool=pool)
        return True

    def scan(
        self,
        memcgs: Iterable[MemCg],
        pool: Optional["MachinePagePool"] = None,
    ) -> None:
        """Unconditionally scan every memcg once.

        With a columnar ``pool``, the whole machine is aged and re-binned
        in one array sweep (:meth:`MachinePagePool.scan_all`); otherwise
        each memcg runs its own ``scan_update``.  Both paths are
        bit-equivalent.
        """
        if pool is not None:
            pages = pool.scan_all(memcgs)
        else:
            pages = 0
            for memcg in memcgs:
                memcg.scan_update()
                pages += memcg.resident_pages
        self.record_scan(pages)

    def record_scan(self, pages: int) -> None:
        """Book one completed scan of ``pages`` resident pages.

        Used by :meth:`scan` and by the cluster layer when a shared
        cluster-scoped pool runs the scan externally: the sweep happens
        once for all machines, but each machine's kstaled still accounts
        its own pages, CPU cost, and metrics.
        """
        self.pages_scanned += pages
        self.cpu_seconds += pages * SCAN_SECONDS_PER_PAGE
        self.scans_completed += 1
        self._m_pages.inc(pages)
        self._m_cpu.inc(pages * SCAN_SECONDS_PER_PAGE)
        self._m_scans.inc()

    def utilization_of_core(self, elapsed_seconds: float) -> float:
        """Fraction of one logical core consumed so far."""
        if elapsed_seconds <= 0:
            return 0.0
        return self.cpu_seconds / elapsed_seconds
