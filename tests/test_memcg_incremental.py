"""Incremental cold-histogram maintenance and the reclaim-mask cache.

The kstaled scan updates the cold-age histogram incrementally (only the
pages whose bin changed); :meth:`MemCg._rebuild_cold_histogram` remains
the ground truth.  These tests pin the invariant that the two always
agree, plus the idle-memcg fast path and reclaim-cache invalidation.
"""

import numpy as np
import pytest

from repro.common.units import MAX_PAGE_AGE_SCANS
from repro.kernel.memcg import MemCg, PageState


def assert_histogram_matches_rebuild(memcg: MemCg) -> None:
    """The incremental snapshot must equal a from-scratch rebuild."""
    counts = memcg.cold_age_histogram.counts.copy()
    young = memcg.cold_age_histogram.young_count
    memcg._rebuild_cold_histogram()
    np.testing.assert_array_equal(counts, memcg.cold_age_histogram.counts)
    assert young == memcg.cold_age_histogram.young_count


class TestIncrementalHistogram:
    def test_matches_rebuild_after_aging(self, memcg, rng):
        memcg.allocate(600)
        for _ in range(12):
            memcg.scan_update()
            assert_histogram_matches_rebuild(memcg)

    def test_matches_rebuild_with_touches(self, memcg, rng):
        slots = memcg.allocate(600)
        for scan in range(10):
            touched = rng.choice(slots, size=50, replace=False)
            memcg.touch(touched)
            memcg.scan_update()
            assert_histogram_matches_rebuild(memcg)

    def test_matches_rebuild_through_alloc_release_churn(self, memcg, rng):
        slots = memcg.allocate(400)
        for scan in range(8):
            memcg.scan_update()
            freed = rng.choice(slots, size=40, replace=False)
            memcg.release(freed)
            slots = np.setdiff1d(slots, freed)
            fresh = memcg.allocate(40)
            slots = np.concatenate([slots, fresh])
            memcg.scan_update()
            assert_histogram_matches_rebuild(memcg)

    def test_matches_rebuild_with_tier_moves(self, memcg, rng):
        slots = memcg.allocate(500)
        for _ in range(6):
            memcg.scan_update()
        memcg.mark_far(slots[:200])
        memcg.scan_update()
        assert_histogram_matches_rebuild(memcg)
        memcg.mark_near(slots[:100])
        memcg.touch(slots[:100])
        memcg.scan_update()
        assert_histogram_matches_rebuild(memcg)

    def test_idle_memcg_takes_fast_path(self, memcg):
        """Once every page sits at the saturated age, a scan with no
        accesses must leave the cached per-slot bins untouched."""
        from repro.checks.invariants import set_invariants_enabled

        # The fast path is observed via object identity of the cached
        # bins; the REPRO_CHECKS histogram invariant (on by default in
        # this suite) reseeds that cache after every scan, so pin the
        # checks off for this one observer-effect-sensitive test.
        set_invariants_enabled(False)
        try:
            memcg.allocate(300)
            memcg.accessed[:] = False  # fresh pages carry accessed bits
            memcg.age_scans[memcg.resident] = MAX_PAGE_AGE_SCANS
            memcg.scan_update()  # seeds _hist_bin at the saturated bin
            cached = memcg._hist_bin
            memcg.scan_update()
            assert memcg._hist_bin is cached  # early-returned, no rewrite
            assert_histogram_matches_rebuild(memcg)
        finally:
            set_invariants_enabled(None)

    def test_young_pages_counted_in_young_bucket(self, memcg):
        slots = memcg.allocate(100)
        memcg.touch(slots)
        memcg.scan_update()  # all ages reset to 0 -> young bucket
        assert memcg.cold_age_histogram.young_count == 100
        assert int(memcg.cold_age_histogram.counts.sum()) == 0


class TestReclaimMaskCache:
    def test_candidates_reflect_tier_changes(self, memcg):
        slots = memcg.allocate(200)
        for _ in range(3):
            memcg.scan_update()
        threshold = 2 * memcg.scan_period
        before = memcg.reclaim_candidates(threshold)
        assert len(before) == 200
        memcg.mark_far(slots[:50])
        after = memcg.reclaim_candidates(threshold)
        assert len(after) == 150
        assert not np.intersect1d(after, slots[:50]).size

    def test_candidates_reflect_mlock_and_munlock(self, memcg):
        slots = memcg.allocate(100)
        for _ in range(3):
            memcg.scan_update()
        threshold = 2 * memcg.scan_period
        memcg.mlock(slots[:30])
        assert len(memcg.reclaim_candidates(threshold)) == 70
        memcg.munlock(slots[:30])
        assert len(memcg.reclaim_candidates(threshold)) == 100

    def test_candidates_reflect_incompressible_marks(self, memcg):
        slots = memcg.allocate(100)
        for _ in range(3):
            memcg.scan_update()
        memcg.mark_incompressible(slots[:25])
        assert len(memcg.reclaim_candidates(2 * memcg.scan_period)) == 75

    def test_direct_writes_plus_invalidate_are_seen(self, memcg):
        """The documented contract for code poking the arrays directly."""
        slots = memcg.allocate(80)
        for _ in range(3):
            memcg.scan_update()
        threshold = 2 * memcg.scan_period
        assert len(memcg.reclaim_candidates(threshold)) == 80
        memcg.state[slots[:10]] = PageState.FAR
        memcg.invalidate_reclaim_cache()
        assert len(memcg.reclaim_candidates(threshold)) == 70

    def test_age_threshold_applied_per_call(self, memcg):
        slots = memcg.allocate(100)
        for _ in range(4):
            memcg.scan_update()
        memcg.touch(slots[:40])
        memcg.scan_update()  # 40 pages age 0, 60 pages age 5
        assert len(memcg.reclaim_candidates(1 * memcg.scan_period)) == 60
        assert len(memcg.reclaim_candidates(0.5 * memcg.scan_period)) == 60
        assert len(memcg.reclaim_candidates(10 * memcg.scan_period)) == 0
