"""Calibration: the synthetic fleet stays inside the paper's bands.

DESIGN.md §5 pins the targets; these tests keep future changes honest —
if a workload or kernel tweak silently drifts the fleet out of the
paper-shaped operating region, they fail before the benchmark harness
does.
"""

import numpy as np
import pytest

from repro.analysis import (
    cold_memory_vs_threshold,
    compression_ratios_per_job,
    decompression_latency_samples,
    per_job_cold_fractions,
)
from repro.common.units import ZSMALLOC_MAX_PAYLOAD


class TestColdMemoryCalibration:
    def test_fleet_cold_fraction_band(self, warm_fleet):
        """Paper: 32% of memory idle >= 120 s, fleet-wide."""
        fraction = warm_fleet.cold_fraction(120)
        assert 0.20 <= fraction <= 0.55

    def test_threshold_sweep_monotone_and_spanning(self, warm_fleet):
        points = cold_memory_vs_threshold(warm_fleet.trace_db.traces())
        fractions = [p.cold_fraction for p in points]
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))
        # The sweep spans from substantial to ~zero.
        assert fractions[0] > 0.2
        assert fractions[-1] < 0.05

    def test_per_job_heterogeneity(self, warm_fleet):
        fractions = per_job_cold_fractions(warm_fleet.trace_db.traces())
        p10, p90 = np.percentile(fractions, [10, 90])
        assert p90 - p10 > 0.2


class TestCompressionCalibration:
    def test_ratio_band(self, warm_fleet):
        """Paper: 3x median ratio, 2-6x spread."""
        ratios = compression_ratios_per_job(warm_fleet)
        assert 2.2 <= float(np.median(ratios)) <= 3.8

    def test_latency_band(self, warm_fleet):
        """Paper: 6.4 us p50, 9.1 us p98."""
        samples = decompression_latency_samples(warm_fleet)
        p50 = float(np.percentile(samples, 50))
        assert 4e-6 <= p50 <= 9e-6

    def test_incompressible_band(self, warm_fleet):
        """Paper: 31% of cold memory incompressible."""
        rejected = stored = 0
        for machine in warm_fleet.machines:
            for stats in machine.zswap.job_stats.values():
                rejected += stats.pages_rejected
                stored += stats.pages_compressed
        if rejected + stored:
            share = rejected / (rejected + stored)
            assert 0.10 <= share <= 0.50


class TestSloCalibration:
    def test_promotion_budget_is_pages_not_fractions(self, warm_fleet):
        """Sanity: jobs are big enough that the 0.2%/min budget is at
        least one page for the median job (quantization guard)."""
        from repro.core.slo import PromotionRateSlo, working_set_pages

        slo = PromotionRateSlo()
        budgets = []
        for machine in warm_fleet.machines:
            for memcg in machine.memcgs.values():
                wss = working_set_pages(memcg.cold_age_histogram)
                budgets.append(slo.allowed_promotions_per_min(wss))
        assert np.median(budgets) > 0.1
