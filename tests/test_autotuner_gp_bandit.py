"""Constrained GP-Bandit optimization."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.autotuner.gp_bandit import GpBandit
from repro.autotuner.search_space import ContinuousParameter, SearchSpace


def make_space(dim=2):
    return SearchSpace(
        [ContinuousParameter(f"x{i}", 0.0, 1.0) for i in range(dim)]
    )


def objective(point):
    """Peak at (0.7, 0.3)."""
    return -np.sum((point - np.array([0.7, 0.3])) ** 2)


def constraint(point):
    """Feasible iff x0 <= 0.8 (value below limit 0.8)."""
    return float(point[0])


class TestObservations:
    def test_best_requires_feasibility(self):
        bandit = GpBandit(make_space(), constraint_limit=0.8, seed=0)
        bandit.observe(np.array([0.9, 0.3]), objective=100.0, constraint=0.9)
        assert bandit.best() is None
        bandit.observe(np.array([0.5, 0.3]), objective=1.0, constraint=0.5)
        assert bandit.best().objective == 1.0

    def test_best_picks_max_feasible(self):
        bandit = GpBandit(make_space(), constraint_limit=1.0, seed=0)
        for value in (1.0, 5.0, 3.0):
            bandit.observe(np.random.default_rng(int(value)).random(2),
                           objective=value, constraint=0.0)
        assert bandit.best().objective == 5.0

    def test_rejects_bad_observations(self):
        bandit = GpBandit(make_space(), constraint_limit=1.0)
        with pytest.raises(ConfigurationError):
            bandit.observe(np.array([0.5]), objective=1.0, constraint=0.0)
        with pytest.raises(ConfigurationError):
            bandit.observe(np.array([0.5, 0.5]), objective=float("nan"),
                           constraint=0.0)


class TestSuggest:
    def test_initial_suggestions_space_filling(self):
        bandit = GpBandit(make_space(), constraint_limit=1.0, seed=1)
        points = bandit.suggest(4)
        assert len(points) == 4
        stacked = np.vstack(points)
        assert stacked.min() >= 0 and stacked.max() <= 1

    def test_batch_suggestions_distinct(self):
        bandit = GpBandit(make_space(), constraint_limit=1.0, seed=1)
        for _ in range(6):
            point = np.random.default_rng(_).random(2)
            bandit.observe(point, objective(point), constraint(point))
        points = bandit.suggest(3)
        for i in range(3):
            for j in range(i + 1, 3):
                assert np.linalg.norm(points[i] - points[j]) > 0.01

    def test_model_guides_toward_optimum(self):
        """After enough observations, suggestions should concentrate near
        the known optimum rather than wander uniformly."""
        bandit = GpBandit(make_space(), constraint_limit=2.0, beta=1.0,
                          seed=3)
        rng = np.random.default_rng(0)
        for _ in range(20):
            point = rng.random(2)
            bandit.observe(point, objective(point), 0.0)
        suggestion = bandit.suggest(1)[0]
        assert np.linalg.norm(suggestion - np.array([0.7, 0.3])) < 0.35

    def test_constraint_steers_away_from_infeasible(self):
        """With the optimum deep in infeasible territory, suggestions stay
        on the feasible side."""
        space = make_space()
        bandit = GpBandit(space, constraint_limit=0.5, beta=0.5, seed=4)
        rng = np.random.default_rng(1)
        for _ in range(25):
            point = rng.random(2)
            # Objective increases with x0 but x0 > 0.5 is infeasible.
            bandit.observe(point, float(point[0]), float(point[0]))
        suggestions = bandit.suggest(4)
        feasible_like = sum(1 for p in suggestions if p[0] <= 0.6)
        assert feasible_like >= 3


class TestEndToEndOptimization:
    def test_finds_constrained_optimum(self):
        """The bandit should beat random search on a simple constrained
        problem at an equal evaluation budget."""
        space = make_space()
        bandit = GpBandit(space, constraint_limit=0.8, beta=2.0, seed=7)
        for _ in range(24):
            point = bandit.suggest(1)[0]
            bandit.observe(point, objective(point), constraint(point))
        best = bandit.best()
        assert best is not None
        assert best.constraint <= 0.8
        # The feasible optimum is at (0.7, 0.3) with objective 0.
        assert best.objective > -0.05
