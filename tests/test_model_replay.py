"""The fast far memory model: offline replay of the control algorithm."""

import numpy as np
import pytest

from repro.core.histograms import AgeHistogram, default_age_bins
from repro.core.slo import PromotionRateSlo
from repro.core.threshold_policy import ThresholdPolicyConfig
from repro.model.replay import FarMemoryModel, _replay_one_job, replay_compiled
from repro.model.trace import JobTrace, TraceEntry
from repro.obs import MetricName, MetricRegistry


def make_trace(job_id="j", n_entries=12, cold_pages=500, wss=1000,
               promo_ages=(), resident=2000):
    """A trace with constant per-period statistics."""
    bins = default_age_bins()
    trace = JobTrace(job_id)
    for i in range(n_entries):
        promo = AgeHistogram(bins)
        promo.add_ages(np.array(promo_ages, dtype=float))
        cold = AgeHistogram(bins)
        cold.add_ages(
            np.array([200.0] * cold_pages + [0.0] * (resident - cold_pages))
        )
        trace.append(
            TraceEntry(
                job_id=job_id,
                machine_id="m0",
                time=i * 300,
                working_set_pages=wss,
                promotion_histogram=promo,
                cold_age_histogram=cold,
                resident_pages=resident,
            )
        )
    return trace


def make_random_trace(rng, job_id="r", n_entries=40, zero_wss_at=(),
                      promo_scale=60):
    """A randomized trace whose statistics drift interval to interval."""
    bins = default_age_bins()
    trace = JobTrace(job_id)
    for i in range(n_entries):
        promo = AgeHistogram(bins)
        promo.add_binned(rng.integers(0, promo_scale, size=len(bins)))
        cold = AgeHistogram(bins)
        cold.add_binned(rng.integers(0, 3000, size=len(bins)))
        wss = 0 if i in zero_wss_at else int(rng.integers(1, 60_000))
        trace.append(
            TraceEntry(
                job_id=job_id,
                machine_id="m0",
                time=i * 300,
                working_set_pages=wss,
                promotion_histogram=promo,
                cold_age_histogram=cold,
                resident_pages=wss + 1000,
            )
        )
    return trace


#: Configurations spanning every branch of the policy: percentile
#: extremes, tiny/large history windows, warm-up edge cases, the
#: fixed-threshold bypass, and spike reaction on/off.
EQUIVALENCE_CONFIGS = [
    ThresholdPolicyConfig(),
    ThresholdPolicyConfig(percentile_k=0.0, warmup_seconds=0),
    ThresholdPolicyConfig(percentile_k=100.0, history_length=1),
    ThresholdPolicyConfig(percentile_k=50.0, warmup_seconds=300,
                          history_length=3),
    ThresholdPolicyConfig(percentile_k=98.0, history_length=2,
                          spike_reaction=False),
    ThresholdPolicyConfig(fixed_threshold_seconds=480.0),
    ThresholdPolicyConfig(fixed_threshold_seconds=480.0, warmup_seconds=0),
    ThresholdPolicyConfig(percentile_k=75.0, warmup_seconds=10**9),
]


def assert_bit_identical(scalar, vectorized):
    __tracebackhide__ = True
    assert scalar.job_id == vectorized.job_id
    assert scalar.thresholds == vectorized.thresholds
    assert scalar.cold_pages_captured == vectorized.cold_pages_captured
    assert scalar.normalized_rates == vectorized.normalized_rates


class TestReplayOneJob:
    def test_quiet_job_captures_cold_memory(self):
        config = ThresholdPolicyConfig(percentile_k=90, warmup_seconds=0)
        result = _replay_one_job(make_trace(), config, PromotionRateSlo())
        assert result.intervals == 12
        # First interval has no history -> threshold disabled -> 0 captured.
        assert result.cold_pages_captured[0] == 0.0
        # Later intervals run at 120s and capture the 500 cold pages.
        assert result.cold_pages_captured[-1] == 500.0
        assert result.mean_cold_pages > 0

    def test_warmup_suppresses_early_intervals(self):
        config = ThresholdPolicyConfig(percentile_k=90, warmup_seconds=1500)
        result = _replay_one_job(make_trace(), config, PromotionRateSlo())
        # 1500s warm-up = five 300s intervals disabled (plus the first).
        assert all(c == 0 for c in result.cold_pages_captured[:5])
        assert result.cold_pages_captured[-1] > 0

    def test_noisy_job_captures_less(self):
        config = ThresholdPolicyConfig(percentile_k=90, warmup_seconds=0)
        quiet = _replay_one_job(make_trace(), config, PromotionRateSlo())
        noisy = _replay_one_job(
            make_trace(promo_ages=[200.0] * 400),  # heavy cold re-touch
            config,
            PromotionRateSlo(),
        )
        assert noisy.mean_cold_pages < quiet.mean_cold_pages

    def test_empty_trace(self):
        config = ThresholdPolicyConfig()
        result = _replay_one_job(JobTrace("j"), config, PromotionRateSlo())
        assert result.intervals == 0
        assert result.mean_cold_pages == 0.0


class TestFleetModel:
    def test_aggregates_jobs(self):
        traces = [make_trace(f"j{i}") for i in range(4)]
        model = FarMemoryModel(traces)
        report = model.evaluate(
            ThresholdPolicyConfig(percentile_k=90, warmup_seconds=0)
        )
        assert len(report.job_results) == 4
        assert report.total_cold_pages > 0
        assert report.meets_slo

    def test_constraint_detects_violation(self):
        """Quiet history drives the threshold to 120 s; periodic bursts of
        cold-page accesses then land as real promotions — the violation
        pattern the p98 constraint exists to catch."""
        bins = default_age_bins()
        trace = JobTrace("bursty")
        for i in range(12):
            promo = AgeHistogram(bins)
            if i % 2 == 1:  # burst intervals
                promo.add_ages(np.array([150.0] * 500))
            cold = AgeHistogram(bins)
            cold.add_ages(np.array([200.0] * 500 + [0.0] * 500))
            trace.append(
                TraceEntry(
                    job_id="bursty",
                    machine_id="m0",
                    time=i * 300,
                    working_set_pages=500,
                    promotion_histogram=promo,
                    cold_age_histogram=cold,
                    resident_pages=1000,
                )
            )
        model = FarMemoryModel([trace])
        report = model.evaluate(
            ThresholdPolicyConfig(percentile_k=10, warmup_seconds=0,
                                  history_length=4)
        )
        assert report.promotion_rate_p98 > report.slo_target

    def test_conservative_config_captures_less(self):
        traces = [
            make_trace(f"j{i}", promo_ages=[300.0] * 30) for i in range(3)
        ]
        model = FarMemoryModel(traces)
        aggressive = model.evaluate(
            ThresholdPolicyConfig(percentile_k=50, warmup_seconds=0)
        )
        conservative = model.evaluate(
            ThresholdPolicyConfig(percentile_k=50, warmup_seconds=3000)
        )
        assert conservative.total_cold_pages <= aggressive.total_cold_pages

    def test_evaluate_many_order(self):
        model = FarMemoryModel([make_trace()])
        configs = [
            ThresholdPolicyConfig(percentile_k=50, warmup_seconds=0),
            ThresholdPolicyConfig(percentile_k=99, warmup_seconds=600),
        ]
        reports = model.evaluate_many(configs)
        assert [r.config for r in reports] == configs

    def test_deterministic(self):
        traces = [make_trace("j", promo_ages=[250.0] * 10)]
        model = FarMemoryModel(traces)
        config = ThresholdPolicyConfig(percentile_k=80, warmup_seconds=300)
        a = model.evaluate(config)
        b = model.evaluate(config)
        assert a.total_cold_pages == b.total_cold_pages
        assert a.promotion_rate_p98 == b.promotion_rate_p98

    def test_matches_online_policy_semantics(self):
        """The replayed threshold sequence equals what the online policy
        would have produced given identical inputs."""
        from repro.core.threshold_policy import ColdAgeThresholdPolicy

        trace = make_trace(promo_ages=[300.0] * 50, n_entries=8)
        config = ThresholdPolicyConfig(percentile_k=75, warmup_seconds=600)
        result = _replay_one_job(trace, config, PromotionRateSlo())

        policy = ColdAgeThresholdPolicy(
            config, trace.entries[0].bins, PromotionRateSlo()
        )
        expected = []
        for entry in trace.entries:
            expected.append(policy.threshold())
            policy.observe(entry.promotion_histogram,
                           entry.working_set_pages, 300)
        assert result.thresholds == expected


class TestVectorizedEquivalence:
    """The vectorized replay must be bit-identical to the scalar oracle —
    not approximately equal: the autotuner ranks configurations by these
    numbers, and a one-ulp divergence could flip a ranking."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 7])
    def test_randomized_traces_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        slo = PromotionRateSlo()
        trace = make_random_trace(
            rng, n_entries=int(rng.integers(1, 200)), zero_wss_at=(0, 2, 9)
        )
        compiled = trace.compile()
        vectorized = replay_compiled(compiled, EQUIVALENCE_CONFIGS, slo)
        for config, vec in zip(EQUIVALENCE_CONFIGS, vectorized):
            assert_bit_identical(_replay_one_job(trace, config, slo), vec)

    def test_empty_trace(self):
        slo = PromotionRateSlo()
        compiled = JobTrace("empty").compile()
        results = replay_compiled(compiled, EQUIVALENCE_CONFIGS, slo)
        assert len(results) == len(EQUIVALENCE_CONFIGS)
        for result in results:
            assert result.intervals == 0
            assert result.mean_cold_pages == 0.0

    def test_all_intervals_disabled_by_warmup(self):
        """A warm-up longer than the trace leaves every threshold DISABLED
        and captures nothing, in both implementations."""
        slo = PromotionRateSlo()
        config = ThresholdPolicyConfig(warmup_seconds=10**9)
        trace = make_trace(n_entries=10)
        vec = replay_compiled(trace.compile(), [config], slo)[0]
        assert_bit_identical(_replay_one_job(trace, config, slo), vec)
        assert all(t == float("inf") for t in vec.thresholds)
        assert all(c == 0.0 for c in vec.cold_pages_captured)

    def test_zero_wss_without_promotions_rates_are_zero(self):
        slo = PromotionRateSlo()
        config = ThresholdPolicyConfig(percentile_k=90, warmup_seconds=0)
        rng = np.random.default_rng(11)
        trace = make_random_trace(
            rng, n_entries=8, zero_wss_at=range(8), promo_scale=1
        )
        # promo_scale=1 keeps integers(0, 1) == 0: no promotions at all.
        vec = replay_compiled(trace.compile(), [config], slo)[0]
        assert_bit_identical(_replay_one_job(trace, config, slo), vec)
        assert all(r == 0.0 for r in vec.normalized_rates)

    def test_zero_wss_with_promotions_rates_are_inf(self):
        """Promotions against an empty working set normalize to inf — the
        'cannot meet any SLO' sentinel — and inf must survive the
        vectorized where/errstate plumbing unchanged."""
        slo = PromotionRateSlo()
        config = ThresholdPolicyConfig(percentile_k=90, warmup_seconds=0,
                                       fixed_threshold_seconds=120.0)
        rng = np.random.default_rng(13)
        trace = make_random_trace(rng, n_entries=8, zero_wss_at=range(8))
        vec = replay_compiled(trace.compile(), [config], slo)[0]
        assert_bit_identical(_replay_one_job(trace, config, slo), vec)
        assert any(r == float("inf") for r in vec.normalized_rates)

    def test_model_scalar_mode_matches_vectorized_mode(self):
        traces = [make_random_trace(np.random.default_rng(s), job_id=f"j{s}",
                                    n_entries=30)
                  for s in range(3)] + [JobTrace("empty")]
        config = ThresholdPolicyConfig(percentile_k=95, warmup_seconds=600)
        vec_report = FarMemoryModel(traces).evaluate(config)
        scalar_report = FarMemoryModel(traces, vectorized=False).evaluate(
            config
        )
        assert vec_report == scalar_report


class TestBatchedEvaluation:
    def test_empty_batch(self):
        assert FarMemoryModel([make_trace()]).evaluate_many([]) == []

    def test_batch_matches_individual_evaluates(self):
        model = FarMemoryModel([make_trace(promo_ages=[300.0] * 20)])
        configs = [
            ThresholdPolicyConfig(percentile_k=50, warmup_seconds=0),
            ThresholdPolicyConfig(percentile_k=99),
            ThresholdPolicyConfig(fixed_threshold_seconds=240.0),
        ]
        batched = model.evaluate_many(configs)
        assert batched == [model.evaluate(c) for c in configs]

    def test_throughput_metrics(self):
        registry = MetricRegistry()
        model = FarMemoryModel([make_trace()], registry=registry)
        model.evaluate_many([ThresholdPolicyConfig(),
                             ThresholdPolicyConfig(percentile_k=50.0)])
        configs_total = registry.counter(
            MetricName.MODEL_CONFIGS_EVALUATED_TOTAL
        )
        seconds = registry.histogram(MetricName.MODEL_EVALUATION_SECONDS)
        compiled_total = registry.counter(
            MetricName.MODEL_TRACES_COMPILED_TOTAL
        )
        assert configs_total.value == 2.0
        assert seconds.count == 1
        assert compiled_total.value == 1.0

    def test_traces_compile_once(self):
        model = FarMemoryModel([make_trace()])
        first = model.compiled_traces
        model.evaluate(ThresholdPolicyConfig())
        assert model.compiled_traces is first

    def test_close_is_idempotent_and_context_manager_closes(self):
        with FarMemoryModel([make_trace()]) as model:
            model.evaluate(ThresholdPolicyConfig())
        model.close()
        # Still usable after close: the next evaluation rebuilds lazily.
        report = model.evaluate(ThresholdPolicyConfig())
        assert report.job_results
