"""Unit and constant conversions."""

import pytest

from repro.common import units


def test_page_constants_match_paper():
    assert units.PAGE_SIZE == 4096
    assert units.KSTALED_SCAN_PERIOD == 120
    assert units.MAX_PAGE_AGE_SCANS == 255
    assert units.MAX_PAGE_AGE_SECONDS == 255 * 120  # 8.5 hours
    assert units.ZSMALLOC_MAX_PAYLOAD == 2990
    assert units.TARGET_PROMOTION_RATE_PCT_PER_MIN == pytest.approx(0.2)


def test_max_age_is_8_5_hours():
    assert units.MAX_PAGE_AGE_SECONDS == pytest.approx(8.5 * units.HOUR)


def test_pages_bytes_roundtrip():
    assert units.pages_to_bytes(10) == 40960
    assert units.bytes_to_pages(units.pages_to_bytes(123)) == 123


def test_cycles_seconds_roundtrip():
    seconds = 1.5e-6
    cycles = units.seconds_to_cycles(seconds)
    assert units.cycles_to_seconds(cycles) == pytest.approx(seconds)


def test_cycles_conversion_uses_clock():
    assert units.seconds_to_cycles(1.0, cpu_hz=1e9) == pytest.approx(1e9)
    assert units.cycles_to_seconds(2e9, cpu_hz=1e9) == pytest.approx(2.0)


@pytest.mark.parametrize(
    "n_bytes,expected",
    [
        (512, "512 B"),
        (2048, "2.00 KiB"),
        (3 * units.MIB, "3.00 MiB"),
        (int(1.5 * units.GIB), "1.50 GiB"),
    ],
)
def test_format_bytes(n_bytes, expected):
    assert units.format_bytes(n_bytes) == expected


@pytest.mark.parametrize(
    "seconds,expected",
    [
        (30, "30.0 s"),
        (90, "1.5 min"),
        (2 * units.HOUR, "2.0 h"),
        (3 * units.DAY, "3.0 d"),
    ],
)
def test_format_duration(seconds, expected):
    assert units.format_duration(seconds) == expected


def test_zsmalloc_cutoff_is_73_percent_of_page():
    assert units.ZSMALLOC_MAX_PAYLOAD / units.PAGE_SIZE == pytest.approx(
        0.73, abs=0.01
    )
