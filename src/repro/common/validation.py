"""Small argument-validation helpers.

These keep constructor bodies readable: each helper validates one property
and raises :class:`~repro.common.errors.ConfigurationError` with a message
naming the offending parameter.
"""

from __future__ import annotations

from typing import Optional, Sequence, TypeVar

from repro.common.errors import ConfigurationError

T = TypeVar("T")

__all__ = [
    "require",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_fraction",
    "check_sorted_unique",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def check_positive(value: float, name: str) -> float:
    """Validate ``value > 0`` and return it."""
    require(value > 0, f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate ``value >= 0`` and return it."""
    require(value >= 0, f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    inclusive: bool = True,
) -> float:
    """Validate ``low <= value <= high`` (or strict, if not inclusive)."""
    if inclusive:
        ok = (low is None or value >= low) and (high is None or value <= high)
    else:
        ok = (low is None or value > low) and (high is None or value < high)
    bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
    require(ok, f"{name} must be in {bounds}, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate ``0 <= value <= 1`` and return it."""
    return check_in_range(value, name, 0.0, 1.0)


def check_sorted_unique(values: Sequence[float], name: str) -> Sequence[float]:
    """Validate that ``values`` is strictly increasing and non-empty."""
    require(len(values) > 0, f"{name} must be non-empty")
    for earlier, later in zip(values, list(values)[1:]):
        require(
            later > earlier,
            f"{name} must be strictly increasing, got {list(values)!r}",
        )
    return values
