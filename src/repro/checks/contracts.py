"""Runtime column-contract verification (the dynamic half of CON001).

The static pass (:mod:`repro.checks.flow.contracts`) checks the
assignments it can see; anything built dynamically — ``np.bincount``
results, ``setattr`` loops over a field table, arrays arriving from
disk — is invisible to it.  This module closes the gap: owning modules
pass their ``COLUMN_CONTRACTS`` table and a live object, and every
declared column is checked for dtype and rank against the real array.

Call sites guard with :func:`repro.checks.invariants.invariants_enabled`
so the check is free unless ``REPRO_CHECKS=1`` — same discipline as the
accounting invariants.  This module deliberately imports nothing from
``kernel``/``model`` (they import *us*); objects are duck-typed.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.checks.invariants import InvariantViolation

__all__ = ["verify_column_contracts"]


def verify_column_contracts(
    obj: Any,
    contracts: Mapping[str, Mapping[str, object]],
    where: str = "",
) -> None:
    """Assert every declared column of ``obj`` matches its contract.

    Args:
        obj: the live instance (e.g. a ``MachinePagePool`` or a
            ``CompiledTrace``).  Contract keys are matched against the
            names of every class in ``type(obj).__mro__``, so contracts
            bind to subclasses too.
        contracts: the owning module's ``COLUMN_CONTRACTS`` literal:
            ``"Class.attr" -> {"dtype": str, "ndim": int}``.
        where: context string for the violation message (call site).

    Raises:
        InvariantViolation: a column is missing, is not an ndarray, or
            has the wrong dtype/rank.
    """
    class_names = {cls.__name__ for cls in type(obj).__mro__}
    context = f" [{where}]" if where else ""
    for key, contract in contracts.items():
        cls_name, _, attr = key.partition(".")
        if cls_name not in class_names:
            continue
        array = getattr(obj, attr, None)
        if array is None:
            raise InvariantViolation(
                f"column contract {key!r} violated{context}: attribute "
                f"missing on live {type(obj).__name__}"
            )
        if not isinstance(array, np.ndarray):
            raise InvariantViolation(
                f"column contract {key!r} violated{context}: expected an "
                f"ndarray, found {type(array).__name__}"
            )
        want_dtype = contract.get("dtype")
        if want_dtype is not None and array.dtype != np.dtype(str(want_dtype)):
            raise InvariantViolation(
                f"column contract {key!r} violated{context}: declared "
                f"dtype={want_dtype}, live array is {array.dtype}"
            )
        want_ndim = contract.get("ndim")
        if want_ndim is not None and array.ndim != int(want_ndim):  # type: ignore[call-overload]
            raise InvariantViolation(
                f"column contract {key!r} violated{context}: declared "
                f"ndim={want_ndim}, live array has shape {array.shape}"
            )
