"""DET001 positive fixture: wall-clock reads in simulation code."""

import time
import datetime
from time import perf_counter


def stamp():
    started = time.time()  # finding: time.time
    tick = perf_counter()  # finding: from-import alias
    today = datetime.datetime.now()  # finding: datetime.now
    return started, tick, today
