"""The §4.3 threshold controller, rule by rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.core.histograms import AgeHistogram, default_age_bins
from repro.core.slo import PromotionRateSlo
from repro.core.threshold_policy import (
    DISABLED,
    ColdAgeThresholdPolicy,
    FixedThresholdPolicy,
    PaperPolicy,
    ThresholdPolicyConfig,
    as_policy,
    best_threshold,
)


def _promotion_hist(bins, ages):
    hist = AgeHistogram(bins)
    hist.add_ages(np.array(ages, dtype=float))
    return hist


class TestBestThreshold:
    def test_picks_smallest_meeting_slo(self, bins):
        # Working set 10_000 pages at 0.2%/min -> budget 20 promos/min.
        slo = PromotionRateSlo(target_pct_per_min=0.2)
        # 30 accesses to pages aged ~130s, 10 to pages aged ~500s.
        hist = _promotion_hist(bins, [130] * 30 + [500] * 10)
        # At T=120: 40 promos/min > 20.  At T=240: 10 <= 20 -> chosen.
        assert best_threshold(hist, 10_000, slo) == 240.0

    def test_all_violating_returns_disabled(self, bins):
        slo = PromotionRateSlo(target_pct_per_min=0.2)
        hist = _promotion_hist(bins, [40000] * 1000)
        assert best_threshold(hist, 10_000, slo) == DISABLED

    def test_quiet_job_gets_most_aggressive(self, bins):
        slo = PromotionRateSlo()
        hist = AgeHistogram(bins)
        assert best_threshold(hist, 10_000, slo) == bins.min_threshold

    def test_interval_scaling(self, bins):
        slo = PromotionRateSlo(target_pct_per_min=0.2)
        # 30 cold accesses over 5 minutes = 6/min -> within budget 20.
        hist = _promotion_hist(bins, [130] * 30)
        assert best_threshold(hist, 10_000, slo, interval_seconds=300) == 120.0
        # Same 30 accesses in one minute = 30/min -> must back off.
        assert best_threshold(hist, 10_000, slo, interval_seconds=60) == 240.0


class TestThresholdPolicyConfig:
    def test_defaults(self):
        config = ThresholdPolicyConfig()
        assert config.percentile_k == 98.0
        assert config.warmup_seconds == 600

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThresholdPolicyConfig(percentile_k=101)
        with pytest.raises(ConfigurationError):
            ThresholdPolicyConfig(warmup_seconds=-1)
        with pytest.raises(ConfigurationError):
            ThresholdPolicyConfig(history_length=0)


class TestColdAgeThresholdPolicy:
    def make(self, bins, k=50.0, warmup=120, history=100):
        config = ThresholdPolicyConfig(
            percentile_k=k, warmup_seconds=warmup, history_length=history
        )
        return ColdAgeThresholdPolicy(config, bins, PromotionRateSlo())

    def test_disabled_during_warmup(self, bins):
        policy = self.make(bins, warmup=300)
        assert policy.threshold() == DISABLED
        policy.observe(AgeHistogram(bins), 1000)  # 60s elapsed
        assert not policy.warmed_up
        assert policy.threshold() == DISABLED

    def test_enables_after_warmup(self, bins):
        policy = self.make(bins, warmup=120)
        policy.observe(AgeHistogram(bins), 1000)
        policy.observe(AgeHistogram(bins), 1000)
        assert policy.warmed_up
        assert policy.threshold() == bins.min_threshold

    def test_percentile_of_history(self, bins):
        policy = self.make(bins, k=50.0, warmup=0)
        # Nine quiet minutes -> best 120; one noisy minute -> best higher.
        for _ in range(9):
            policy.observe(AgeHistogram(bins), 1000)
        noisy = _promotion_hist(bins, [130] * 500)
        policy.observe(noisy, 1000)
        # Median of [120]*9 + [high] stays 120; last best dominates via
        # the spike rule instead.
        assert policy.threshold() > bins.min_threshold

    def test_spike_reaction_uses_last_best(self, bins):
        policy = self.make(bins, k=50.0, warmup=0)
        for _ in range(20):
            policy.observe(AgeHistogram(bins), 1000)
        assert policy.threshold() == bins.min_threshold
        # Sudden burst of cold-page accesses.
        burst = _promotion_hist(bins, [1000] * 500)
        policy.observe(burst, 1000)
        # K-th percentile of history is still 120, but the spike rule
        # escalates to the last minute's best threshold immediately.
        assert policy.threshold() >= 1920

    def test_high_k_is_conservative(self, bins):
        lo = self.make(bins, k=10.0, warmup=0)
        hi = self.make(bins, k=99.0, warmup=0)
        history = [[130] * 50, [], [], [500] * 50, [], [], [], [], [], []]
        for ages in history:
            lo.observe(_promotion_hist(bins, ages), 1000)
            hi.observe(_promotion_hist(bins, ages), 1000)
        # Clear the spike rule with one final quiet minute.
        lo.observe(AgeHistogram(bins), 1000)
        hi.observe(AgeHistogram(bins), 1000)
        assert hi.threshold() >= lo.threshold()

    def test_history_bounded(self, bins):
        policy = self.make(bins, warmup=0, history=5)
        for _ in range(10):
            policy.observe(AgeHistogram(bins), 100)
        assert len(policy.history) == 5

    def test_reset(self, bins):
        policy = self.make(bins, warmup=60)
        policy.observe(AgeHistogram(bins), 100)
        assert policy.warmed_up
        policy.reset()
        assert not policy.warmed_up
        assert policy.threshold() == DISABLED

    def test_grid_mismatch_rejected(self, bins):
        from repro.core.histograms import AgeBins

        policy = self.make(bins, warmup=0)
        with pytest.raises(ConfigurationError):
            policy.observe(AgeHistogram(AgeBins((120, 480))), 100)


@settings(max_examples=30, deadline=None)
@given(
    ages_by_minute=st.lists(
        st.lists(
            st.floats(min_value=0, max_value=30000, allow_nan=False),
            max_size=50,
        ),
        min_size=1,
        max_size=20,
    ),
    k=st.floats(min_value=0, max_value=100),
)
def test_policy_always_returns_candidate_or_disabled(ages_by_minute, k):
    """Property: the policy only ever emits grid thresholds or DISABLED."""
    bins = default_age_bins()
    policy = ColdAgeThresholdPolicy(
        ThresholdPolicyConfig(percentile_k=k, warmup_seconds=0), bins
    )
    valid = set(float(t) for t in bins.thresholds) | {DISABLED}
    for ages in ages_by_minute:
        hist = AgeHistogram(bins)
        hist.add_ages(np.array(ages))
        policy.observe(hist, 100)
        assert policy.threshold() in valid


@settings(max_examples=30, deadline=None)
@given(
    n_quiet=st.integers(min_value=1, max_value=30),
    wss=st.integers(min_value=1, max_value=100000),
)
def test_quiet_history_always_most_aggressive(n_quiet, wss):
    """Property: with no promotions ever, the policy goes to 120 s."""
    bins = default_age_bins()
    policy = ColdAgeThresholdPolicy(
        ThresholdPolicyConfig(percentile_k=98.0, warmup_seconds=0), bins
    )
    for _ in range(n_quiet):
        policy.observe(AgeHistogram(bins), wss)
    assert policy.threshold() == bins.min_threshold


class TestPolicySeam:
    """`ColdMemoryPolicy`: the deployable unit behind `deploy_policy`."""

    def test_as_policy_coerces_bare_configs_to_the_paper_policy(self):
        config = ThresholdPolicyConfig(percentile_k=95.0)
        policy = as_policy(config)
        assert policy == PaperPolicy(config)
        assert policy.config is config

    def test_as_policy_passes_policies_through(self):
        policy = FixedThresholdPolicy(threshold_seconds=7200.0)
        assert as_policy(policy) is policy

    def test_as_policy_rejects_everything_else(self):
        with pytest.raises(TypeError):
            as_policy(98.0)

    def test_policies_are_hashable_value_objects(self):
        assert PaperPolicy() == PaperPolicy()
        assert len({PaperPolicy(), PaperPolicy(),
                    FixedThresholdPolicy()}) == 2

    def test_paper_policy_builds_the_reference_controller(self, bins):
        config = ThresholdPolicyConfig(percentile_k=90.0)
        controller = PaperPolicy(config).build(bins)
        assert isinstance(controller, ColdAgeThresholdPolicy)
        assert controller.config is config

    def test_fixed_policy_pins_the_threshold(self, bins):
        policy = FixedThresholdPolicy(
            threshold_seconds=7200.0, warmup_seconds=0
        )
        controller = policy.build(bins)
        # Whatever the promotion history says, the published threshold
        # never moves.
        hist = _promotion_hist(bins, [130] * 500)
        controller.observe(hist, working_set_size_pages=1000)
        assert controller.threshold() == 7200.0

    def test_describe_names_the_tunables(self):
        assert "95" in PaperPolicy(
            ThresholdPolicyConfig(percentile_k=95.0)
        ).describe()
        assert "7200" in FixedThresholdPolicy(7200.0).describe()
