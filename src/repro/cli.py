"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``quickstart`` — build a small fleet, run it, print the headline report;
* ``autotune`` — run the full §5.3 pipeline (traces -> GP-Bandit -> deploy)
  and print the before/after comparison;
* ``figures`` — regenerate the paper's figure tables into a directory;
* ``traces`` — run a fleet and dump its telemetry as JSON-lines for
  offline experimentation with the fast far memory model.
* ``metrics`` — run an instrumented fleet and print the health report,
  or the full metric exposition (``--format prom|json``).
* ``bench`` — time the same fleet serially and under the parallel
  engine (``BENCH_fleet.json``), with ``--model`` the fast far memory
  model scalar-vs-vectorized (``BENCH_model.json``), or with ``--trace``
  the columnar trace store against the object path
  (``BENCH_trace.json``).
* ``trace`` — inspect and convert columnar trace stores: ``stats``,
  ``window``, ``export``/``import`` (jsonl <-> columnar), ``compact``.
* ``chaos`` — run a named fault-injection scenario and report the SLO
  impact against a fault-free baseline of the same fleet and seed.
* ``canary`` — canary a policy through the §5.3 rollout ladder on a live
  fleet (optionally under chaos) and report the per-stage verdicts.
* ``ci`` — the one-command gate: tier-1 tests with runtime invariants on
  (``REPRO_CHECKS=1``) plus the ``repro lint`` static-analysis suite.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import (
    cold_memory_vs_threshold,
    compression_ratios_per_job,
    decompression_latency_samples,
    per_job_cold_fractions,
    per_job_promotion_rates,
    render_cdf,
    render_fleet_health,
    render_flame_table,
    render_series,
    render_table,
    render_violins,
    per_machine_cold_fractions_by_cluster,
    per_machine_coverage_by_cluster,
    violin_stats,
)
from repro.autotuner import AutotuningPipeline
from repro.cluster import quickfleet
from repro.common.units import HOUR, MIB, MINUTE, PAGE_SIZE
from repro.core import TcoModel, ThresholdPolicyConfig
from repro.model import FarMemoryModel
from repro.obs import MetricRegistry, Tracer, profile_to_registry

__all__ = ["main", "metrics_entry"]


def _add_fleet_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clusters", type=int, default=2)
    parser.add_argument("--machines", type=int, default=3,
                        help="machines per cluster")
    parser.add_argument("--jobs", type=int, default=4,
                        help="jobs per machine")
    parser.add_argument("--hours", type=float, default=6.0,
                        help="simulated hours")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dram-gib", type=float, default=8.0)
    parser.add_argument("--cold-target", type=float, default=0.20,
                        help="fleet-mean cold-fraction target")


def _build_fleet(args: argparse.Namespace, policy=None, registry=None,
                 tracer=None):
    return quickfleet(
        clusters=args.clusters,
        machines_per_cluster=args.machines,
        jobs_per_machine=args.jobs,
        seed=args.seed,
        machine_dram_gib=args.dram_gib,
        mean_cold_fraction=args.cold_target,
        job_pages_range=((16 * MIB) // PAGE_SIZE, (64 * MIB) // PAGE_SIZE),
        policy_config=policy,
        registry=registry,
        tracer=tracer,
    )


def cmd_quickstart(args: argparse.Namespace) -> int:
    """Run a fleet and print the coverage/TCO report."""
    fleet = _build_fleet(args)
    print(f"Simulating {args.hours:g} hours on "
          f"{len(fleet.machines)} machines...")
    fleet.run(int(args.hours * HOUR))
    report = fleet.coverage_report()
    ratios = compression_ratios_per_job(fleet)
    mean_ratio = sum(ratios) / len(ratios) if ratios else 3.0
    tco = TcoModel().evaluate(
        coverage=report["coverage"],
        cold_fraction=report["cold_fraction_at_min_threshold"],
        compression_ratio=mean_ratio,
    )
    print(render_table(
        ["metric", "value"],
        [
            ("coverage", f"{report['coverage']:.1%}"),
            ("cold fraction @120s",
             f"{report['cold_fraction_at_min_threshold']:.1%}"),
            ("mean compression ratio", f"{mean_ratio:.2f}x"),
            ("promotion p98 (samples)",
             f"{report['promotion_rate_p98_pct_per_min']:.3f} %/min"),
            ("DRAM TCO saving", f"{tco.dram_saving_fraction:.2%}"),
        ],
        title="Fleet report",
    ))
    return 0


def cmd_autotune(args: argparse.Namespace) -> int:
    """Trace, tune, deploy, and compare before/after coverage."""
    hand_tuned = ThresholdPolicyConfig(percentile_k=98.0, warmup_seconds=1800)
    fleet = _build_fleet(args, policy=hand_tuned)
    print(f"Phase 1: {args.hours:g} h under hand-tuned parameters...")
    fleet.run(int(args.hours * HOUR))
    before = fleet.coverage_report()

    print(f"Phase 2: GP-Bandit over {len(fleet.trace_db)} trace entries...")
    model = FarMemoryModel(fleet.trace_db.traces())
    result = AutotuningPipeline(model, batch_size=4,
                                seed=args.seed).run(args.iterations)
    best = result.best_config
    print(f"  winner: K={best.percentile_k:.1f}, S={best.warmup_seconds}s "
          f"({len(result.trials)} trials)")

    print("Phase 3: deploy and soak...")
    fleet.deploy_policy(best)
    fleet.run(int(args.hours * HOUR / 2))
    after = fleet.coverage_report()
    print(render_table(
        ["", "coverage", "p98 %/min"],
        [
            ("hand-tuned", f"{before['coverage']:.1%}",
             f"{before['promotion_rate_p98_pct_per_min']:.3f}"),
            ("autotuned", f"{after['coverage']:.1%}",
             f"{after['promotion_rate_p98_pct_per_min']:.3f}"),
        ],
        title="Autotuning result",
    ))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate the paper's figure tables from a fresh fleet."""
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    fleet = _build_fleet(args)
    print(f"Simulating {args.hours:g} hours for figure data...")
    fleet.run(int(args.hours * HOUR))
    traces = fleet.trace_db.traces()

    figures = {
        "fig1": render_series(
            [p.threshold_seconds for p in cold_memory_vs_threshold(traces)],
            [round(100 * p.cold_fraction, 2)
             for p in cold_memory_vs_threshold(traces)],
            "T (s)", "cold %", "Fig. 1 — cold memory vs threshold",
        ),
        "fig2": render_violins(
            {
                name: violin_stats(fractions)
                for name, fractions in per_machine_cold_fractions_by_cluster(
                    fleet, 120
                ).items()
                if fractions
            },
            "Fig. 2 — per-machine cold memory by cluster",
        ),
        "fig3": render_cdf(
            [100 * f for f in per_job_cold_fractions(traces)],
            "Fig. 3 — per-job cold percentage", unit="%",
        ),
        "fig6": render_violins(
            {
                name: violin_stats(coverages)
                for name, coverages in per_machine_coverage_by_cluster(
                    fleet
                ).items()
                if coverages
            },
            "Fig. 6 — per-machine coverage by cluster",
        ),
        "fig7": render_cdf(
            per_job_promotion_rates(fleet.sli_history),
            "Fig. 7 — per-job promotion rate", unit=" %/min",
        ),
        "fig9b": render_cdf(
            [s * 1e6 for s in decompression_latency_samples(fleet)],
            "Fig. 9b — decompression latency", unit=" us",
        ),
    }
    for name, text in figures.items():
        (out / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(text)
        print()
    print(f"Wrote {len(figures)} figures to {out}/")
    return 0


def cmd_traces(args: argparse.Namespace) -> int:
    """Run a fleet and dump its telemetry to JSON-lines."""
    fleet = _build_fleet(args)
    print(f"Simulating {args.hours:g} hours...")
    fleet.run(int(args.hours * HOUR))
    written = fleet.trace_db.save_jsonl(args.output)
    print(f"Wrote {written} trace entries to {args.output}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run an instrumented fleet and emit its metrics.

    ``--format table`` (the default) prints the human fleet-health report
    plus the span profile; ``prom`` emits the Prometheus text exposition;
    ``json`` emits one JSON object per metric (JSON-lines).
    """
    registry = MetricRegistry()
    tracer = Tracer()
    fleet = quickfleet(
        clusters=args.clusters,
        machines_per_cluster=args.machines,
        jobs_per_machine=args.jobs,
        seed=args.seed,
        machine_dram_gib=args.dram_gib,
        mean_cold_fraction=args.cold_target,
        job_pages_range=((16 * MIB) // PAGE_SIZE, (64 * MIB) // PAGE_SIZE),
        registry=registry,
        tracer=tracer,
    )
    if args.format == "table":
        print(f"Simulating {args.minutes:g} minutes on "
              f"{len(fleet.machines)} machines...")
    fleet.run(int(args.minutes * MINUTE))
    report = fleet.fleet_health_report()
    profile_to_registry(tracer, registry)

    if args.format == "prom":
        text = registry.expose_text()
    elif args.format == "json":
        text = registry.export_jsonl()
    else:
        text = "\n\n".join(
            [render_fleet_health(report), render_flame_table(tracer)]
        )

    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(f"Wrote metrics to {args.output}")
    else:
        print(text)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Throughput comparison: fleet engine (BENCH_fleet.json), the fast
    far memory model (``--model``, BENCH_model.json), or the columnar
    trace store (``--trace``, BENCH_trace.json)."""
    if args.model:
        return _cmd_bench_model(args)
    if args.trace:
        return _cmd_bench_trace(args)
    from repro.engine.bench import run_bench

    kwargs = dict(
        hours=args.hours,
        clusters=args.clusters,
        machines=args.machines,
        jobs=args.jobs,
        seed=args.seed,
        workers=args.workers,
        barrier_seconds=args.barrier_seconds,
    )
    if kwargs["jobs"] is None:
        kwargs["jobs"] = 1
    if args.quick:
        kwargs.update(hours=0.5, clusters=2, machines=10, jobs=1,
                      tick_machines=10, tick_jobs=16, tick_ticks=10,
                      equivalence_hours=0.25, thousand_machines=0)
    print(f"Benchmarking {kwargs['clusters']} clusters x "
          f"{kwargs['machines']} machines for {kwargs['hours']:g} "
          f"simulated hours (tick path, equivalence, serial vs "
          f"parallel)...")
    report = run_bench(output=args.output, **kwargs)
    tick = report["tick_path"]
    print(render_table(
        ["", "wall s", "ticks/s"],
        [
            ("scalar", f"{tick['scalar']['wall_seconds']:.2f}",
             f"{tick['scalar']['ticks_per_second']:.1f}"),
            ("columnar", f"{tick['columnar']['wall_seconds']:.2f}",
             f"{tick['columnar']['ticks_per_second']:.1f}"),
        ],
        title=f"Tick path, {tick['machines']} machines x "
              f"{tick['jobs_per_machine']} jobs (columnar "
              f"{tick['speedup_columnar']:.1f}x, "
              f"equivalent={tick['equivalent']})",
    ))
    eq = report["equivalence"]
    print(f"equivalence: scalar == columnar/machine == columnar/cluster "
          f"over {eq['simulated_hours']:g} h of churn: {eq['equivalent']} "
          f"({eq['sli_samples']} SLI samples)")
    speedup = report["speedup"]
    speedup_text = "n/a" if speedup is None else f"{speedup:.2f}x"
    print(render_table(
        ["", "wall s", "ticks/s", "pages scanned/s"],
        [
            ("serial", f"{report['serial']['wall_seconds']:.2f}",
             f"{report['serial']['ticks_per_second']:.1f}",
             f"{report['serial']['pages_scanned_per_second']:.0f}"),
            (f"parallel x{report['parallel']['workers']}",
             f"{report['parallel']['wall_seconds']:.2f}",
             f"{report['parallel']['ticks_per_second']:.1f}",
             f"{report['parallel']['pages_scanned_per_second']:.0f}"),
        ],
        title=f"Fleet throughput (speedup {speedup_text}, "
              f"equivalent={report['equivalent']})",
    ))
    if report["note"]:
        print(f"note: {report['note']}")
    if report["parallel"]["fallback_reason"]:
        print(f"note: ran serially — {report['parallel']['fallback_reason']}")
    thousand = report["thousand_machine_hour"]
    if thousand is not None:
        line = (f"thousand-machine hour: {thousand['machines']} machines "
                f"on one core in {thousand['wall_seconds']:.2f}s")
        if "under_scalar_8_machine_bench" in thousand:
            line += (f" — under the 8-machine scalar bench "
                     f"({thousand['scalar_8_machine_wall_seconds']:.2f}s): "
                     f"{thousand['under_scalar_8_machine_bench']}")
        print(line)
    print(f"Wrote {args.output}")
    return 0 if report["equivalent"] else 1


def _cmd_bench_model(args: argparse.Namespace) -> int:
    """The ``repro bench --model`` half: fast-model throughput."""
    from repro.model.bench import run_model_bench

    kwargs = dict(
        jobs=args.jobs if args.jobs is not None else 24,
        intervals=args.intervals,
        configs=args.configs,
        workers=args.workers,
        seed=args.seed,
    )
    if args.quick:
        kwargs.update(jobs=6, intervals=48, configs=4)
    # The fleet default filename would mislabel a model report.
    output = args.output
    if output == "BENCH_fleet.json":
        output = "BENCH_model.json"
    print(f"Benchmarking the fast model: {kwargs['jobs']} traces x "
          f"{kwargs['intervals']} intervals x {kwargs['configs']} configs "
          f"(scalar per-config, then batched vectorized)...")
    report = run_model_bench(output=output, **kwargs)
    rows = [
        ("scalar per-config", f"{report['scalar']['wall_seconds']:.2f}",
         f"{report['scalar']['configs_per_second']:.2f}"),
        ("batched vectorized", f"{report['vectorized']['wall_seconds']:.2f}",
         f"{report['vectorized']['configs_per_second']:.2f}"),
    ]
    if report["parallel"] is not None:
        rows.append(
            (f"vectorized x{report['parallel']['workers']}",
             f"{report['parallel']['wall_seconds']:.2f}",
             f"{report['parallel']['configs_per_second']:.2f}")
        )
    print(render_table(
        ["", "wall s", "configs/s"],
        rows,
        title=f"Model throughput (speedup "
              f"{report['speedup_vectorized']:.2f}x, "
              f"equivalent={report['equivalent']})",
    ))
    print(f"Wrote {output}")
    return 0 if report["equivalent"] else 1


def _cmd_bench_trace(args: argparse.Namespace) -> int:
    """The ``repro bench --trace`` half: columnar store vs object path."""
    from repro.tracestore.bench import run_trace_bench

    kwargs = dict(
        jobs=args.jobs if args.jobs is not None else 24,
        intervals=args.intervals,
        configs=args.configs,
        seed=args.seed,
    )
    if args.quick:
        kwargs.update(jobs=6, intervals=48, configs=2)
    # The fleet default filename would mislabel a trace-store report.
    output = args.output
    if output == "BENCH_fleet.json":
        output = "BENCH_trace.json"
    print(f"Benchmarking the trace store: {kwargs['jobs']} jobs x "
          f"{kwargs['intervals']} intervals, replayed from objects and "
          f"from on-disk columns...")
    report = run_trace_bench(output=output, **kwargs)
    obj, col = report["object_path"], report["columnar_path"]
    print(render_table(
        ["", "compile s", "evaluate s", "peak MiB"],
        [
            ("object path", f"{obj['compile_wall_seconds']:.3f}",
             f"{obj['evaluate_wall_seconds']:.3f}",
             f"{obj['peak_bytes'] / MIB:.1f}"),
            ("columnar path", f"{col['compile_wall_seconds']:.3f}",
             f"{col['evaluate_wall_seconds']:.3f}",
             f"{col['peak_bytes'] / MIB:.1f}"),
        ],
        title=f"Trace store ({report['ingest']['rows_per_second']:.0f} "
              f"rows/s ingest, compile speedup "
              f"{report['compile_speedup']:.2f}x, peak-mem ratio "
              f"{report['peak_mem_ratio']:.3f}, "
              f"equivalent={report['equivalent']})",
    ))
    print(f"Wrote {output}")
    return 0 if report["equivalent"] else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Inspect/convert columnar trace stores (``repro trace ...``)."""
    from repro.common.errors import TraceError
    from repro.tracestore import ColumnarTraceDatabase, TraceStore

    try:
        if args.trace_command == "stats":
            store = TraceStore(args.store, create=False)
            time_range = store.time_range
            rows = [
                ("rows", f"{store.rows_total}"),
                ("jobs", f"{len(store.jobs)}"),
                ("machines", f"{len(store.machines)}"),
                ("segments", f"{len(store.segments)}"),
                ("segment bytes",
                 f"{sum(seg.bytes for seg in store.segments)}"),
                ("downsample factor", f"{store.downsample_factor()}"),
                ("interval seconds", f"{store.interval_seconds}"),
                ("time range",
                 f"{time_range[0]}..{time_range[1]}"
                 if time_range else "(empty)"),
            ]
            print(render_table(["metric", "value"], rows,
                               title=f"Trace store {args.store}"))
            return 0
        if args.trace_command == "window":
            store = TraceStore(args.store, create=False)
            print(render_table(
                ["start", "rows", "jobs", "wss pages", "cold pages",
                 "promoted"],
                [
                    (f"{w.start}", f"{w.rows}", f"{w.jobs}",
                     f"{w.working_set_pages}", f"{w.cold_pages}",
                     f"{w.promoted_pages}")
                    for w in store.window_summaries()
                ],
                title=f"Per-window aggregates "
                      f"({store.window_seconds} s windows)",
            ))
            return 0
        if args.trace_command == "export":
            TraceStore(args.store, create=False)  # fail fast on bad stores
            db = ColumnarTraceDatabase(args.store)
            written = db.save_jsonl(args.output)
            print(f"Exported {written} trace entries to {args.output}")
            return 0
        if args.trace_command == "import":
            db = ColumnarTraceDatabase.load_jsonl(
                args.input, args.store, buffer_rows=args.buffer_rows
            )
            print(f"Imported {len(db)} trace entries into {args.store} "
                  f"({len(db.store.segments)} segments)")
            return 0
        if args.trace_command == "compact":
            store = TraceStore(args.store, create=False)
            removed = store.compact(args.factor, before=args.before)
            print(f"Compacted {args.store}: merged away {removed} rows "
                  f"(factor {args.factor}, {store.rows_total} rows remain)")
            return 0
    except TraceError as exc:
        print(f"repro trace: error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled trace command {args.trace_command!r}")


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a chaos scenario; compare SLO impact with a fault-free run."""
    from repro.engine import FleetEngine
    from repro.faults import attach_scenario

    seconds = int(args.hours * HOUR)

    def run_once(inject: bool):
        # Private observability per run so the two runs never share
        # counters and the comparison stays clean.
        fleet = _build_fleet(args, registry=MetricRegistry(),
                             tracer=Tracer())
        if inject:
            attach_scenario(fleet, args.scenario, seconds,
                            seed=args.chaos_seed)
        if args.workers is not None and args.workers > 1:
            FleetEngine(fleet, workers=args.workers).run(seconds)
        else:
            fleet.run(seconds)
        return fleet

    def slo_row(fleet):
        report = fleet.coverage_report()
        samples = [
            s for s in fleet.sli_history
            if s.working_set_pages > 0
            and s.normalized_rate_pct_per_min == s.normalized_rate_pct_per_min
        ]
        slo = fleet.clusters[0].slo
        violations = sum(
            1 for s in samples
            if s.normalized_rate_pct_per_min > slo.target_pct_per_min
        )
        violation_pct = violations / len(samples) if samples else 0.0
        return report, violation_pct

    print(f"Baseline: {args.hours:g} fault-free hours "
          f"(seed {args.seed})...")
    baseline = run_once(inject=False)
    print(f"Chaos: same fleet under scenario {args.scenario!r} "
          f"(chaos seed {args.chaos_seed})...")
    chaos = run_once(inject=True)

    base_report, base_viol = slo_row(baseline)
    chaos_report, chaos_viol = slo_row(chaos)
    injected = sum(
        c.fault_injector.faults_injected
        for c in chaos.clusters if c.fault_injector is not None
    )
    print(render_table(
        ["", "coverage", "p98 %/min", "SLO violations", "trace entries"],
        [
            ("fault-free", f"{base_report['coverage']:.1%}",
             f"{base_report['promotion_rate_p98_pct_per_min']:.3f}",
             f"{base_viol:.2%}", f"{len(baseline.trace_db)}"),
            (f"chaos ({args.scenario})", f"{chaos_report['coverage']:.1%}",
             f"{chaos_report['promotion_rate_p98_pct_per_min']:.3f}",
             f"{chaos_viol:.2%}", f"{len(chaos.trace_db)}"),
        ],
        title=f"SLO impact of {injected} injected fault(s)",
    ))
    slo_limit = chaos.clusters[0].slo.target_pct_per_min
    within = chaos_report["promotion_rate_p98_pct_per_min"] <= slo_limit
    print(f"promotion-rate SLO ({slo_limit:g} %/min at p98): "
          f"{'met' if within else 'VIOLATED'} under chaos")
    return 0 if within else 1


def cmd_canary(args: argparse.Namespace) -> int:
    """Canary a policy through the rollout ladder on a live fleet."""
    from repro.autotuner import (
        DEFAULT_STAGES,
        DeploymentStage,
        FleetController,
    )
    from repro.baselines import ThermostatPolicy
    from repro.core import FixedThresholdPolicy, PaperPolicy
    from repro.engine import FleetEngine
    from repro.faults import attach_scenario

    if args.smoke:
        from repro.autotuner import canary_smoke

        print("Running the canary controller smoke (breach rollback, "
              "serial==parallel, fail-closed on silence)...")
        report = canary_smoke()
        print(render_table(
            ["check", "result"],
            [(k, str(v)) for k, v in report.items()],
            title="Canary smoke",
        ))
        return 0

    if args.policy == "fixed":
        policy = FixedThresholdPolicy(
            threshold_seconds=args.threshold,
            warmup_seconds=args.warmup_seconds,
        )
    elif args.policy == "thermostat":
        policy = ThermostatPolicy()
    else:
        policy = PaperPolicy(ThresholdPolicyConfig(
            percentile_k=args.percentile_k,
            warmup_seconds=args.warmup_seconds,
        ))

    registry, tracer = MetricRegistry(), Tracer()
    fleet = _build_fleet(args, registry=registry, tracer=tracer)
    soak = int(args.soak_minutes * MINUTE)
    warmup = int(args.warmup_minutes * MINUTE)
    if args.scenario:
        attach_scenario(fleet, args.scenario, warmup + 3 * soak,
                        seed=args.chaos_seed)
    if warmup:
        print(f"Warming up {args.warmup_minutes:g} minutes"
              + (f" under scenario {args.scenario!r}" if args.scenario
                 else "") + "...")
        fleet.run(warmup)
    engine = (
        FleetEngine(fleet, workers=args.workers)
        if args.workers is not None and args.workers > 1
        else None
    )
    stages = tuple(
        DeploymentStage(s.name, s.fleet_fraction, soak)
        for s in DEFAULT_STAGES
    )
    controller = FleetController(
        fleet, stages=stages, slo_limit=args.slo_limit,
        min_coverage=args.min_coverage, registry=registry, tracer=tracer,
        engine=engine,
    )
    print(f"Canarying {policy.describe()} through "
          f"{len(stages)} stages ({args.soak_minutes:g} min soaks)...")
    decision = controller.canary(policy)
    print(render_table(
        ["stage", "verdict", "p98 %/min", "slice samples", "unattributed"],
        [
            (o.stage.name, o.reason, f"{o.p98_promotion_rate:.3f}",
             f"{o.slice_samples}", f"{o.unattributed_samples}")
            for o in decision.outcomes
        ],
        title=f"Canary: {decision.reason}",
    ))
    if decision.promoted:
        print(f"promoted to production ({decision.far_pages} far pages "
              "fleet-wide)")
    else:
        print("rolled back: every touched cluster restored to its prior "
              "policy")
    return 0 if decision.promoted else 1


def cmd_ci(args: argparse.Namespace) -> int:
    """Single gate: tier-1 tests with invariants on, then the lint suite."""
    import os
    import subprocess

    exit_code = 0
    if not args.skip_tests:
        env = dict(os.environ, REPRO_CHECKS="1")
        print("ci: running tier-1 tests with REPRO_CHECKS=1 ...")
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-x", "-q", *args.pytest_args],
            env=env,
        )
        if proc.returncode != 0:
            print(f"ci: tests FAILED (exit {proc.returncode})",
                  file=sys.stderr)
            return proc.returncode
        print("ci: tests passed")
    flow = not args.skip_flow
    print("ci: running repro lint --ci"
          + (" --flow ..." if flow else " (flow passes skipped) ..."))
    lint_args = argparse.Namespace(
        paths=[], format="text", rule=None, baseline=None,
        update_baseline=None, ci=True, flow=flow,
    )
    exit_code = max(exit_code, cmd_lint(lint_args))
    if exit_code == 0 and not args.skip_bench:
        # The quick model-bench smoke gates only on scalar==vectorized
        # equivalence — speedups flake on loaded CI hosts, bit-identical
        # reports must not.
        from repro.model.bench import run_model_bench

        print("ci: running model bench smoke (bench --model --quick) ...")
        report = run_model_bench(jobs=6, intervals=48, configs=4)
        if not report["equivalent"]:
            print("ci: model bench smoke FAILED "
                  "(vectorized replay diverged from the scalar oracle)",
                  file=sys.stderr)
            exit_code = 1
        else:
            print("ci: model bench smoke passed "
                  f"(speedup {report['speedup_vectorized']:.2f}x)")
    if exit_code == 0 and not args.skip_bench:
        # Same idea for the trace store: gate only on the columnar path
        # reproducing the object path bit-identically, never on timing.
        from repro.tracestore.bench import run_trace_bench

        print("ci: running trace bench smoke (bench --trace --quick) ...")
        report = run_trace_bench(jobs=6, intervals=48, configs=2)
        if not report["equivalent"]:
            print("ci: trace bench smoke FAILED "
                  "(columnar replay diverged from the object path)",
                  file=sys.stderr)
            exit_code = 1
        else:
            print("ci: trace bench smoke passed "
                  f"(peak-mem ratio {report['peak_mem_ratio']:.3f})")
    if exit_code == 0 and not args.skip_bench:
        # And for the fleet kernel: the columnar backends (machine- and
        # cluster-pooled) must replay a churning fleet bit-identically
        # to the scalar oracle.  Equivalence only — never timing.
        from repro.engine.bench import columnar_equivalence

        print("ci: running columnar kernel equivalence smoke ...")
        report = columnar_equivalence(clusters=1, machines=2, jobs=4,
                                      hours=0.25)
        if not report["equivalent"]:
            print("ci: columnar equivalence smoke FAILED "
                  "(pooled kernel diverged from the scalar oracle)",
                  file=sys.stderr)
            exit_code = 1
        else:
            print("ci: columnar equivalence smoke passed "
                  f"({report['sli_samples']} SLI samples identical "
                  "across scalar, machine-pooled, cluster-pooled)")
    if exit_code == 0 and not args.skip_bench:
        # Zero-copy telemetry: blocks gathered from pool columns must
        # leave byte-identical stores to the per-entry object oracle,
        # serial and parallel.  Equivalence only — never timing.
        from repro.engine.bench import zero_copy_equivalence

        print("ci: running zero-copy telemetry equivalence smoke ...")
        report = zero_copy_equivalence(clusters=1, machines=2, jobs=4,
                                       hours=0.25)
        if not report["equivalent"]:
            print("ci: zero-copy telemetry smoke FAILED "
                  "(block ingest diverged from the per-entry oracle)",
                  file=sys.stderr)
            exit_code = 1
        else:
            print("ci: zero-copy telemetry smoke passed "
                  f"({report['rows']} rows byte-identical across "
                  "block and entry paths, serial and parallel)")
    if exit_code == 0 and not args.skip_bench:
        # The canary-controller smoke: a deliberately SLO-breaching
        # policy must be rolled back (never promoted), the decision must
        # be bit-identical serial vs parallel, and a zero-telemetry soak
        # must fail closed.
        from repro.autotuner import canary_smoke

        print("ci: running canary controller smoke ...")
        try:
            canary_smoke()
        except AssertionError as exc:
            print(f"ci: canary smoke FAILED ({exc})", file=sys.stderr)
            exit_code = 1
        else:
            print("ci: canary smoke passed (breach rolled back, "
                  "serial==parallel, fail-closed on silence)")
    print("ci: " + ("clean" if exit_code == 0 else "FAILED"))
    return exit_code


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the repro.checks static-analysis suite (``repro lint``)."""
    from repro.checks import LintError, run_external_tools, run_lint

    paths = [Path(p) for p in args.paths] or None
    try:
        result = run_lint(
            paths,
            rules=args.rule or None,
            output_format=args.format,
            baseline=Path(args.baseline) if args.baseline else None,
            update_baseline=(
                Path(args.update_baseline) if args.update_baseline else None
            ),
            flow=getattr(args, "flow", False),
        )
    except LintError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    print(result.report)
    for note in result.notes:
        print(f"note: {note}", file=sys.stderr)
    exit_code = result.exit_code
    if args.ci:
        from repro.checks.runner import default_lint_paths

        tool_lines = run_external_tools(
            [Path(p) for p in args.paths] or default_lint_paths()
        )
        for line in tool_lines:
            print(line, file=sys.stderr)
        if any("FAILED" in line for line in tool_lines):
            exit_code = max(exit_code, 1)
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Software-Defined Far Memory reproduction (ASPLOS'19)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("quickstart", help="run a fleet, print the report")
    _add_fleet_arguments(p)
    p.set_defaults(func=cmd_quickstart)

    p = sub.add_parser("autotune", help="run the GP-Bandit pipeline")
    _add_fleet_arguments(p)
    p.add_argument("--iterations", type=int, default=5)
    p.set_defaults(func=cmd_autotune)

    p = sub.add_parser("figures", help="regenerate paper figure tables")
    _add_fleet_arguments(p)
    p.add_argument("--output", default="results")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("traces", help="dump fleet telemetry as JSON-lines")
    _add_fleet_arguments(p)
    p.add_argument("--output", default="traces.jsonl")
    p.set_defaults(func=cmd_traces)

    p = sub.add_parser("metrics",
                       help="run an instrumented fleet, emit its metrics")
    _add_fleet_arguments(p)
    p.add_argument("--minutes", type=float, default=60.0,
                   help="simulated minutes (metrics runs are short; "
                        "this replaces --hours)")
    p.add_argument("--format", choices=("table", "prom", "json"),
                   default="table",
                   help="table = fleet health report; prom = Prometheus "
                        "text exposition; json = JSON-lines snapshot")
    p.add_argument("--output", default=None,
                   help="write to this file instead of stdout")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("bench",
                       help="fleet, fast-model, or trace-store throughput "
                            "harness")
    p.add_argument("--model", action="store_true",
                   help="benchmark the fast far memory model (scalar "
                        "per-config vs batched vectorized evaluate_many) "
                        "instead of the fleet engine")
    p.add_argument("--trace", action="store_true",
                   help="benchmark the columnar trace store (ingest "
                        "throughput, compile-from-columns vs the object "
                        "path) instead of the fleet engine")
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--machines", type=int, default=50,
                   help="machines per cluster (fleet section)")
    p.add_argument("--jobs", type=int, default=None,
                   help="jobs per machine (fleet, default 1) or traces "
                        "in the synthetic fleet (--model, default 24)")
    p.add_argument("--hours", type=float, default=1.0,
                   help="simulated hours per run")
    p.add_argument("--intervals", type=int, default=288,
                   help="5-minute periods per trace (--model only)")
    p.add_argument("--configs", type=int, default=8,
                   help="configurations per batch (--model only)")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--workers", type=int, default=None,
                   help="parallel workers (default: min(4, cpus))")
    p.add_argument("--barrier-seconds", type=int, default=60,
                   help="engine barrier interval in simulated seconds")
    p.add_argument("--quick", action="store_true",
                   help="small fast configuration (CI smoke run)")
    p.add_argument("--output", default="BENCH_fleet.json",
                   help="report file (with --model the default becomes "
                        "BENCH_model.json; with --trace, "
                        "BENCH_trace.json)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "trace",
        help="inspect/convert columnar trace stores",
        description="Operate on repro.tracestore directories: summary "
                    "stats, per-window aggregates, jsonl <-> columnar "
                    "conversion, and downsampling. "
                    "See docs/trace_store.md for the on-disk format.",
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)

    tp = tsub.add_parser("stats", help="summarize a store")
    tp.add_argument("store", help="trace store directory")

    tp = tsub.add_parser("window",
                         help="print the incremental per-window aggregates")
    tp.add_argument("store", help="trace store directory")

    tp = tsub.add_parser("export",
                         help="export a columnar store to JSON-lines")
    tp.add_argument("store", help="trace store directory")
    tp.add_argument("--output", default="traces.jsonl")

    tp = tsub.add_parser("import",
                         help="import a JSON-lines trace file into a new "
                              "columnar store")
    tp.add_argument("input", help="JSON-lines trace file")
    tp.add_argument("store", help="trace store directory to create")
    tp.add_argument("--buffer-rows", type=int, default=4096,
                    help="rows per sealed segment")

    tp = tsub.add_parser("compact",
                         help="downsample raw segments in place")
    tp.add_argument("store", help="trace store directory")
    tp.add_argument("--factor", type=int, required=True,
                    help="raw rows merged per output row")
    tp.add_argument("--before", type=int, default=None,
                    help="only segments older than this time (default: "
                         "all sealed segments)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "chaos",
        help="run a fault-injection scenario, report SLO impact",
        description="Run a named chaos scenario against a quickfleet and "
                    "compare coverage/promotion-rate SLO against a "
                    "fault-free baseline of the same seed. "
                    "See docs/fault_injection.md for the scenario "
                    "catalogue.",
    )
    _add_fleet_arguments(p)
    from repro.faults import SCENARIO_NAMES

    p.add_argument("--scenario", choices=SCENARIO_NAMES, default="mixed",
                   help="named fault scenario (default: mixed — crash + "
                        "sink outage + incompressible storm)")
    p.add_argument("--chaos-seed", type=int, default=0,
                   help="root seed for the fault schedule")
    p.add_argument("--workers", type=int, default=None,
                   help="run under the parallel engine with this many "
                        "workers (default: serial)")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "canary",
        help="canary a policy through the staged rollout ladder",
        description="Deploy a cold-memory policy through the paper's "
                    "qualification/canary/production ladder on a live "
                    "fleet, watching the SLI windows each soak; roll "
                    "back to each cluster's prior policy on an SLO "
                    "breach or insufficient telemetry. "
                    "See docs/autotuning.md.",
    )
    _add_fleet_arguments(p)
    p.add_argument("--policy", choices=("paper", "fixed", "thermostat"),
                   default="paper",
                   help="what to canary (default: the paper policy)")
    p.add_argument("--percentile-k", type=float, default=98.0,
                   help="paper policy K (percentile of best thresholds)")
    p.add_argument("--threshold", type=float, default=3600.0,
                   help="fixed policy cold-age threshold in seconds")
    p.add_argument("--warmup-seconds", type=int, default=600,
                   help="policy warm-up S in seconds")
    p.add_argument("--soak-minutes", type=float, default=10.0,
                   help="soak length per stage")
    p.add_argument("--warmup-minutes", type=float, default=30.0,
                   help="fleet warm-up before the ladder starts")
    p.add_argument("--slo-limit", type=float, default=0.2,
                   help="max acceptable p98 normalized promotion rate")
    p.add_argument("--min-coverage", type=int, default=10,
                   help="fail a stage closed below this many slice "
                        "SLI samples")
    p.add_argument("--scenario", choices=SCENARIO_NAMES, default=None,
                   help="optionally run the ladder under this chaos "
                        "scenario")
    p.add_argument("--chaos-seed", type=int, default=0,
                   help="root seed for the fault schedule")
    p.add_argument("--workers", type=int, default=None,
                   help="soak through the parallel engine with this many "
                        "workers (default: serial)")
    p.add_argument("--smoke", action="store_true",
                   help="run the CI smoke instead (breach rollback, "
                        "serial==parallel decisions, fail-closed gate)")
    p.set_defaults(func=cmd_canary)

    p = sub.add_parser(
        "ci",
        help="tier-1 tests with REPRO_CHECKS=1, then the lint gate",
        description="The one-command CI gate: run the tier-1 pytest suite "
                    "with runtime invariants enabled (REPRO_CHECKS=1), "
                    "then repro lint --ci. Exit 0 only when both pass.",
    )
    p.add_argument("--skip-tests", action="store_true",
                   help="run only the lint half of the gate")
    p.add_argument("--skip-flow", action="store_true",
                   help="skip the whole-program flow passes "
                        "(FLOW001/FLOW002/CON001/CON002); local per-file "
                        "rules still run")
    p.add_argument("--skip-bench", action="store_true",
                   help="skip the quick equivalence smokes (model bench, "
                        "trace bench, columnar kernel)")
    p.add_argument("pytest_args", nargs=argparse.REMAINDER,
                   help="extra arguments forwarded to pytest verbatim "
                        "(put them after any ci flags)")
    p.set_defaults(func=cmd_ci)

    p = sub.add_parser(
        "lint",
        help="run the determinism/invariant static-analysis suite",
        description="Run repro.checks (reprolint) over the source tree. "
                    "Exit 0 when clean, 1 on findings, 2 on usage errors. "
                    "See docs/static_analysis.md for the rule catalogue.",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint "
                        "(default: the installed repro package)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text")
    p.add_argument("--rule", action="append", metavar="RULE",
                   help="run only this rule id (repeatable)")
    p.add_argument("--flow", action="store_true",
                   help="also run the whole-program flow passes "
                        "(FLOW001 taint, FLOW002 fork closure, "
                        "CON001/CON002 column contracts); the call graph "
                        "is cached under .repro-cache/")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="report only findings absent from this baseline")
    p.add_argument("--update-baseline", default=None, metavar="FILE",
                   help="snapshot current findings to FILE and exit clean")
    p.add_argument("--ci", action="store_true",
                   help="also run ruff and mypy when installed "
                        "(skipped gracefully when absent)")
    p.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


def metrics_entry(argv: Optional[List[str]] = None) -> int:
    """Console-script entry point: ``repro-metrics`` == ``repro metrics``."""
    if argv is None:
        argv = sys.argv[1:]
    return main(["metrics", *argv])


if __name__ == "__main__":
    sys.exit(main())
