"""Finding reporters and the baseline workflow.

Three output formats:

* **text** — ``path:line:col: RULE message`` per finding (indented
  call-chain lines for flow findings), a summary line, and a per-rule
  tally (human / CI-log consumption);
* **json** — a stable document with the engine version, rule catalogue,
  and findings (machine consumption, e.g. code-review bots);
* **sarif** — SARIF 2.1.0, the interchange format code-hosting review
  UIs ingest natively (``repro lint --format sarif``).

The baseline workflow makes adoption incremental: ``repro lint
--update-baseline`` snapshots today's findings to
``checks_baseline.json``; later runs with ``--baseline`` report only
*new* findings.  Keys are ``path::rule::message`` — line numbers drift
as files are edited, so they are deliberately not part of the identity,
and multi-line flow diagnostics keep their chains (which embed line
numbers) out of the key for the same reason.  Baseline entries may be
bare key strings or ``{"key": ..., "reason": ...}`` objects, so every
accepted finding can carry a one-line justification.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Set

from repro.checks.core import RULES, Finding, LintError

__all__ = [
    "filter_baseline",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "save_baseline",
]

#: Bumped when the JSON document shape changes.
REPORT_FORMAT_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.render() for f in findings]
    if not findings:
        lines.append("repro lint: clean (0 findings)")
        return "\n".join(lines)
    tally: Dict[str, int] = {}
    for finding in findings:
        tally[finding.rule] = tally.get(finding.rule, 0) + 1
    lines.append("")
    lines.append(
        f"repro lint: {len(findings)} finding(s) in "
        f"{len({f.path for f in findings})} file(s)"
    )
    for rule_id in sorted(tally):
        title = RULES[rule_id].title if rule_id in RULES else "parse failure"
        lines.append(f"  {rule_id:<8} {tally[rule_id]:>4}  {title}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable key order, trailing newline free)."""
    document = {
        "version": REPORT_FORMAT_VERSION,
        "rules": {
            rule_id: RULES[rule_id].title for rule_id in sorted(RULES)
        },
        "count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 report (one run, driver ``reprolint``).

    Flow findings carry their source→sink chain appended to the result
    message (SARIF messages are multi-line by contract), so review UIs
    show the full path without needing codeFlows support.
    """
    rule_ids = sorted({f.rule for f in findings} | set(RULES))
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": RULES[rule_id].title
                if rule_id in RULES
                else "parse failure"
            },
        }
        for rule_id in rule_ids
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = []
    for finding in findings:
        text = finding.message
        if finding.chain:
            text += "\n" + "\n".join(finding.chain)
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": "warning",
                "message": {"text": text},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col,
                            },
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "docs/static_analysis.md"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def save_baseline(findings: Sequence[Finding], path: Path) -> None:
    """Snapshot findings as a baseline file (sorted, deduplicated keys).

    Entries are written as bare key strings; accepted findings can then
    be annotated in place by replacing a string with a ``{"key": ...,
    "reason": ...}`` object — :func:`load_baseline` reads both.
    """
    keys = sorted({f.baseline_key() for f in findings})
    document = {"version": REPORT_FORMAT_VERSION, "suppressed": keys}
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Set[str]:
    """Read a baseline file back into a set of finding keys.

    Each entry of the ``suppressed`` list is either a bare key string or
    an object ``{"key": <key>, "reason": <justification>}`` — the object
    form lets a reviewed-and-accepted finding document *why* it is okay
    right next to its suppression.
    """
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    suppressed = document.get("suppressed")
    if not isinstance(suppressed, list):
        raise LintError(f"baseline {path} has no 'suppressed' list")
    keys: Set[str] = set()
    for entry in suppressed:
        if isinstance(entry, str):
            keys.add(entry)
        elif isinstance(entry, dict) and isinstance(entry.get("key"), str):
            keys.add(entry["key"])
        else:
            raise LintError(
                f"baseline {path}: entries must be key strings or "
                f"{{'key', 'reason'}} objects, got {entry!r}"
            )
    return keys


def filter_baseline(
    findings: Sequence[Finding], baseline: Set[str]
) -> List[Finding]:
    """Findings not covered by the baseline (i.e. new since snapshot)."""
    return [f for f in findings if f.baseline_key() not in baseline]
