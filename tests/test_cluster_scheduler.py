"""Borg-like scheduler: placement, overcommit, eviction, the eviction SLO."""

import pytest

from repro.common.errors import SchedulingError
from repro.common.rng import SeedSequenceFactory
from repro.common.units import MIB, PAGE_SIZE
from repro.cluster.scheduler import BorgScheduler, EvictionSloTracker
from repro.kernel.compression import ContentProfile
from repro.kernel.machine import Machine, MachineConfig
from repro.workloads.job_generator import JobSpec


def make_machines(n=2, dram=64 * MIB):
    seeds = SeedSequenceFactory(1)
    return [
        Machine(f"m{i}", MachineConfig(dram_bytes=dram), seeds=seeds)
        for i in range(n)
    ]


def make_spec(job_id, pages, priority=1, cpu=1.0):
    return JobSpec(
        job_id=job_id,
        pages=pages,
        cpu_cores=cpu,
        priority=priority,
        content_profile=ContentProfile(),
        pattern_factory=lambda rng: None,
    )


class TestPlacement:
    def test_best_fit_prefers_tightest_machine(self):
        machines = make_machines(2)
        scheduler = BorgScheduler(machines)
        scheduler.place(make_spec("big", 10000))  # lands somewhere
        first = scheduler.placements["big"]
        # A small job should co-locate on the fuller machine (best fit).
        scheduler.place(make_spec("small", 1000))
        assert scheduler.placements["small"] == first

    def test_rejects_when_full(self):
        machines = make_machines(1, dram=4 * MIB)  # 1024 pages
        scheduler = BorgScheduler(machines)
        with pytest.raises(SchedulingError):
            scheduler.place(make_spec("huge", 2000))

    def test_duplicate_placement_rejected(self):
        scheduler = BorgScheduler(make_machines())
        scheduler.place(make_spec("j", 100))
        with pytest.raises(SchedulingError):
            scheduler.place(make_spec("j", 100))

    def test_overcommit_expands_capacity(self):
        machines = make_machines(1, dram=4 * MIB)
        no_oc = BorgScheduler(machines)
        with pytest.raises(SchedulingError):
            no_oc.place(make_spec("j", 1200))
        with_oc = BorgScheduler(make_machines(1, dram=4 * MIB), overcommit=0.25)
        with_oc.place(make_spec("j", 1200))  # fits at 125%

    def test_remove_frees_capacity(self):
        machines = make_machines(1, dram=4 * MIB)
        scheduler = BorgScheduler(machines)
        scheduler.place(make_spec("a", 1000))
        scheduler.remove("a")
        scheduler.place(make_spec("b", 1000))
        assert scheduler.committed["m0"] == 1000 * PAGE_SIZE

    def test_remove_unknown_job(self):
        with pytest.raises(SchedulingError):
            BorgScheduler(make_machines()).remove("ghost")

    def test_duplicate_machines_rejected(self):
        machine = make_machines(1)[0]
        with pytest.raises(SchedulingError):
            BorgScheduler([machine, machine])

    def test_jobs_on(self):
        scheduler = BorgScheduler(make_machines(1))
        scheduler.place(make_spec("a", 10))
        scheduler.place(make_spec("b", 10))
        assert sorted(scheduler.jobs_on("m0")) == ["a", "b"]


class TestEviction:
    def test_evicts_lowest_priority(self):
        scheduler = BorgScheduler(make_machines(1))
        scheduler.place(make_spec("high", 100, priority=2))
        scheduler.place(make_spec("low", 100, priority=0))
        victim = scheduler.evict_for_pressure("m0")
        assert victim == "low"
        assert "low" not in scheduler.placements

    def test_ties_broken_by_size(self):
        scheduler = BorgScheduler(make_machines(1))
        scheduler.place(make_spec("small", 100, priority=0))
        scheduler.place(make_spec("large", 500, priority=0))
        assert scheduler.evict_for_pressure("m0") == "large"

    def test_empty_machine_returns_none(self):
        scheduler = BorgScheduler(make_machines(1))
        assert scheduler.evict_for_pressure("m0") is None

    def test_eviction_counted_in_slo(self):
        scheduler = BorgScheduler(make_machines(1))
        scheduler.place(make_spec("j", 100, priority=0))
        scheduler.evict_for_pressure("m0", now=100)
        assert scheduler.evictions_total == 1
        assert "j" in scheduler.eviction_slo.evictions


class TestEvictionSloTracker:
    def test_within_slo(self):
        tracker = EvictionSloTracker(max_evictions_per_job_per_day=1.0)
        tracker.record("j", 0)
        assert tracker.violations() == []

    def test_violation_detected(self):
        tracker = EvictionSloTracker(max_evictions_per_job_per_day=1.0)
        tracker.record("j", 0)
        tracker.record("j", 3600)
        assert tracker.violations() == ["j"]

    def test_spread_out_evictions_ok(self):
        tracker = EvictionSloTracker(max_evictions_per_job_per_day=1.0)
        tracker.record("j", 0)
        tracker.record("j", 2 * 86400)
        assert tracker.violations() == []
