"""The far-memory performance SLO (paper §4.2).

The paper's service-level indicator is the **promotion rate**: the rate at
which pages are swapped back in from far memory.  Because jobs of different
sizes tolerate very different absolute rates, the SLO normalizes by the
job's **working set size** (pages accessed within the minimum cold-age
threshold, 120 s): *no more than P % of the working set may be promoted per
minute*, with ``P = 0.2``.

This module holds the SLO dataclass plus the two measurements it is defined
over: working-set size (from a cold-age histogram) and normalized promotion
rate (from a promotion histogram).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.common.units import (
    MIN_COLD_AGE_THRESHOLD,
    MINUTE,
    TARGET_PROMOTION_RATE_PCT_PER_MIN,
)
from repro.common.validation import check_positive
from repro.core.histograms import AgeHistogram

__all__ = [
    "PromotionRateSlo",
    "working_set_pages",
    "normalized_promotion_rate",
]


@dataclass(frozen=True)
class PromotionRateSlo:
    """Promotion-rate SLO: promotions/min <= (target_pct/100) * WSS.

    Attributes:
        target_pct_per_min: the P in "P % of the working set per minute".
        min_cold_age_seconds: the window defining the working set (120 s).
    """

    target_pct_per_min: float = TARGET_PROMOTION_RATE_PCT_PER_MIN
    min_cold_age_seconds: int = MIN_COLD_AGE_THRESHOLD

    def __post_init__(self) -> None:
        check_positive(self.target_pct_per_min, "target_pct_per_min")
        check_positive(self.min_cold_age_seconds, "min_cold_age_seconds")

    def allowed_promotions_per_min(self, working_set_size_pages: float) -> float:
        """The absolute promotion budget (pages/min) for a given working set."""
        return (self.target_pct_per_min / 100.0) * working_set_size_pages

    def is_met(
        self, promotions_per_min: float, working_set_size_pages: float
    ) -> bool:
        """True when the measured rate fits within the budget.

        A job with an empty working set trivially meets the SLO only when it
        has zero promotions (there is nothing to normalize by).
        """
        if working_set_size_pages <= 0:
            return promotions_per_min <= 0
        return promotions_per_min <= self.allowed_promotions_per_min(
            working_set_size_pages
        )


def working_set_pages(
    cold_age_histogram: AgeHistogram,
    min_cold_age_seconds: int = MIN_COLD_AGE_THRESHOLD,
) -> int:
    """Working-set size: resident pages accessed within the minimum window.

    Per §4.2, the working set is all pages *not* cold under the most
    aggressive candidate threshold, i.e. total resident pages minus pages
    whose age is at least ``min_cold_age_seconds``: the young bucket plus
    every bin strictly below the window (``total - colder_than`` computed
    with a single prefix sum — this runs once per job per agent round).
    """
    idx = bisect_left(cold_age_histogram.bins.thresholds, min_cold_age_seconds)
    return int(
        cold_age_histogram.young_count
        + int(cold_age_histogram.counts[:idx].sum())
    )


def normalized_promotion_rate(
    promotions_per_min: float,
    working_set_size_pages: float,
) -> float:
    """Promotion rate as a percentage of working set per minute.

    Jobs with an empty working set but nonzero promotions are reported as
    ``float('inf')`` — they cannot meet any normalized SLO.
    """
    if working_set_size_pages <= 0:
        return 0.0 if promotions_per_min <= 0 else float("inf")
    return 100.0 * promotions_per_min / working_set_size_pages


def promotions_per_minute(
    promotion_histogram: AgeHistogram,
    threshold_seconds: float,
    interval_seconds: float,
) -> float:
    """Promotions/min that threshold ``T`` would have caused over an interval.

    The promotion histogram records the age of each page at the moment it
    was accessed; accesses to pages with age >= T are exactly the promotions
    a system running threshold T would have performed (§4.3's promotion
    histogram semantics).
    """
    check_positive(interval_seconds, "interval_seconds")
    events = promotion_histogram.colder_than(threshold_seconds)
    return events * (MINUTE / interval_seconds)
