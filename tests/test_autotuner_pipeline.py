"""The autotuning pipeline over the fast far memory model."""

import numpy as np
import pytest

from repro.common.errors import AutotunerError
from repro.core.histograms import AgeHistogram, default_age_bins
from repro.core.threshold_policy import ThresholdPolicyConfig
from repro.model.replay import FarMemoryModel
from repro.model.trace import JobTrace, TraceEntry
from repro.autotuner.pipeline import AutotuningPipeline, TuningResult


def make_fleet_traces(n_jobs=6, n_entries=16, seed=0):
    """Jobs with varying cold sizes and occasional promotion bursts."""
    rng = np.random.default_rng(seed)
    bins = default_age_bins()
    traces = []
    for j in range(n_jobs):
        trace = JobTrace(f"j{j}")
        cold_pages = int(rng.integers(200, 800))
        for i in range(n_entries):
            promo = AgeHistogram(bins)
            if rng.random() < 0.3:
                promo.add_ages(
                    rng.uniform(120, 2000, size=int(rng.integers(1, 40)))
                )
            cold = AgeHistogram(bins)
            cold.add_ages(
                np.concatenate(
                    [
                        rng.uniform(120, 20000, size=cold_pages),
                        np.zeros(1000 - cold_pages),
                    ]
                )
            )
            trace.append(
                TraceEntry(
                    job_id=f"j{j}",
                    machine_id="m0",
                    time=i * 300,
                    working_set_pages=1000 - cold_pages,
                    promotion_histogram=promo,
                    cold_age_histogram=cold,
                    resident_pages=1000,
                )
            )
        traces.append(trace)
    return traces


@pytest.fixture
def model():
    return FarMemoryModel(make_fleet_traces())


class TestPipeline:
    def test_run_produces_trials(self, model):
        pipeline = AutotuningPipeline(model, batch_size=2, seed=0)
        result = pipeline.run(iterations=3)
        assert len(result.trials) == 6
        assert all(t.report is not None for t in result.trials)

    def test_finds_feasible_config(self, model):
        pipeline = AutotuningPipeline(model, batch_size=3, seed=0)
        result = pipeline.run(iterations=4)
        assert result.best is not None
        assert result.best.feasible
        config = result.best_config
        assert 50.0 <= config.percentile_k <= 99.9

    def test_best_is_max_feasible_objective(self, model):
        pipeline = AutotuningPipeline(model, batch_size=2, seed=1)
        result = pipeline.run(iterations=4)
        feasible = [t.objective for t in result.trials if t.feasible]
        assert result.best.objective == max(feasible)

    def test_objective_curve_monotone(self, model):
        pipeline = AutotuningPipeline(model, batch_size=2, seed=2)
        result = pipeline.run(iterations=3)
        curve = result.objective_curve()
        finite = [c for c in curve if np.isfinite(c)]
        assert all(b >= a for a, b in zip(finite, finite[1:]))

    def test_random_baseline(self, model):
        pipeline = AutotuningPipeline(model, seed=0)
        result = pipeline.run_random_baseline(n_trials=6, seed=3)
        assert len(result.trials) == 6

    def test_no_feasible_raises_on_best_config(self):
        result = TuningResult()
        with pytest.raises(AutotunerError):
            _ = result.best_config

    def test_gp_at_least_matches_random_here(self, model):
        """On this small problem GP-Bandit should do no worse than random
        search at an equal budget."""
        gp = AutotuningPipeline(model, batch_size=3, seed=5).run(iterations=4)
        random = AutotuningPipeline(model, seed=5).run_random_baseline(
            n_trials=12, seed=6
        )
        if gp.best and random.best:
            assert gp.best.objective >= 0.8 * random.best.objective
