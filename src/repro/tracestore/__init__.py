"""Columnar on-disk trace store (the telemetry warehouse's disk half).

The paper's control loop assumes fleet-wide trace retention
(§5.2-5.3); this package stores trace telemetry as append-only
fixed-schema ``.npz`` segments with a JSON manifest, incremental
per-window aggregation, and downsampling for old segments — and exposes
it behind the same duck-typed surface as the in-memory
:class:`~repro.cluster.trace_db.TraceDatabase` so agents, the fault
injector, and the parallel engine need no changes.
"""

from repro.tracestore.database import ColumnarTraceDatabase
from repro.tracestore.store import (
    DEFAULT_BUFFER_ROWS,
    DEFAULT_WINDOW_SECONDS,
    FORMAT_VERSION,
    MANIFEST_NAME,
    SegmentInfo,
    TraceStore,
    WindowSummary,
)

__all__ = [
    "ColumnarTraceDatabase",
    "DEFAULT_BUFFER_ROWS",
    "DEFAULT_WINDOW_SECONDS",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "SegmentInfo",
    "TraceStore",
    "WindowSummary",
]
