"""SLI monitoring with alerting (paper §5.3's "rigorous monitoring").

The staged-deployment pipeline needs more than a single p98 number: it
watches windows of SLI samples, compares them against alert rules, and
reports which rule fired.  This module gives deployment (and operators'
dashboards) that layer:

* :class:`SliWindow` — a rolling window of per-minute SLI samples with
  percentile queries;
* :class:`AlertRule` — "metric over threshold for the whole window"
  predicates on the window;
* :class:`SloMonitor` — evaluates a rule set and keeps an alert history.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, List, Optional

import numpy as np

from repro.agent.node_agent import SliSample
from repro.common.validation import check_positive, require

__all__ = ["SliWindow", "AlertRule", "Alert", "SloMonitor"]


class SliWindow:
    """Rolling window of SLI samples.

    Args:
        window_seconds: samples older than ``now - window_seconds`` are
            evicted as new ones arrive.
    """

    def __init__(self, window_seconds: int = 3600):
        check_positive(window_seconds, "window_seconds")
        self.window_seconds = int(window_seconds)
        self._samples: Deque[SliSample] = deque()

    def __len__(self) -> int:
        return len(self._samples)

    def extend(self, samples: Iterable[SliSample]) -> None:
        """Add samples and evict expired ones.

        Samples need not arrive time-ordered: agents upload per machine,
        so a batch drained from several machines interleaves clocks.  The
        window keeps itself sorted by sample time (stable, so same-time
        samples keep arrival order) and evicts against the newest time
        seen — out-of-order arrival can therefore never resurrect or
        retain samples an in-order arrival would have evicted.
        """
        appended = False
        out_of_order = False
        for sample in samples:
            if self._samples and sample.time < self._samples[-1].time:
                out_of_order = True
            self._samples.append(sample)
            appended = True
        if not appended and not self._samples:
            return
        if out_of_order:
            self._samples = deque(
                sorted(self._samples, key=lambda s: s.time)
            )
        if self._samples:
            horizon = self._samples[-1].time - self.window_seconds
            while self._samples and self._samples[0].time < horizon:
                self._samples.popleft()

    def rates(self) -> np.ndarray:
        """Normalized promotion rates of non-empty-WSS samples."""
        return np.array(
            [
                s.normalized_rate_pct_per_min
                for s in self._samples
                if s.working_set_pages > 0
                and np.isfinite(s.normalized_rate_pct_per_min)
            ]
        )

    def percentile(self, q: float) -> float:
        """Window percentile of the normalized promotion rate."""
        rates = self.rates()
        if rates.size == 0:
            return 0.0
        return float(np.percentile(rates, q))

    def violation_fraction(self, limit: float) -> float:
        """Fraction of window samples exceeding ``limit``."""
        rates = self.rates()
        if rates.size == 0:
            return 0.0
        return float(np.mean(rates > limit))


@dataclass(frozen=True)
class AlertRule:
    """One alerting predicate over the window.

    Attributes:
        name: rule identifier, e.g. ``"p98-over-slo"``.
        evaluate: maps the window to the measured value.
        limit: alert fires when the value exceeds this.
        min_samples: suppress the rule until the window is this full
            (avoids alerting on start-up noise).
    """

    name: str
    evaluate: Callable[[SliWindow], float]
    limit: float
    min_samples: int = 10


@dataclass(frozen=True)
class Alert:
    """A fired rule."""

    time: int
    rule: str
    value: float
    limit: float


class SloMonitor:
    """Evaluates alert rules over a rolling SLI window.

    Args:
        rules: the alert rules; defaults to the paper's pair — p98 over
            the promotion SLO, and gross violation-fraction drift.
        window_seconds: rolling window length.
    """

    def __init__(
        self,
        rules: Optional[List[AlertRule]] = None,
        window_seconds: int = 3600,
        slo_limit: float = 0.2,
    ):
        self.window = SliWindow(window_seconds)
        self.slo_limit = float(slo_limit)
        self.rules = rules if rules is not None else self.default_rules(
            slo_limit
        )
        require(len(self.rules) > 0, "monitor needs at least one rule")
        self.alerts: List[Alert] = []
        #: Total samples ever ingested (monotonic; the window itself
        #: evicts).  Deployment's fail-closed coverage gate reads this:
        #: "no alert" is only evidence of health if samples arrived at all.
        self.samples_ingested = 0

    @staticmethod
    def default_rules(slo_limit: float) -> List[AlertRule]:
        """The default rule pair used by staged deployment."""
        return [
            AlertRule(
                name="p98-over-slo",
                evaluate=lambda w: w.percentile(98.0),
                limit=slo_limit,
            ),
            AlertRule(
                name="violation-fraction",
                evaluate=lambda w, _l=slo_limit: w.violation_fraction(_l),
                limit=0.05,
            ),
        ]

    def observe(self, now: int, samples: Iterable[SliSample]) -> List[Alert]:
        """Ingest samples, evaluate every rule, record and return alerts."""
        samples = list(samples)
        self.samples_ingested += len(samples)
        self.window.extend(samples)
        fired: List[Alert] = []
        if len(self.window) == 0:
            return fired
        for rule in self.rules:
            if len(self.window) < rule.min_samples:
                continue
            value = rule.evaluate(self.window)
            if value > rule.limit:
                alert = Alert(time=now, rule=rule.name, value=value,
                              limit=rule.limit)
                self.alerts.append(alert)
                fired.append(alert)
        return fired

    @property
    def healthy(self) -> bool:
        """True while no alert has ever fired."""
        return not self.alerts
