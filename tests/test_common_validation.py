"""Validation helper behaviour."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common import validation as v


def test_require_passes_and_fails():
    v.require(True, "never raised")
    with pytest.raises(ConfigurationError, match="broken"):
        v.require(False, "broken")


def test_check_positive():
    assert v.check_positive(1.5, "x") == 1.5
    for bad in (0, -1):
        with pytest.raises(ConfigurationError, match="x"):
            v.check_positive(bad, "x")


def test_check_non_negative():
    assert v.check_non_negative(0, "x") == 0
    with pytest.raises(ConfigurationError):
        v.check_non_negative(-0.1, "x")


def test_check_in_range_inclusive():
    assert v.check_in_range(5, "x", 0, 5) == 5
    assert v.check_in_range(0, "x", 0, 5) == 0
    with pytest.raises(ConfigurationError):
        v.check_in_range(5.1, "x", 0, 5)


def test_check_in_range_exclusive():
    with pytest.raises(ConfigurationError):
        v.check_in_range(5, "x", 0, 5, inclusive=False)
    assert v.check_in_range(4.9, "x", 0, 5, inclusive=False) == 4.9


def test_check_in_range_open_ended():
    assert v.check_in_range(1e9, "x", low=0) == 1e9
    assert v.check_in_range(-1e9, "x", high=0) == -1e9


def test_check_fraction():
    assert v.check_fraction(0.5, "f") == 0.5
    for bad in (-0.01, 1.01):
        with pytest.raises(ConfigurationError):
            v.check_fraction(bad, "f")


def test_check_sorted_unique():
    assert v.check_sorted_unique([1, 2, 3], "s") == [1, 2, 3]
    with pytest.raises(ConfigurationError):
        v.check_sorted_unique([], "s")
    with pytest.raises(ConfigurationError):
        v.check_sorted_unique([1, 1, 2], "s")
    with pytest.raises(ConfigurationError):
        v.check_sorted_unique([3, 2], "s")
