"""The columnar trace store at bench fleet size (``BENCH_trace.json``).

The acceptance bar for ROADMAP open item 5's disk half: replaying the
what-if batch from on-disk columns must be bit-identical to the object
path, compile at least as fast, and — the reason the store exists —
peak *lower* in memory, because no ``TraceEntry``/``JobTrace`` objects
are ever materialized.
"""

from __future__ import annotations

import json

import pytest

from repro.tracestore.bench import run_trace_bench

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def trace_report(results_dir):
    """One default-sized trace bench run, persisted for inspection."""
    report = run_trace_bench(output=results_dir / "BENCH_trace.json")
    print("\n" + json.dumps(report, indent=2))
    return report


def test_columnar_replay_equivalent(trace_report):
    assert trace_report["equivalent"]


def test_columnar_peaks_lower_than_object_path(trace_report):
    assert trace_report["peak_mem_ratio"] < 1.0


def test_compile_from_columns_not_slower(trace_report):
    # Generous bound: from_columns skips entry materialization entirely,
    # so even on a loaded host it should never lose to the object path.
    assert trace_report["compile_speedup"] >= 1.0


def test_ingest_throughput(trace_report):
    # The append path is pure python + numpy copies; tens of thousands of
    # rows/s is the conservative floor on any host.
    assert trace_report["ingest"]["rows_per_second"] > 5_000
    assert trace_report["flush"]["segments"] >= 1
    assert trace_report["flush"]["bytes_written"] > 0
