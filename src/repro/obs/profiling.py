"""Wall-clock profiling over traced spans (the repro analogue of Fig. 8).

The paper reports the whole control plane costing 0.001-0.005 of the
fleet's CPU.  The reproduction cannot measure datacenter CPUs, but it
can attribute *simulator* wall time to subsystems: every instrumented
hot path emits spans (:mod:`repro.obs.tracing`), and this module folds
the aggregated span statistics into a flame table — per-span and
per-subsystem rows with total, self, and per-call time — so benchmarks
can see where the time goes and assert the instrumentation itself stays
cheap.

``profile_to_registry`` additionally exports the flame table as gauges
(``repro_span_wall_seconds{span=...}`` etc.) so one Prometheus/JSONL
exposition carries both the fleet SLIs and the timing profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List

from repro.obs.metrics import MetricName, MetricRegistry
from repro.obs.tracing import SpanStats, Tracer

__all__ = [
    "Stopwatch",
    "SubsystemStats",
    "flame_table",
    "subsystem_table",
    "profile_to_registry",
]


class Stopwatch:
    """A context manager measuring wall time (``time.perf_counter``).

    Simulation code must never read the wall clock directly (the DET001
    lint rule); code that wants to *observe* its own wall cost — e.g. the
    fast far memory model's evaluation-seconds histogram — times the block
    through this obs-layer helper instead::

        with Stopwatch() as watch:
            expensive()
        histogram.observe(watch.seconds)

    ``seconds`` reads as the running elapsed time while the block is still
    open and freezes at exit.
    """

    __slots__ = ("_start", "_elapsed")

    def __init__(self) -> None:
        self._start: float = 0.0
        self._elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._elapsed = perf_counter() - self._start
        return False

    @property
    def seconds(self) -> float:
        """Elapsed wall seconds (running until the block exits)."""
        if self._elapsed:
            return self._elapsed
        return perf_counter() - self._start


@dataclass
class SubsystemStats:
    """Aggregate time for one subsystem (span-name prefix).

    Attributes:
        name: the subsystem (span name up to the first ``"."``).
        calls: spans completed under this subsystem.
        self_seconds: wall time attributed to the subsystem itself.
        wall_seconds: inclusive wall time (children included).
    """

    name: str
    calls: int = 0
    self_seconds: float = 0.0
    wall_seconds: float = 0.0


def flame_table(tracer: Tracer) -> List[SpanStats]:
    """Per-span statistics, hottest self-time first."""
    return sorted(
        tracer.stats().values(),
        key=lambda s: (-s.self_seconds, s.name),
    )


def subsystem_table(tracer: Tracer) -> List[SubsystemStats]:
    """Per-subsystem aggregation of the flame table, hottest first.

    A span's subsystem is its name up to the first dot (``"zswap"`` for
    ``"zswap.compress"``).  Self time adds up exactly: the sum over
    subsystems equals the tracer's total self time.
    """
    groups: Dict[str, SubsystemStats] = {}
    for stats in tracer.stats().values():
        subsystem = stats.name.split(".", 1)[0]
        group = groups.get(subsystem)
        if group is None:
            group = SubsystemStats(subsystem)
            groups[subsystem] = group
        group.calls += stats.calls
        group.self_seconds += stats.self_seconds
        group.wall_seconds += stats.wall_seconds
    return sorted(
        groups.values(), key=lambda g: (-g.self_seconds, g.name)
    )


def profile_to_registry(tracer: Tracer, registry: MetricRegistry) -> None:
    """Export the span profile into ``registry`` as gauges.

    Gauges (set, not incremented, so re-export is idempotent):

    * ``repro_span_calls{span=...}``
    * ``repro_span_wall_seconds{span=...}``
    * ``repro_span_self_seconds{span=...}``
    """
    calls = registry.gauge(
        MetricName.SPAN_CALLS, "Completed spans per span name.", ("span",)
    )
    wall = registry.gauge(
        MetricName.SPAN_WALL_SECONDS,
        "Inclusive wall-clock seconds per span name.", ("span",)
    )
    self_time = registry.gauge(
        MetricName.SPAN_SELF_SECONDS,
        "Self (exclusive) wall-clock seconds per span name.", ("span",)
    )
    for stats in tracer.stats().values():
        calls.labels(span=stats.name).set(stats.calls)
        wall.labels(span=stats.name).set(stats.wall_seconds)
        self_time.labels(span=stats.name).set(stats.self_seconds)
