"""Plain-text rendering of tables and figure data.

The benchmark harness regenerates every paper figure as text: tables of
series points, ASCII CDFs, and violin summaries.  Keeping the rendering
here lets benches and examples print identical reports.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.distributions import ViolinStats

__all__ = ["render_table", "render_cdf", "render_violins", "render_series"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells))
        if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_cdf(
    values: Sequence[float],
    title: str,
    unit: str = "",
    quantiles: Sequence[float] = (10, 25, 50, 75, 90, 98),
) -> str:
    """Render a CDF as a quantile table (the paper's CDF figures in text)."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return f"{title}: (no samples)"
    rows = [
        (f"p{q:g}", f"{np.percentile(data, q):.4g}{unit}") for q in quantiles
    ]
    return render_table(["quantile", "value"], rows, title=f"{title} (n={data.size})")


def render_violins(
    groups: Dict[str, ViolinStats], title: str, scale: float = 100.0,
    unit: str = "%"
) -> str:
    """Render per-group violin summaries (Figs. 2 and 6 in text form)."""
    rows = []
    for name, stats in groups.items():
        rows.append(
            (
                name,
                stats.n,
                f"{stats.median * scale:.1f}{unit}",
                f"{stats.q1 * scale:.1f}{unit}",
                f"{stats.q3 * scale:.1f}{unit}",
                f"{stats.whisker_low * scale:.1f}{unit}",
                f"{stats.whisker_high * scale:.1f}{unit}",
            )
        )
    return render_table(
        ["group", "n", "median", "q1", "q3", "whisk_lo", "whisk_hi"],
        rows,
        title=title,
    )


def render_series(
    x: Sequence[float],
    y: Sequence[float],
    x_label: str,
    y_label: str,
    title: str,
) -> str:
    """Render an (x, y) series as a two-column table."""
    rows = list(zip(x, y))
    return render_table([x_label, y_label], rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
