"""Age-bin grids and histograms, including property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.units import MAX_PAGE_AGE_SECONDS
from repro.core.histograms import AgeBins, AgeHistogram, default_age_bins


class TestAgeBins:
    def test_default_grid_spans_paper_range(self):
        bins = default_age_bins()
        assert bins.min_threshold == 120
        assert bins.max_threshold == MAX_PAGE_AGE_SECONDS
        assert list(bins.thresholds)[:4] == [120, 240, 480, 960]

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            AgeBins((240, 120))

    def test_rejects_below_scan_period(self):
        with pytest.raises(ConfigurationError):
            AgeBins((60, 120))

    def test_bin_index_of_candidate(self):
        bins = AgeBins((120, 240, 480))
        assert bins.bin_index(240) == 1

    def test_bin_index_of_non_candidate_raises(self):
        bins = AgeBins((120, 240))
        with pytest.raises(ValueError, match="not a candidate"):
            bins.bin_index(200)

    def test_bin_of_age_maps_young_to_minus_one(self):
        bins = AgeBins((120, 240, 480))
        ages = np.array([0, 119, 120, 239, 240, 500])
        np.testing.assert_array_equal(
            bins.bin_of_age(ages), [-1, -1, 0, 0, 1, 2]
        )

    def test_scan_periods_rounds_up(self):
        bins = AgeBins((120, 250))
        np.testing.assert_array_equal(bins.scan_periods(120), [1, 3])

    def test_growth_factor(self):
        bins = default_age_bins(min_threshold=120, max_threshold=1000, growth=3.0)
        assert list(bins.thresholds) == [120, 360, 1000]


class TestAgeHistogram:
    def test_add_ages_buckets_correctly(self, bins):
        hist = AgeHistogram(bins)
        hist.add_ages(np.array([0, 130, 250, 100000]))
        assert hist.young_count == 1
        assert hist.total == 4
        assert hist.colder_than(120) == 3
        assert hist.colder_than(240) == 2
        assert hist.colder_than(bins.max_threshold) == 1

    def test_add_with_weight(self, bins):
        hist = AgeHistogram(bins)
        hist.add_ages(np.array([150]), weight=5)
        assert hist.colder_than(120) == 5

    def test_suffix_sums_match_colder_than(self, bins):
        hist = AgeHistogram(bins)
        hist.add_ages(np.array([120, 240, 480, 960, 5000, 20000]))
        suffix = hist.suffix_sums()
        for i, threshold in enumerate(bins.thresholds):
            assert suffix[i] == hist.colder_than(threshold)

    def test_diff(self, bins):
        earlier = AgeHistogram(bins)
        earlier.add_ages(np.array([130.0]))
        later = earlier.copy()
        later.add_ages(np.array([130.0, 300.0, 10.0]))
        delta = later.diff(earlier)
        assert delta.total == 3
        assert delta.colder_than(120) == 2
        assert delta.young_count == 1

    def test_diff_requires_same_grid(self, bins):
        other = AgeHistogram(AgeBins((120, 999)))
        with pytest.raises(ConfigurationError):
            AgeHistogram(bins).diff(other)

    def test_merge(self, bins):
        a = AgeHistogram(bins)
        a.add_ages(np.array([150.0]))
        b = AgeHistogram(bins)
        b.add_ages(np.array([150.0, 20.0]))
        merged = AgeHistogram.merge([a, b])
        assert merged.total == 3
        assert merged.colder_than(120) == 2
        # Merging does not mutate inputs.
        assert a.total == 1

    def test_merge_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            AgeHistogram.merge([])

    def test_copy_is_independent(self, bins):
        a = AgeHistogram(bins)
        a.add_ages(np.array([150.0]))
        b = a.copy()
        b.add_ages(np.array([150.0]))
        assert a.colder_than(120) == 1
        assert b.colder_than(120) == 2

    def test_clear(self, bins):
        hist = AgeHistogram(bins)
        hist.add_ages(np.array([10.0, 500.0]))
        hist.clear()
        assert hist.total == 0

    def test_add_binned_shape_check(self, bins):
        hist = AgeHistogram(bins)
        with pytest.raises(ConfigurationError):
            hist.add_binned(np.zeros(3))


@settings(max_examples=50, deadline=None)
@given(
    ages=st.lists(
        st.floats(min_value=0, max_value=40000, allow_nan=False),
        min_size=0,
        max_size=200,
    )
)
def test_histogram_conserves_total(ages):
    """Property: every recorded age lands in exactly one bucket."""
    bins = default_age_bins()
    hist = AgeHistogram(bins)
    hist.add_ages(np.array(ages))
    assert hist.total == len(ages)


@settings(max_examples=50, deadline=None)
@given(
    ages=st.lists(
        st.floats(min_value=0, max_value=40000, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
def test_colder_than_is_monotone_in_threshold(ages):
    """Property: raising the threshold never finds more cold pages."""
    bins = default_age_bins()
    hist = AgeHistogram(bins)
    hist.add_ages(np.array(ages))
    counts = [hist.colder_than(t) for t in bins.thresholds]
    assert all(a >= b for a, b in zip(counts, counts[1:]))


@settings(max_examples=50, deadline=None)
@given(
    ages=st.lists(
        st.floats(min_value=0, max_value=40000, allow_nan=False),
        min_size=1,
        max_size=100,
    ),
    threshold_index=st.integers(min_value=0, max_value=8),
)
def test_colder_than_matches_bruteforce(ages, threshold_index):
    """Property: histogram suffix sums equal the brute-force count."""
    bins = default_age_bins()
    threshold_index = min(threshold_index, len(bins) - 1)
    threshold = bins.thresholds[threshold_index]
    hist = AgeHistogram(bins)
    hist.add_ages(np.array(ages))
    expected = sum(1 for age in ages if age >= threshold)
    assert hist.colder_than(threshold) == expected
