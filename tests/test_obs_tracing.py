"""Span tracing and the profiling tables built on it."""

import pytest

from repro.obs import (
    MetricRegistry,
    NULL_TRACER,
    Tracer,
    flame_table,
    get_tracer,
    profile_to_registry,
    set_tracer,
    subsystem_table,
)


def busy(n: int = 2000) -> int:
    total = 0
    for i in range(n):
        total += i
    return total


def test_span_aggregates_stats():
    tracer = Tracer()
    for _ in range(3):
        with tracer.span("kstaled.scan"):
            busy()
    stats = tracer.stats()["kstaled.scan"]
    assert stats.calls == 3
    assert stats.wall_seconds > 0.0
    assert stats.max_seconds <= stats.wall_seconds
    assert stats.mean_seconds == pytest.approx(stats.wall_seconds / 3)


def test_nested_spans_attribute_self_time():
    tracer = Tracer()
    with tracer.span("cluster.tick"):
        with tracer.span("kstaled.scan"):
            busy()
        busy()
    outer = tracer.stats()["cluster.tick"]
    inner = tracer.stats()["kstaled.scan"]
    assert outer.child_seconds == pytest.approx(inner.wall_seconds)
    assert outer.self_seconds == pytest.approx(
        outer.wall_seconds - inner.wall_seconds
    )
    # Self times sum exactly to top-level wall time.
    assert tracer.total_seconds() == pytest.approx(outer.wall_seconds)


def test_records_carry_sim_time_depth_and_attrs():
    tracer = Tracer()
    with tracer.span("agent.control", sim_time=300, job="j0"):
        with tracer.span("zswap.compress", sim_time=300):
            pass
    records = tracer.records()
    assert [r.name for r in records] == ["zswap.compress", "agent.control"]
    assert records[0].depth == 1
    assert records[1].depth == 0
    assert records[1].sim_time == 300
    assert records[1].attrs == {"job": "j0"}


def test_record_ring_is_bounded_but_stats_are_not():
    tracer = Tracer(max_records=4)
    for i in range(10):
        with tracer.span(f"s{i % 2}"):
            pass
    assert len(tracer.records()) == 4
    assert tracer.stats()["s0"].calls == 5


def test_disabled_tracer_is_noop():
    tracer = Tracer(enabled=False)
    with tracer.span("anything"):
        pass
    tracer.record("manual", 1.0)
    assert tracer.stats() == {}
    assert tracer.records() == []
    with NULL_TRACER.span("x"):
        pass
    assert NULL_TRACER.stats() == {}


def test_manual_record():
    tracer = Tracer()
    tracer.record("model.evaluate", 0.25, sim_time=600)
    tracer.record("model.evaluate", 0.75)
    stats = tracer.stats()["model.evaluate"]
    assert stats.calls == 2
    assert stats.wall_seconds == pytest.approx(1.0)
    assert stats.max_seconds == pytest.approx(0.75)


def test_reset_clears_everything():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    tracer.reset()
    assert tracer.stats() == {}
    assert tracer.records() == []


def test_global_tracer_swap():
    fresh = Tracer()
    previous = set_tracer(fresh)
    try:
        assert get_tracer() is fresh
    finally:
        set_tracer(previous)
    assert get_tracer() is previous


def test_flame_table_sorted_by_self_time():
    tracer = Tracer()
    tracer.record("slow.op", 2.0)
    tracer.record("fast.op", 0.5)
    names = [s.name for s in flame_table(tracer)]
    assert names == ["slow.op", "fast.op"]


def test_subsystem_table_groups_by_prefix():
    tracer = Tracer()
    tracer.record("zswap.compress", 1.0)
    tracer.record("zswap.decompress", 0.5)
    tracer.record("kstaled.scan", 0.25)
    table = {s.name: s for s in subsystem_table(tracer)}
    assert table["zswap"].calls == 2
    assert table["zswap"].self_seconds == pytest.approx(1.5)
    assert table["kstaled"].self_seconds == pytest.approx(0.25)
    # Self time adds up across subsystems.
    assert sum(s.self_seconds for s in table.values()) == pytest.approx(
        tracer.total_seconds()
    )


def test_profile_to_registry_exports_gauges():
    tracer = Tracer()
    with tracer.span("kstaled.scan"):
        busy()
    registry = MetricRegistry()
    profile_to_registry(tracer, registry)
    calls = registry.get("repro_span_calls")
    assert calls.labels(span="kstaled.scan").value == 1
    text = registry.expose_text()
    assert 'repro_span_self_seconds{span="kstaled.scan"}' in text
    # Re-export is idempotent (gauges are set, not incremented).
    profile_to_registry(tracer, registry)
    assert calls.labels(span="kstaled.scan").value == 1
