"""Cold-age threshold controller (paper §4.3).

Every control period (one minute) the node agent computes, from that
period's promotion histogram, the *best* threshold — the smallest candidate
cold-age threshold whose promotion rate would have stayed within the SLO.
The controller then chooses the threshold for the *next* minute as:

* the **K-th percentile** of the history of per-minute best thresholds
  (violating the SLO roughly ``100 - K`` % of the time at steady state), or
* the **last minute's best threshold, if higher** — the spike-reaction rule
  that makes the system back off immediately when a job suddenly touches
  a lot of previously-cold memory;
* and zswap is **disabled for the first S seconds** of a job's execution,
  because the history is too thin to act on.

The policy is deliberately pure (no clock, no kernel handles): it consumes
per-interval histograms and emits a threshold, which is what lets the fast
far memory model (§5.3) replay it offline over recorded traces.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Sequence

import numpy as np

from repro.common.units import MINUTE
from repro.common.validation import check_in_range, check_non_negative, require
from repro.core.histograms import AgeBins, AgeHistogram
from repro.core.slo import PromotionRateSlo, promotions_per_minute

__all__ = [
    "ThresholdPolicyConfig",
    "ColdAgeThresholdPolicy",
    "ColdMemoryPolicy",
    "FixedThresholdPolicy",
    "PaperPolicy",
    "as_policy",
    "best_threshold",
    "best_thresholds_vectorized",
    "replay_thresholds_vectorized",
]

#: Sentinel meaning "compress nothing" (no finite threshold chosen).
DISABLED: float = float("inf")


def _sorted_percentile(values: Sequence[float], k: float) -> float:
    """``np.percentile(values, k)`` over an already-sorted sequence.

    The node agent evaluates one percentile per job per minute over a pool
    of at most ``history_length`` floats; ``np.percentile``'s dispatch
    overhead dominates at that size.  This reimplements numpy's default
    linear interpolation — including its ``gamma >= 0.5`` symmetric-lerp
    fixup — in plain Python, bit-identically (asserted over randomized
    inputs in the test suite).
    """
    n = len(values)
    virtual_index = (k / 100.0) * (n - 1)
    if virtual_index >= n - 1:
        return values[-1]
    lower = int(virtual_index)
    gamma = virtual_index - lower
    a = values[lower]
    b = values[lower + 1]
    if gamma >= 0.5:
        return b - (b - a) * (1.0 - gamma)
    return a + (b - a) * gamma


def best_threshold(
    promotion_histogram: AgeHistogram,
    working_set_size_pages: float,
    slo: PromotionRateSlo,
    interval_seconds: float = MINUTE,
) -> float:
    """Smallest candidate threshold meeting the SLO over one interval.

    Walks the candidate grid from most to least aggressive and returns the
    first threshold whose would-have-been promotion rate fits the budget.
    Returns :data:`DISABLED` when even the largest candidate violates the
    SLO (the job touched essentially all of its cold memory).
    """
    budget = slo.allowed_promotions_per_min(working_set_size_pages)
    scale = MINUTE / interval_seconds
    # The grid has ~10 candidates; plain-Python suffix sums beat the numpy
    # round trip at this size, and this runs once per job per minute.
    counts = promotion_histogram.counts.tolist()
    suffixes = [0] * len(counts)
    running = 0
    for i in range(len(counts) - 1, -1, -1):
        running += counts[i]
        suffixes[i] = running
    for threshold, events in zip(promotion_histogram.bins.thresholds, suffixes):
        if events * scale <= budget:
            return float(threshold)
    return DISABLED


@dataclass(frozen=True)
class ThresholdPolicyConfig:
    """Tunable parameters of the controller — the autotuner's search space.

    Attributes:
        percentile_k: the K in "K-th percentile of past best thresholds".
            Higher K is more conservative (higher thresholds, fewer SLO
            violations, less far memory).
        warmup_seconds: the S in "disable zswap for the first S seconds".
        history_length: how many per-minute best thresholds to remember.
        spike_reaction: apply §4.3's escalation rule (use the last
            interval's best threshold when it exceeds the percentile).
            Exposed so the ablation bench can measure what the rule buys.
        fixed_threshold_seconds: when set, bypass the controller entirely
            and always use this threshold (the static-threshold baseline;
            warm-up still applies).
    """

    percentile_k: float = 98.0
    warmup_seconds: int = 600
    history_length: int = 120
    spike_reaction: bool = True
    fixed_threshold_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        check_in_range(self.percentile_k, "percentile_k", 0.0, 100.0)
        check_non_negative(self.warmup_seconds, "warmup_seconds")
        require(self.history_length >= 1, "history_length must be >= 1")


class ColdAgeThresholdPolicy:
    """Stateful per-job instance of the §4.3 control algorithm.

    Drive it once per control interval with :meth:`observe`, then read
    :meth:`threshold` for the threshold to apply during the next interval.
    """

    def __init__(self, config: ThresholdPolicyConfig, bins: AgeBins,
                 slo: Optional[PromotionRateSlo] = None):
        self.config = config
        self.bins = bins
        self.slo = slo if slo is not None else PromotionRateSlo()
        self._pool: Deque[float] = deque(maxlen=config.history_length)
        self._elapsed_seconds = 0
        self._last_best: float = DISABLED
        # DISABLED entries are encoded as a finite sentinel far above the
        # grid (see :meth:`threshold`); the encoded pool is kept sorted
        # incrementally so each percentile read is O(log n) instead of a
        # fresh sort.
        self._sentinel = float(bins.max_threshold) * 1e9
        self._sorted_pool: list = []

    def _append(self, best: float) -> None:
        """Record one interval's best threshold, keeping the sorted
        encoded mirror of the history pool in sync with the deque."""
        encoded = best if math.isfinite(best) else self._sentinel
        if len(self._pool) == self._pool.maxlen:
            oldest = self._pool[0]
            old_encoded = oldest if math.isfinite(oldest) else self._sentinel
            del self._sorted_pool[bisect_left(self._sorted_pool, old_encoded)]
        self._pool.append(best)
        insort(self._sorted_pool, encoded)
        self._last_best = best

    @property
    def warmed_up(self) -> bool:
        """True once the job has run for at least S seconds."""
        return self._elapsed_seconds >= self.config.warmup_seconds

    @property
    def history(self) -> tuple:
        """The pool of past per-minute best thresholds (oldest first)."""
        return tuple(self._pool)

    def observe(
        self,
        promotion_histogram: AgeHistogram,
        working_set_size_pages: float,
        interval_seconds: float = MINUTE,
    ) -> float:
        """Ingest one control interval's statistics.

        Args:
            promotion_histogram: promotions recorded during this interval
                only (an interval diff, not a cumulative histogram).
            working_set_size_pages: the job's working set this interval.
            interval_seconds: length of the interval.

        Returns:
            The best threshold computed for this interval.
        """
        require(
            promotion_histogram.bins.thresholds == self.bins.thresholds,
            "promotion histogram uses a different threshold grid",
        )
        self._elapsed_seconds += int(interval_seconds)
        best = best_threshold(
            promotion_histogram, working_set_size_pages, self.slo, interval_seconds
        )
        self._append(best)
        return best

    def observe_zero(self, interval_seconds: float = MINUTE) -> float:
        """Ingest an interval whose promotion histogram is all zeros.

        A zero interval's best threshold is always the most aggressive
        candidate (zero promotions fit any budget), so callers that can
        prove the interval histogram is empty — e.g. the node agent via
        the memcg's ``promo_hist_events`` counter — skip the histogram
        diff entirely.  State transitions are exactly those of
        :meth:`observe` with an empty histogram.
        """
        self._elapsed_seconds += int(interval_seconds)
        best = float(self.bins.min_threshold)
        self._append(best)
        return best

    def threshold(self) -> float:
        """Threshold to apply for the next interval (or DISABLED).

        Returns :data:`DISABLED` while warming up or with an empty history.
        Otherwise: ``max(K-th percentile of pool, last interval's best)``.
        """
        if not self.warmed_up:
            return DISABLED
        if self.config.fixed_threshold_seconds is not None:
            return float(self.config.fixed_threshold_seconds)
        if not self._pool:
            return DISABLED
        # DISABLED entries dominate: a minute where even the largest
        # candidate violated the SLO must push high percentiles to
        # "compress nothing", not to "compress at the largest threshold".
        # They are mapped to a finite sentinel far above the grid so the
        # percentile interpolation stays warning-free; any result beyond
        # the grid decodes back to DISABLED.
        kth = _sorted_percentile(self._sorted_pool, self.config.percentile_k)
        if kth > self.bins.max_threshold:
            return DISABLED
        # Snap up to the nearest candidate threshold: the kernel can only
        # enforce thresholds on the candidate grid.
        idx = bisect_left(self.bins.thresholds, kth)
        if idx >= len(self.bins.thresholds):
            kth_snapped = float(self.bins.max_threshold)
        else:
            kth_snapped = float(self.bins.thresholds[idx])
        if not self.config.spike_reaction:
            return kth_snapped
        return max(kth_snapped, self._last_best)

    def reset(self) -> None:
        """Forget all history (job restart)."""
        self._pool.clear()
        self._sorted_pool.clear()
        self._elapsed_seconds = 0
        self._last_best = DISABLED

    def inherit_state(self, other: "ColdAgeThresholdPolicy") -> None:
        """Adopt another policy's observations (parameter redeployment).

        The kernel histograms — and therefore the per-minute best
        thresholds derived from them — are properties of the *job*, not of
        the parameters, so rolling out a new ``(K, S)`` must not restart
        the job's history or its warm-up clock.
        """
        for best in other._pool:
            self._pool.append(best)
        self._sorted_pool = sorted(
            v if math.isfinite(v) else self._sentinel for v in self._pool
        )
        self._elapsed_seconds = other._elapsed_seconds
        self._last_best = other._last_best


# ----------------------------------------------------------------------
# The deployable-policy seam (policy/mechanism separation)
# ----------------------------------------------------------------------
#
# The node agent, the cluster, and staged deployment never need to know
# *which* cold-memory detection algorithm is running — only that each job
# gets a controller it can drive once per control interval.  A
# :class:`ColdMemoryPolicy` is the deployable unit: an immutable value
# object (hashable, comparable, pickle-safe across the parallel engine's
# fork boundary) that builds per-job controllers on demand.  Swapping the
# paper's §4.3 algorithm for a baseline (Thermostat, fixed threshold) is a
# one-line change at the deployment site and touches nothing below it.


class ColdMemoryPolicy:
    """A deployable cold-memory policy: builds per-job threshold controllers.

    Implementations are frozen dataclasses so a policy can be compared,
    hashed, logged, and shipped across process boundaries.  The controller
    returned by :meth:`build` must implement the per-job control surface of
    :class:`ColdAgeThresholdPolicy`: ``observe``, ``observe_zero``,
    ``threshold``, ``warmed_up``, ``reset``, and ``inherit_state`` (which
    must accept a controller built by a *different* policy — redeploying
    parameters, or a whole new algorithm, never restarts a job's history
    or warm-up clock).

    Implementations carrying a :class:`ThresholdPolicyConfig` expose it as
    ``config`` so existing ``(K, S)``-shaped call sites keep working.
    """

    #: Short algorithm label for logs, events, and CLI tables.
    name: str = "abstract"

    def build(
        self, bins: AgeBins, slo: Optional[PromotionRateSlo] = None
    ) -> ColdAgeThresholdPolicy:
        """Create a fresh per-job controller on the given threshold grid."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description (CLI/report label)."""
        return self.name


@dataclass(frozen=True)
class PaperPolicy(ColdMemoryPolicy):
    """The paper's §4.3 K-th-percentile policy, as a deployable unit.

    Attributes:
        config: the ``(K, S)`` tunables handed to every per-job controller.
    """

    config: ThresholdPolicyConfig = ThresholdPolicyConfig()
    name = "paper"

    def build(
        self, bins: AgeBins, slo: Optional[PromotionRateSlo] = None
    ) -> ColdAgeThresholdPolicy:
        return ColdAgeThresholdPolicy(self.config, bins, slo)

    def describe(self) -> str:
        return (
            f"paper(K={self.config.percentile_k:g}, "
            f"S={self.config.warmup_seconds}s)"
        )


@dataclass(frozen=True)
class FixedThresholdPolicy(ColdMemoryPolicy):
    """The static-threshold baseline: always compress at one cold age.

    Attributes:
        threshold_seconds: the fixed cold-age threshold.
        warmup_seconds: zswap stays disabled this long after job start
            (the warm-up rule applies to every policy, §4.3).
    """

    threshold_seconds: float = 3600.0
    warmup_seconds: int = 600
    name = "fixed"

    @property
    def config(self) -> ThresholdPolicyConfig:
        """The equivalent ``ThresholdPolicyConfig`` (bypass mode)."""
        return ThresholdPolicyConfig(
            warmup_seconds=self.warmup_seconds,
            fixed_threshold_seconds=float(self.threshold_seconds),
        )

    def build(
        self, bins: AgeBins, slo: Optional[PromotionRateSlo] = None
    ) -> ColdAgeThresholdPolicy:
        return ColdAgeThresholdPolicy(self.config, bins, slo)

    def describe(self) -> str:
        return f"fixed(T={self.threshold_seconds:g}s)"


def as_policy(value: object) -> ColdMemoryPolicy:
    """Coerce a raw ``ThresholdPolicyConfig`` into a deployable policy.

    Deployment surfaces (``Cluster.deploy_policy``, ``WSC.deploy_policy``,
    ``NodeAgent.set_policy``) accept either a :class:`ColdMemoryPolicy` or
    a bare ``(K, S)`` config; the latter means "the paper policy with
    these tunables", which keeps every pre-seam call site valid.
    """
    if isinstance(value, ColdMemoryPolicy):
        return value
    if isinstance(value, ThresholdPolicyConfig):
        return PaperPolicy(value)
    raise TypeError(
        "expected a ColdMemoryPolicy or ThresholdPolicyConfig, "
        f"got {type(value).__name__}"
    )


# ----------------------------------------------------------------------
# Vectorized replay (the fast far memory model's hot path, §5.3)
# ----------------------------------------------------------------------
#
# The §4.3 algorithm looks sequential — the threshold for interval ``t``
# depends on the history of per-interval best thresholds — but the *best*
# threshold of an interval depends only on that interval's promotion
# histogram and working set, never on previously chosen thresholds.  The
# offline replay therefore factors into (1) a fully data-parallel best-
# threshold pass over all intervals at once and (2) a rolling-percentile
# pass over the resulting vector.  Both are expressed here over arrays;
# :class:`ColdAgeThresholdPolicy` above stays the semantic reference, and
# the model's tests prove the two produce bit-identical thresholds.


def best_thresholds_vectorized(
    promotion_suffix_sums: np.ndarray,
    working_set_pages: np.ndarray,
    bins: AgeBins,
    slo: PromotionRateSlo,
    interval_seconds: float = MINUTE,
) -> np.ndarray:
    """:func:`best_threshold` for every interval of a trace at once.

    Args:
        promotion_suffix_sums: ``(intervals, len(bins))`` matrix whose row
            ``t`` is ``promotion_histogram.suffix_sums()`` of interval ``t``.
        working_set_pages: ``(intervals,)`` working-set sizes.
        bins: the shared candidate-threshold grid.
        slo: the promotion-rate SLO.
        interval_seconds: length of each interval.

    Returns:
        ``(intervals,)`` float array of per-interval best thresholds,
        :data:`DISABLED` where even the largest candidate violates the SLO.
    """
    budgets = (slo.target_pct_per_min / 100.0) * np.asarray(
        working_set_pages, dtype=float
    )
    rates = np.asarray(promotion_suffix_sums) * (MINUTE / interval_seconds)
    fits = rates <= budgets[:, None]
    feasible = fits.any(axis=1)
    first_fit = np.argmax(fits, axis=1)
    grid = np.asarray(bins.thresholds, dtype=float)
    return np.where(feasible, grid[first_fit], DISABLED)


def _rolling_percentile(encoded: np.ndarray, k: float, window: int) -> np.ndarray:
    """``np.percentile(encoded[max(0, t-window):t], k)`` for every ``t >= 1``.

    Row ``t`` of the result is the percentile of the history pool *before*
    interval ``t`` (the online ordering).  Entry 0 is NaN — the pool is
    empty there and the caller must treat it as disabled.  Full windows are
    one batched ``np.percentile`` call over a stride-tricks view; only the
    at-most ``window - 1`` growing prefixes at the start loop.
    """
    n = encoded.size
    out = np.full(n, np.nan)
    for t in range(1, min(n, window)):
        out[t] = np.percentile(encoded[:t], k)
    if n > window:
        windows = np.lib.stride_tricks.sliding_window_view(encoded, window)
        out[window:] = np.percentile(windows[: n - window], k, axis=1)
    return out


def replay_thresholds_vectorized(
    best: np.ndarray,
    config: ThresholdPolicyConfig,
    bins: AgeBins,
    interval_seconds: float = MINUTE,
) -> np.ndarray:
    """The threshold sequence :class:`ColdAgeThresholdPolicy` would publish.

    ``result[t]`` is the threshold governing interval ``t``, computed from
    ``best[:t]`` exactly as :meth:`ColdAgeThresholdPolicy.threshold` would
    after observing intervals ``0..t-1``: warm-up, the fixed-threshold
    bypass, the K-th percentile of the (sentinel-encoded) history pool,
    grid snapping, and the spike-reaction escalation.

    Args:
        best: per-interval best thresholds
            (from :func:`best_thresholds_vectorized`).
        config: the policy parameters being replayed.
        bins: the candidate-threshold grid.
        interval_seconds: length of each interval.
    """
    best = np.asarray(best, dtype=float)
    n = best.size
    thresholds = np.full(n, DISABLED)
    if n == 0:
        return thresholds
    elapsed = np.arange(n, dtype=np.int64) * int(interval_seconds)
    warmed = elapsed >= config.warmup_seconds
    if config.fixed_threshold_seconds is not None:
        thresholds[warmed] = float(config.fixed_threshold_seconds)
        return thresholds
    # Interval 0 has an empty pool and stays DISABLED regardless of warm-up.
    active = warmed.copy()
    active[0] = False
    if not active.any():
        return thresholds
    sentinel = float(bins.max_threshold) * 1e9
    encoded = np.where(np.isfinite(best), best, sentinel)
    kth = _rolling_percentile(encoded, config.percentile_k,
                              config.history_length)[active]
    grid = np.asarray(bins.thresholds)
    snap = np.searchsorted(grid, kth, side="left")
    snapped = np.where(
        snap >= len(grid),
        float(bins.max_threshold),
        grid.astype(float)[np.minimum(snap, len(grid) - 1)],
    )
    # A percentile beyond the grid decodes back to DISABLED; it dominates
    # the spike-reaction max below exactly as in the scalar policy.
    snapped = np.where(kth > bins.max_threshold, DISABLED, snapped)
    if config.spike_reaction:
        last_best = best[np.flatnonzero(active) - 1]
        snapped = np.maximum(snapped, last_best)
    thresholds[active] = snapped
    return thresholds
