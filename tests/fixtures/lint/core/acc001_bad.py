"""ACC001 positive fixture: exact float equality in accounting code."""


def at_slo(rate, pages, total):
    if rate == 0.2:  # finding: float literal equality
        return True
    if pages / total != 1.0:  # finding: division feeds !=
        return False
    return float(pages) == total  # finding: float() cast equality
