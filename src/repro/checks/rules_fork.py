"""FORK001: pickle-safety for classes shipped across the fork boundary.

The parallel engine (``engine/parallel.py``) ships whole cluster shards
to worker processes and merges deltas back.  Anything reachable from a
shard must survive ``pickle.dumps``: a lambda, an open file handle, a
lock, or a live generator stored on ``self`` in ``__init__`` will blow
up at dispatch time — but only when the run is parallel, which is
exactly when it is hardest to debug.  This rule flags those attribute
assignments statically.

A class that defines ``__getstate__`` or ``__reduce__`` (or
``__reduce_ex__``/``__getnewargs__``) has opted into managing its own
pickling and is skipped — e.g. :class:`repro.common.events.EventLog`
drops its subscriber callbacks that way.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.checks.core import Rule, RuleVisitor, register

__all__ = ["ForkSafetyRule"]

#: Defining any of these means the class controls its own pickling.
_PICKLE_HOOKS = frozenset(
    {"__getstate__", "__reduce__", "__reduce_ex__", "__getnewargs__"}
)

#: Constructors whose instances cannot cross a fork/pickle boundary.
_UNPICKLABLE_CTORS = {
    "open": "open file handle",
    "threading.Lock": "threading lock",
    "threading.RLock": "threading lock",
    "threading.Condition": "threading condition",
    "threading.Event": "threading event",
    "threading.Semaphore": "threading semaphore",
    "threading.BoundedSemaphore": "threading semaphore",
    "multiprocessing.Lock": "multiprocessing lock",
    "multiprocessing.RLock": "multiprocessing lock",
    "multiprocessing.Queue": "multiprocessing queue",
}


class _ForkSafetyVisitor(RuleVisitor):
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        defined = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if defined & _PICKLE_HOOKS:
            return  # class manages its own pickling; don't descend
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
                self._check_init(node.name, stmt)
        # nested classes still need checking
        for stmt in node.body:
            if isinstance(stmt, ast.ClassDef):
                self.visit_ClassDef(stmt)

    def _check_init(self, class_name: str, init: ast.FunctionDef) -> None:
        for stmt in ast.walk(init):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            if not any(self._is_self_attr(t) for t in targets):
                continue
            value = stmt.value
            if value is None:
                continue
            hazard = self._hazard(value)
            if hazard is not None:
                self.report(
                    stmt,
                    f"{class_name}.__init__ stores a {hazard} on self; it "
                    f"cannot cross the fork/pickle boundary — hold a "
                    f"picklable description instead, or define __getstate__",
                )

    @staticmethod
    def _is_self_attr(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    def _hazard(self, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "lambda"
        if isinstance(value, ast.GeneratorExp):
            return "live generator"
        if isinstance(value, ast.Call):
            name = self.dotted_name(value.func)
            if name is not None and name in _UNPICKLABLE_CTORS:
                return _UNPICKLABLE_CTORS[name]
        return None


@register
class ForkSafetyRule(Rule):
    """FORK001: unpicklable state stored on self in __init__."""

    id = "FORK001"
    title = "unpicklable attribute on a fork-boundary class"
    visitor_class = _ForkSafetyVisitor
