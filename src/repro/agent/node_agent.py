"""The node agent — Borglet's far-memory control loop (paper §5.2).

Every minute, for every job on its machine, the agent:

1. reads the kernel's cumulative promotion histogram and diffs it against
   the copy from the previous minute (the per-interval histogram);
2. computes the job's working set size from the cold-age snapshot;
3. feeds both to the job's :class:`ColdAgeThresholdPolicy` (§4.3) to get
   the smallest SLO-respecting threshold for the past minute;
4. publishes the policy's chosen threshold (K-th percentile of history,
   escalated on spikes) into the memcg, enables zswap only after the job's
   ``S``-second warm-up, and pins the memcg soft limit at the working set;
5. records the *actual* promotion rate SLI for monitoring (Fig. 7).

The agent also triggers kreclaimd after publishing thresholds and asks the
arena to compact when fragmentation crosses a watermark — both duties the
paper assigns to the node agent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.common.events import EventKind, EventLog
from repro.common.simtime import PeriodicSchedule
from repro.common.units import MINUTE
from repro.common.validation import check_fraction
from repro.core.histograms import AgeHistogram
from repro.core.slo import (
    PromotionRateSlo,
    normalized_promotion_rate,
    working_set_pages,
)
from repro.core.threshold_policy import (
    DISABLED,
    ColdAgeThresholdPolicy,
    ColdMemoryPolicy,
    ThresholdPolicyConfig,
    as_policy,
)
from repro.kernel.machine import FarMemoryMode, Machine
from repro.obs import (
    MetricName,
    MetricRegistry,
    Tracer,
    get_registry,
    get_tracer,
)

__all__ = ["SliSample", "NodeAgent"]

#: Buckets for the normalized promotion-rate SLI histogram (%/min).  The
#: SLO default is 0.2 %/min, so the grid is dense around it; the first
#: bucket (le=0) isolates the fully-quiet minutes.
PROMOTION_RATE_BUCKETS = (
    0.0, 0.01, 0.025, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1.0, 2.0, 5.0, 10.0,
)

#: Buckets for the chosen cold-age thresholds (seconds); the paper's
#: candidate grid spans 120 s to 8 h.
THRESHOLD_BUCKETS = (
    120, 240, 480, 900, 1800, 3600, 7200, 14400, 28800, 86400,
)


@dataclass(frozen=True)
class SliSample:
    """One per-job, per-minute service-level-indicator observation.

    Attributes:
        time: start of the observed minute.
        job_id: the job observed.
        promotions: actual pages promoted during the minute.
        working_set_pages: the job's working set that minute.
        normalized_rate_pct_per_min: promotions as % of working set.
        threshold: the cold-age threshold in force (may be inf = disabled).
    """

    time: int
    job_id: str
    promotions: int
    working_set_pages: int
    normalized_rate_pct_per_min: float
    threshold: float


@dataclass
class _JobState:
    """Per-job bookkeeping the agent keeps between control rounds."""

    policy: ColdAgeThresholdPolicy
    last_promotion_histogram: AgeHistogram
    last_promoted_total: int = 0
    # Snapshot of the memcg's monotonic promotion-histogram event counter
    # at the last diff; equality next round proves the interval histogram
    # is identically zero (the quiet-round fast path).
    last_promo_events: int = 0


class NodeAgent:
    """Per-machine far-memory controller.

    Args:
        machine: the machine to control.
        policy_config: what to run — a deployable
            :class:`~repro.core.threshold_policy.ColdMemoryPolicy`, or a
            bare ``(K, S)`` :class:`ThresholdPolicyConfig` meaning "the
            paper policy with these tunables" (the pre-seam call shape).
        slo: the promotion-rate SLO.
        control_period: seconds between control rounds (one minute).
        compaction_watermark: arena external-fragmentation fraction above
            which the agent triggers explicit compaction.
        events: optional event log; the agent records an
            ``agent.histogram_rewarm`` event whenever a job's kernel
            histograms were flagged corrupt and its policy restarted
            warm-up from scratch.
        registry: metrics registry (defaults to the process-global one).
        tracer: span tracer (defaults to the process-global one).
    """

    def __init__(
        self,
        machine: Machine,
        policy_config: Optional[object] = None,
        slo: Optional[PromotionRateSlo] = None,
        control_period: int = MINUTE,
        compaction_watermark: float = 0.2,
        events: Optional[EventLog] = None,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        check_fraction(compaction_watermark, "compaction_watermark")
        self.machine = machine
        self.events = events
        self.policy: ColdMemoryPolicy = as_policy(
            policy_config if policy_config is not None else ThresholdPolicyConfig()
        )
        self.slo = slo if slo is not None else PromotionRateSlo()
        self.control_period = int(control_period)
        self.compaction_watermark = compaction_watermark
        self._schedule = PeriodicSchedule(self.control_period)
        self._jobs: Dict[str, _JobState] = {}
        self.sli_samples: List[SliSample] = []
        self.rounds = 0
        self.rewarms = 0
        # Jobs currently re-warming after a corrupt-histogram rewarm;
        # drives the degraded-mode gauge until warm-up completes again.
        self._rewarming: Set[str] = set()

        registry = registry if registry is not None else get_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        self._bind_metrics(registry)

    def _bind_metrics(self, registry: MetricRegistry) -> None:
        machine_id = self.machine.machine_id
        self._m_rounds = registry.counter(
            MetricName.AGENT_ROUNDS_TOTAL,
            "Completed node-agent control rounds.", ("machine",)
        ).labels(machine=machine_id)
        self._m_threshold_updates = registry.counter(
            MetricName.THRESHOLD_UPDATES_TOTAL,
            "Per-job cold-age threshold publications.", ("machine",)
        ).labels(machine=machine_id)
        self._h_threshold = registry.histogram(
            MetricName.THRESHOLD_SECONDS,
            "Published cold-age thresholds (finite values only).",
            ("machine",),
            buckets=THRESHOLD_BUCKETS,
        ).labels(machine=machine_id)
        self._h_promotion_rate = registry.histogram(
            MetricName.PROMOTION_RATE_PCT_PER_MIN,
            "Normalized per-job promotion-rate SLI (% of WSS per minute).",
            ("machine",),
            buckets=PROMOTION_RATE_BUCKETS,
        ).labels(machine=machine_id)
        self._m_rewarms = registry.counter(
            MetricName.AGENT_HISTOGRAM_REWARMS_TOTAL,
            "Jobs sent back through warm-up after corrupt kernel histograms.",
            ("machine",)
        ).labels(machine=machine_id)
        self._g_degraded = registry.gauge(
            MetricName.DEGRADED_MODE,
            "1 while a component is running degraded (per component).",
            ("component", "machine")
        ).labels(component="agent", machine=machine_id)

    def rebind_observability(self, registry: MetricRegistry,
                             tracer: Tracer) -> None:
        """Re-point metric handles and tracer after a cross-process move."""
        self._tracer = tracer
        self._bind_metrics(registry)

    @property
    def policy_config(self) -> Optional[ThresholdPolicyConfig]:
        """The deployed policy's ``(K, S)`` tunables, when it has any.

        Paper and fixed-threshold policies expose their underlying
        :class:`ThresholdPolicyConfig`; algorithm swaps (e.g. Thermostat)
        return None — there is no ``(K, S)`` interpretation to report.
        """
        config = getattr(self.policy, "config", None)
        return config if isinstance(config, ThresholdPolicyConfig) else None

    def set_policy(self, policy: object) -> None:
        """Deploy a new cold-memory policy; per-job history carries over.

        The per-minute best thresholds come from kernel histograms and are
        policy-independent, so existing jobs keep their histories and their
        warm-up clocks — only the interpretation of that history changes.
        This holds for parameter redeployments *and* whole-algorithm swaps
        (``inherit_state`` is cross-policy by contract).
        """
        self.policy = as_policy(policy)
        for job_id, state in list(self._jobs.items()):
            memcg = self.machine.memcgs.get(job_id)
            if memcg is None:
                continue
            controller = self.policy.build(memcg.bins, self.slo)
            controller.inherit_state(state.policy)
            self._jobs[job_id] = _JobState(
                policy=controller,
                last_promotion_histogram=state.last_promotion_histogram,
                last_promoted_total=state.last_promoted_total,
                last_promo_events=state.last_promo_events,
            )

    def set_policy_config(self, config: ThresholdPolicyConfig) -> None:
        """Deploy new ``(K, S)`` tunables (pre-seam spelling of
        :meth:`set_policy` with the paper policy)."""
        self.set_policy(config)

    def maybe_control(self, now: int) -> bool:
        """Run a control round if the period boundary passed."""
        if not self._schedule.due(now):
            return False
        self.control(now)
        return True

    def control(self, now: int) -> None:
        """One control round over every job on the machine."""
        if self.machine.config.mode is not FarMemoryMode.PROACTIVE:
            return
        with self._tracer.span("agent.control", sim_time=now):
            self._control_jobs(now)
        self._maybe_compact()
        self.machine.run_reclaim()
        self.rounds += 1
        self._m_rounds.inc()

    def _control_jobs(self, now: int) -> None:
        for job_id, memcg in self.machine.memcgs.items():
            state = self._jobs.get(job_id)
            if state is None:
                state = _JobState(
                    policy=self.policy.build(memcg.bins, self.slo),
                    last_promotion_histogram=memcg.promotion_histogram.copy(),
                    last_promoted_total=memcg.promoted_pages_total,
                    last_promo_events=memcg.promo_hist_events,
                )
                self._jobs[job_id] = state

            if memcg.histograms_corrupt:
                self._rewarm_job(now, job_id, memcg, state)
                continue

            wss = working_set_pages(
                memcg.cold_age_histogram, self.slo.min_cold_age_seconds
            )

            events = memcg.promo_hist_events
            if events == state.last_promo_events:
                # Quiet round: the kernel's monotonic event counter proves
                # nothing entered the promotion histogram this interval, so
                # the diff would be all zeros and the interval's best
                # threshold is the most aggressive candidate.  Skip the
                # histogram diff/copy pair entirely (both backends maintain
                # the counter identically, so this is bit-equivalent).
                state.policy.observe_zero(self.control_period)
            else:
                interval_hist = memcg.promotion_histogram.diff(
                    state.last_promotion_histogram
                )
                state.last_promotion_histogram = (
                    memcg.promotion_histogram.copy()
                )
                state.last_promo_events = events
                state.policy.observe(interval_hist, wss, self.control_period)
            threshold = state.policy.threshold()
            memcg.zswap_enabled = state.policy.warmed_up
            memcg.cold_age_threshold = threshold
            memcg.soft_limit_pages = wss
            self._m_threshold_updates.inc()
            if threshold != float("inf"):
                self._h_threshold.observe(threshold)

            promotions = memcg.promoted_pages_total - state.last_promoted_total
            state.last_promoted_total = memcg.promoted_pages_total
            per_min = promotions * (MINUTE / self.control_period)
            rate = normalized_promotion_rate(per_min, wss)
            if wss > 0 and rate == rate and rate != float("inf"):
                self._h_promotion_rate.observe(rate)
            self.sli_samples.append(
                SliSample(
                    time=now,
                    job_id=job_id,
                    promotions=promotions,
                    working_set_pages=wss,
                    normalized_rate_pct_per_min=rate,
                    threshold=threshold,
                )
            )

        # Drop state for jobs that left the machine.
        gone = set(self._jobs) - set(self.machine.memcgs)
        for job_id in gone:
            del self._jobs[job_id]
        self._rewarming -= gone
        for job_id in sorted(self._rewarming):
            if self._jobs[job_id].policy.warmed_up:
                self._rewarming.discard(job_id)
        self._g_degraded.set(float(len(self._rewarming)))

    def _rewarm_job(
        self, now: int, job_id: str, memcg, state: _JobState
    ) -> None:
        """Degraded mode for a job whose kernel histograms are corrupt.

        The promotion/cold-age counts can't be trusted, so instead of
        feeding garbage into the threshold policy the agent disables
        zswap for the job, forgets the policy's history (restarting the
        ``S``-second warm-up), and resets its own diff baselines to the
        current cumulative counters so the first post-rewarm interval is
        measured from a clean slate.  The corruption flag is consumed:
        the kernel re-accumulates from here on.
        """
        state.policy.reset()
        memcg.zswap_enabled = False
        memcg.cold_age_threshold = DISABLED
        state.last_promotion_histogram = memcg.promotion_histogram.copy()
        state.last_promoted_total = memcg.promoted_pages_total
        state.last_promo_events = memcg.promo_hist_events
        memcg.histograms_corrupt = False
        self._rewarming.add(job_id)
        self.rewarms += 1
        self._m_rewarms.inc()
        if self.events is not None:
            self.events.record(
                now, EventKind.AGENT_HISTOGRAM_REWARM,
                job=job_id, machine=self.machine.machine_id,
            )

    def _maybe_compact(self) -> None:
        """Trigger explicit arena compaction past the fragmentation mark."""
        stats = self.machine.arena.stats()
        if stats.footprint_bytes == 0:
            return
        fragmentation = (
            stats.external_fragmentation_bytes / stats.footprint_bytes
        )
        if fragmentation > self.compaction_watermark:
            self.machine.arena.compact()

    def drain_sli_samples(self) -> List[SliSample]:
        """Return and clear accumulated SLI samples (monitoring upload)."""
        samples = self.sli_samples
        self.sli_samples = []
        return samples
