"""Interprocedural passes: FLOW001 taint, FLOW002 fork closure.

**FLOW001 — nondeterminism reaches the tick path.**  The local rules
(DET001/DET002/DET003) flag a wall-clock read or an unseeded RNG *where
it happens*; they cannot see that a kernel sweep calls a helper that
calls a helper that reads ``time.time()``.  This pass propagates a
taint fact — "calling this function can observe nondeterminism" — from
every source function to fixpoint over the call graph (reverse BFS, so
chains are shortest), then reports each **sink** function (anything
defined under ``kernel/``, ``engine/`` or ``model/``) whose taint
arrives *through a call*.  The finding anchors at the call site inside
the sink — the line a ``# repro: noqa[FLOW001]`` suppression must sit
on — and carries the full source→sink chain in
:attr:`~repro.checks.core.Finding.chain`.

Only the innermost sink is reported: if kernel ``f`` calls kernel ``g``
calls a tainted helper, the finding lands on ``g`` (where
nondeterminism *enters* the tick path), not on every transitive caller.
A sink that contains a source directly is reported with a one-hop
chain — that is how hazards no local rule covers (``id()``,
``os.environ``) surface inside the tick path itself.

The **unknown callee** lattice element is deliberately non-tainting:
an unresolvable call contributes nothing, so every FLOW001 report is a
*proof* (a concrete chain), never a guess.

**FLOW002 — fork-boundary closure.**  FORK001 checks each class
locally; this pass generalizes it to reachability: starting from the
parallel-engine worker entry points (functions under ``engine/`` whose
name contains ``worker``), everything transitively reachable must be
pickle-safe.  A reachable constructor call to a class whose ``__init__``
stores an unpicklable attribute (and that declares no pickle hooks) is
reported at the hazard line, with the entry→constructor chain attached.

Source-side allowlist: functions in ``obs/`` (measures wall time by
design), ``checks/`` (the invariant gate reads ``REPRO_CHECKS`` from
the environment), ``common/rng.py`` (the one sanctioned generator
factory), and ``*bench.py`` harnesses are never treated as taint
sources — mirroring the local rules' allowlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.checks.core import Finding
from repro.checks.flow.callgraph import CallGraph, FunctionInfo, SourceInfo

__all__ = [
    "SOURCE_ALLOWLIST_FRAGMENTS",
    "SINK_PATH_FRAGMENTS",
    "find_worker_entry_points",
    "run_fork_closure",
    "run_taint",
]

#: Rel-path fragments whose functions never *originate* taint.
SOURCE_ALLOWLIST_FRAGMENTS: Tuple[str, ...] = (
    "obs/",
    "checks/",
    "common/rng.py",
)

#: Rel-path suffixes exempt as sources (throughput harnesses).
SOURCE_ALLOWLIST_SUFFIXES: Tuple[str, ...] = ("bench.py",)

#: Rel-path fragments that make a function a tick-path sink.
SINK_PATH_FRAGMENTS: Tuple[str, ...] = ("kernel/", "engine/", "model/")


@dataclass
class _Taint:
    """Why one function is tainted (enough to rebuild the chain)."""

    source: SourceInfo
    #: (callee qualname, call line) the taint arrived through, or None
    #: when the function contains the source directly.
    via: Optional[Tuple[str, int]] = None


def _source_exempt(fn: FunctionInfo) -> bool:
    rel = fn.rel_path
    if any(fragment in rel for fragment in SOURCE_ALLOWLIST_FRAGMENTS):
        return True
    return any(rel.endswith(suffix) for suffix in SOURCE_ALLOWLIST_SUFFIXES)


def _is_sink(fn: FunctionInfo) -> bool:
    rel = fn.rel_path
    if any(rel.endswith(suffix) for suffix in SOURCE_ALLOWLIST_SUFFIXES):
        return False  # bench harnesses measure wall time by design
    return any(fragment in rel for fragment in SINK_PATH_FRAGMENTS)


def _propagate(graph: CallGraph) -> Dict[str, _Taint]:
    """Reverse-BFS taint to fixpoint; first (shortest) taint wins.

    BFS from the source layer guarantees termination on cycles — a
    function is tainted at most once — and yields shortest chains, so
    diagnostics stay readable.
    """
    taints: Dict[str, _Taint] = {}
    frontier: List[str] = []
    for qualname, fn in graph.functions.items():
        if fn.sources and not _source_exempt(fn):
            taints[qualname] = _Taint(source=fn.sources[0])
            frontier.append(qualname)
    frontier.sort()  # deterministic report order
    while frontier:
        next_frontier: List[str] = []
        for callee in frontier:
            taint = taints[callee]
            for caller, line in sorted(graph.callers.get(callee, ())):
                if caller not in taints:
                    taints[caller] = _Taint(
                        source=taint.source, via=(callee, line)
                    )
                    next_frontier.append(caller)
        frontier = sorted(next_frontier)
    return taints


def _chain_lines(
    graph: CallGraph, qualname: str, taints: Dict[str, _Taint]
) -> List[str]:
    """Render the qualname→source hop list for a finding's chain."""
    lines: List[str] = []
    current: Optional[str] = qualname
    guard = 0
    while current is not None and guard < 64:
        guard += 1
        fn = graph.functions[current]
        taint = taints[current]
        if taint.via is None:
            lines.append(
                f"{current} ({fn.rel_path}:{taint.source.line}): "
                f"{taint.source.detail}"
            )
            current = None
        else:
            callee, line = taint.via
            lines.append(f"{current} ({fn.rel_path}:{line}) calls")
            current = callee
    return lines


def run_taint(graph: CallGraph) -> List[Finding]:
    """FLOW001 over a linked call graph."""
    taints = _propagate(graph)
    findings: List[Finding] = []
    for qualname in sorted(taints):
        fn = graph.functions[qualname]
        if not _is_sink(fn):
            continue
        taint = taints[qualname]
        if taint.via is not None:
            callee_fn = graph.functions[taint.via[0]]
            if _is_sink(callee_fn):
                # Taint entered the tick path deeper in; report there.
                continue
            anchor_line = taint.via[1]
            route = f"via `{taint.via[0]}`"
        else:
            anchor_line = taint.source.line
            route = "directly"
        findings.append(
            Finding(
                path=fn.rel_path,
                line=anchor_line,
                col=1,
                rule="FLOW001",
                message=(
                    f"nondeterminism ({taint.source.detail}) reaches "
                    f"tick-path function `{qualname}` {route}"
                ),
                chain=tuple(_chain_lines(graph, qualname, taints)),
            )
        )
    return sorted(findings)


def find_worker_entry_points(graph: CallGraph) -> List[str]:
    """Fork-boundary entry points: ``engine/`` functions named ``*worker*``.

    In the shipped tree this is ``repro.engine.parallel._worker_main`` —
    the loop every forked shard process runs.  The name-based convention
    (leading-underscore-stripped name starts with ``worker``) keeps
    fixtures and future engines (ROADMAP item 2's broker workers)
    covered without a hardcoded list, while helpers that merely mention
    workers (``default_worker_count``) stay out.
    """
    return sorted(
        qualname
        for qualname, fn in graph.functions.items()
        if "engine/" in fn.rel_path
        and fn.name.lower().lstrip("_").startswith("worker")
        and fn.class_name is None
    )


def run_fork_closure(graph: CallGraph) -> List[Finding]:
    """FLOW002 over a linked call graph."""
    entries = find_worker_entry_points(graph)
    if not entries:
        return []
    reached = graph.reachable_from(entries)
    findings: List[Finding] = []
    for qualname in sorted(reached):
        fn = graph.functions[qualname]
        if fn.name != "__init__" or fn.class_name is None:
            continue
        cls = graph.classes.get(fn.class_name)
        if cls is None or cls.has_pickle_hooks or not cls.hazards:
            continue
        # Rebuild the entry -> constructor chain from BFS parents.
        chain: List[str] = []
        current = qualname
        guard = 0
        while guard < 64:
            guard += 1
            parent, line = reached[current]
            if parent == current:
                chain.append(f"{current} (fork worker entry point)")
                break
            parent_fn = graph.functions[parent]
            chain.append(
                f"{current} reached from {parent} ({parent_fn.rel_path}:{line})"
            )
            current = parent
        for hazard_line, hazard in cls.hazards:
            findings.append(
                Finding(
                    path=cls.rel_path,
                    line=hazard_line,
                    col=1,
                    rule="FLOW002",
                    message=(
                        f"`{cls.qualname}` stores an unpicklable attribute "
                        f"({hazard}) on self and is reachable from the fork "
                        f"worker entry point(s); it cannot cross the "
                        f"fork/pickle boundary"
                    ),
                    chain=tuple(chain),
                )
            )
    return sorted(findings)
