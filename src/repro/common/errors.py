"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "OutOfMemoryError",
    "SchedulingError",
    "TraceError",
    "TraceStoreError",
    "AutotunerError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration value is missing, malformed, or out of range."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class OutOfMemoryError(SimulationError):
    """A machine could not satisfy an allocation even after reclaim."""


class SchedulingError(ReproError):
    """The cluster scheduler could not place or manage a job."""


class TraceError(ReproError):
    """A far-memory trace is malformed or inconsistent."""


class TraceStoreError(TraceError):
    """The on-disk columnar trace store is malformed or misused."""


class AutotunerError(ReproError):
    """The autotuning pipeline failed (model error, GP failure, ...)."""
