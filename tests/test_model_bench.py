"""The ``repro bench --model`` throughput harness."""

import json

from repro.model.bench import (
    bench_configs,
    run_model_bench,
    synthetic_fleet_traces,
)


class TestSyntheticTraces:
    def test_deterministic_per_seed(self):
        a = synthetic_fleet_traces(jobs=3, intervals=10, seed=5)
        b = synthetic_fleet_traces(jobs=3, intervals=10, seed=5)
        assert [t.to_dicts() for t in a] == [t.to_dicts() for t in b]

    def test_seed_changes_traces(self):
        a = synthetic_fleet_traces(jobs=2, intervals=6, seed=1)
        b = synthetic_fleet_traces(jobs=2, intervals=6, seed=2)
        assert [t.to_dicts() for t in a] != [t.to_dicts() for t in b]

    def test_shape(self):
        traces = synthetic_fleet_traces(jobs=4, intervals=7, seed=0)
        assert len(traces) == 4
        assert all(len(t) == 7 for t in traces)


class TestBenchConfigs:
    def test_count_and_determinism(self):
        assert len(bench_configs(12)) == 12
        assert bench_configs(6) == bench_configs(6)

    def test_configs_vary(self):
        configs = bench_configs(8)
        assert len(set(configs)) > 1


class TestRunModelBench:
    def test_quick_run_report_shape(self, tmp_path):
        out = tmp_path / "BENCH_model.json"
        report = run_model_bench(
            jobs=4, intervals=24, configs=3, workers=1, output=out
        )
        assert report["equivalent"] is True
        assert report["model"] == {
            "jobs": 4, "intervals": 24, "configs": 3, "seed": 17,
        }
        assert report["scalar"]["configs_per_second"] > 0
        assert report["vectorized"]["configs_per_second"] > 0
        assert report["speedup_vectorized"] > 0
        # workers=1 skips the pool mode.
        assert report["parallel"] is None
        assert report["speedup_parallel"] is None
        assert json.loads(out.read_text()) == report
