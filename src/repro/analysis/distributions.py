"""Distribution statistics used by the paper's figures.

The evaluation figures are all distribution renderings: violin+box plots
over machines (Figs. 2, 6), CDFs over jobs (Figs. 3, 7, 8, 9).  This module
computes those summaries from raw samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.common.validation import require

__all__ = ["ViolinStats", "violin_stats", "cdf_points", "percentile_summary"]


@dataclass(frozen=True)
class ViolinStats:
    """Box/violin summary of one sample set (one violin in Fig. 2/6).

    Attributes:
        n: sample count.
        median: 50th percentile.
        q1 / q3: first and third quartiles.
        whisker_low / whisker_high: data extrema within 1.5 IQR of the box.
        minimum / maximum: full range.
    """

    n: int
    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    minimum: float
    maximum: float

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1


def violin_stats(values: Sequence[float]) -> ViolinStats:
    """Compute the Fig. 2-style box/whisker summary.

    Whiskers follow the matplotlib/Tukey convention: the most extreme data
    points within 1.5 IQR beyond the quartiles.
    """
    data = np.asarray(list(values), dtype=np.float64)
    require(data.size > 0, "violin_stats needs at least one sample")
    q1, median, q3 = np.percentile(data, [25.0, 50.0, 75.0])
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    within = data[(data >= low_fence) & (data <= high_fence)]
    return ViolinStats(
        n=int(data.size),
        median=float(median),
        q1=float(q1),
        q3=float(q3),
        whisker_low=float(within.min()),
        whisker_high=float(within.max()),
        minimum=float(data.min()),
        maximum=float(data.max()),
    )


def cdf_points(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: sorted values and cumulative fractions in (0, 1]."""
    data = np.sort(np.asarray(list(values), dtype=np.float64))
    require(data.size > 0, "cdf_points needs at least one sample")
    fractions = np.arange(1, data.size + 1) / data.size
    return data, fractions


def percentile_summary(
    values: Sequence[float],
    percentiles: Sequence[float] = (10, 25, 50, 75, 90, 98),
) -> Dict[str, float]:
    """Named percentiles, e.g. ``{"p50": ..., "p98": ...}``."""
    data = np.asarray(list(values), dtype=np.float64)
    require(data.size > 0, "percentile_summary needs at least one sample")
    return {
        f"p{int(p) if float(p).is_integer() else p}": float(
            np.percentile(data, p)
        )
        for p in percentiles
    }
