"""Staged deployment with monitoring and rollback (paper §5.3).

"The deployment happens in multiple stages from qualification to production
with rigorous monitoring at each stage in order to detect bad
configurations and roll back if necessary before causing a large-scale
impact."

:class:`StagedDeployment` rolls a configuration to progressively larger
slices of the fleet; after each stage it runs the fleet forward, measures
the SLO on the slice, and either advances, or rolls every touched cluster
back to the previous configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.agent.monitoring import SloMonitor
from repro.common.validation import check_fraction, check_positive, require
from repro.core.threshold_policy import ThresholdPolicyConfig
from repro.cluster.wsc import WSC

__all__ = ["DeploymentStage", "StageOutcome", "StagedDeployment"]


@dataclass(frozen=True)
class DeploymentStage:
    """One rollout stage.

    Attributes:
        name: e.g. ``"qualification"``, ``"canary"``, ``"production"``.
        fleet_fraction: cumulative fraction of clusters running the new
            configuration after this stage.
        soak_seconds: how long to run before judging the stage.
    """

    name: str
    fleet_fraction: float
    soak_seconds: int

    def __post_init__(self) -> None:
        check_fraction(self.fleet_fraction, "fleet_fraction")
        check_positive(self.soak_seconds, "soak_seconds")


#: The paper-style default ladder.
DEFAULT_STAGES = (
    DeploymentStage("qualification", 0.1, 3600),
    DeploymentStage("canary", 0.3, 3600),
    DeploymentStage("production", 1.0, 3600),
)


@dataclass
class StageOutcome:
    """Result of one stage.

    Attributes:
        stage: the stage that ran.
        p98_promotion_rate: measured SLI on the upgraded slice.
        passed: whether the stage met the SLO.
        alerts: names of monitoring rules that fired during the soak.
    """

    stage: DeploymentStage
    p98_promotion_rate: float
    passed: bool
    alerts: tuple = ()


class StagedDeployment:
    """Rolls a new configuration through the fleet, stage by stage.

    Args:
        fleet: the WSC to deploy to.
        stages: the rollout ladder (cumulative fractions, increasing).
        slo_limit: maximum acceptable p98 normalized promotion rate.
    """

    def __init__(
        self,
        fleet: WSC,
        stages: Sequence[DeploymentStage] = DEFAULT_STAGES,
        slo_limit: float = 0.2,
    ):
        require(len(stages) > 0, "need at least one stage")
        fractions = [s.fleet_fraction for s in stages]
        require(
            all(b >= a for a, b in zip(fractions, fractions[1:])),
            "stage fractions must be non-decreasing",
        )
        check_positive(slo_limit, "slo_limit")
        self.fleet = fleet
        self.stages = list(stages)
        self.slo_limit = float(slo_limit)
        self.outcomes: List[StageOutcome] = []

    def deploy(
        self,
        new_config: ThresholdPolicyConfig,
        previous_config: ThresholdPolicyConfig,
    ) -> bool:
        """Run the ladder; returns True if production was reached.

        On a failed stage, every cluster that received ``new_config`` is
        rolled back to ``previous_config`` and the ladder stops.
        """
        clusters = self.fleet.clusters
        upgraded = 0
        for stage in self.stages:
            target = max(1, round(stage.fleet_fraction * len(clusters)))
            for cluster in clusters[upgraded:target]:
                cluster.deploy_policy(new_config)
            upgraded = max(upgraded, target)

            before = len(self.fleet.sli_history)
            self.fleet.run(stage.soak_seconds)
            slice_ids = {c.name for c in clusters[:upgraded]}
            new_samples = [
                s
                for s in self.fleet.sli_history[before:]
                if s.job_id and self._cluster_of(s.job_id) in slice_ids
            ]
            monitor = SloMonitor(
                window_seconds=stage.soak_seconds, slo_limit=self.slo_limit
            )
            alerts = monitor.observe(self.fleet.now, new_samples)
            p98 = monitor.window.percentile(98.0)
            passed = monitor.healthy
            self.outcomes.append(
                StageOutcome(
                    stage, p98, passed,
                    alerts=tuple(a.rule for a in alerts),
                )
            )
            if not passed:
                for cluster in clusters[:upgraded]:
                    cluster.deploy_policy(previous_config)
                return False
        return True

    def _cluster_of(self, job_id: str) -> Optional[str]:
        for cluster in self.fleet.clusters:
            if job_id in cluster.running:
                return cluster.name
        return None


