"""Machine composition: accounting, fast path, modes, OOM behaviour."""

import numpy as np
import pytest

from repro.common.errors import OutOfMemoryError, SimulationError
from repro.common.rng import SeedSequenceFactory
from repro.common.units import GIB, MIB, PAGE_SIZE
from repro.kernel.compression import ContentProfile
from repro.kernel.machine import FarMemoryMode, Machine, MachineConfig


def make_machine(mode=FarMemoryMode.PROACTIVE, dram=1 << 30, **kwargs):
    return Machine(
        "m0",
        MachineConfig(dram_bytes=dram, mode=mode, **kwargs),
        seeds=SeedSequenceFactory(5),
    )


COMPRESSIBLE = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)


class TestAccounting:
    def test_fresh_machine_all_free(self):
        machine = make_machine()
        assert machine.used_bytes == 0
        assert machine.free_bytes == 1 << 30

    def test_allocation_consumes_near_memory(self):
        machine = make_machine()
        machine.add_job("j", 1000)
        machine.allocate("j", 500)
        assert machine.near_bytes == 500 * PAGE_SIZE
        assert machine.free_bytes == (1 << 30) - 500 * PAGE_SIZE

    def test_compression_frees_memory(self):
        machine = make_machine()
        memcg = machine.add_job("j", 1000, COMPRESSIBLE)
        machine.allocate("j", 1000)
        for t in range(0, 481, 60):
            machine.tick(t)
        memcg.cold_age_threshold = 120.0
        machine.run_reclaim()
        assert machine.far_pages == 1000
        assert machine.saved_bytes() > 0
        assert machine.used_bytes < 1000 * PAGE_SIZE

    def test_cold_pages_aggregates_jobs(self):
        machine = make_machine()
        machine.add_job("a", 100, COMPRESSIBLE)
        machine.add_job("b", 100, COMPRESSIBLE)
        machine.allocate("a", 100)
        machine.allocate("b", 50)
        for t in range(0, 361, 60):
            machine.tick(t)
        assert machine.cold_pages(120) == 150


class TestJobLifecycle:
    def test_duplicate_job_rejected(self):
        machine = make_machine()
        machine.add_job("j", 100)
        with pytest.raises(Exception):
            machine.add_job("j", 100)

    def test_remove_unknown_job(self):
        with pytest.raises(SimulationError):
            make_machine().remove_job("ghost")

    def test_remove_job_drops_far_pages(self):
        machine = make_machine()
        memcg = machine.add_job("j", 200, COMPRESSIBLE)
        machine.allocate("j", 200)
        for t in range(0, 481, 60):
            machine.tick(t)
        memcg.cold_age_threshold = 120.0
        machine.run_reclaim()
        assert machine.arena.live_objects > 0
        machine.remove_job("j")
        assert machine.arena.live_objects == 0
        assert machine.used_bytes == machine.arena.footprint_bytes

    def test_touch_promotes_far_pages(self):
        machine = make_machine()
        memcg = machine.add_job("j", 100, COMPRESSIBLE)
        idx = machine.allocate("j", 100)
        for t in range(0, 481, 60):
            machine.tick(t)
        memcg.cold_age_threshold = 120.0
        machine.run_reclaim()
        promoted = machine.touch("j", idx[:10])
        assert promoted == 10
        assert memcg.far_pages == 90


class TestOutOfMemory:
    def test_proactive_mode_fails_fast(self):
        machine = make_machine(dram=16 * MIB)
        machine.add_job("j", 10000)
        with pytest.raises(OutOfMemoryError):
            machine.allocate("j", 8000)  # > 16 MiB of pages

    def test_reactive_mode_reclaims_instead(self):
        machine = make_machine(mode=FarMemoryMode.REACTIVE, dram=32 * MIB)
        machine.add_job("cold-job", 8000, COMPRESSIBLE)
        machine.allocate("cold-job", 6000)
        for t in range(0, 481, 60):
            machine.tick(t)
        # 6000 of 8192 pages used; a 3000-page allocation forces reclaim.
        machine.add_job("new-job", 3000, COMPRESSIBLE)
        idx = machine.allocate("new-job", 3000)
        assert idx.size == 3000
        assert machine.direct_reclaim.invocations >= 1
        assert machine.direct_reclaim.stall_seconds_total > 0

    def test_reactive_mode_oom_when_nothing_reclaimable(self):
        machine = make_machine(mode=FarMemoryMode.REACTIVE, dram=16 * MIB)
        profile = ContentProfile(incompressible_fraction=1.0)
        machine.add_job("j", 5000, profile)
        machine.allocate("j", 3500)
        machine.add_job("k", 2000, profile)
        with pytest.raises(OutOfMemoryError):
            machine.allocate("k", 2000)


class TestModes:
    def test_off_mode_never_reclaims(self):
        machine = make_machine(mode=FarMemoryMode.OFF)
        memcg = machine.add_job("j", 100, COMPRESSIBLE)
        machine.allocate("j", 100)
        for t in range(0, 481, 60):
            machine.tick(t)
        memcg.cold_age_threshold = 120.0
        assert machine.run_reclaim() == 0
        assert machine.far_pages == 0

    def test_proactive_new_jobs_start_enabled(self):
        machine = make_machine(mode=FarMemoryMode.PROACTIVE)
        memcg = machine.add_job("j", 10)
        assert memcg.zswap_enabled

    def test_reactive_new_jobs_start_disabled(self):
        machine = make_machine(mode=FarMemoryMode.REACTIVE)
        memcg = machine.add_job("j", 10)
        assert not memcg.zswap_enabled


class TestTick:
    def test_time_cannot_go_backwards(self):
        machine = make_machine()
        machine.tick(120)
        with pytest.raises(Exception):
            machine.tick(60)

    def test_scan_runs_on_schedule(self):
        machine = make_machine()
        machine.add_job("j", 10)
        machine.allocate("j", 10)
        for t in range(0, 601, 60):
            machine.tick(t)
        assert machine.kstaled.scans_completed == 6
