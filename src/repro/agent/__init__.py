"""The node agent (Borglet) — per-machine far-memory control and telemetry."""

from repro.agent.monitoring import Alert, AlertRule, SliWindow, SloMonitor
from repro.agent.node_agent import NodeAgent, SliSample
from repro.agent.telemetry import TelemetryExporter, TraceSink

__all__ = [
    "Alert",
    "AlertRule",
    "NodeAgent",
    "SliSample",
    "SliWindow",
    "SloMonitor",
    "TelemetryExporter",
    "TraceSink",
]
