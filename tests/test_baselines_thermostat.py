"""Thermostat-style sampling cold detector."""

import numpy as np
import pytest

from repro.baselines import ThermostatConfig, ThermostatDetector


def run_epochs(detector, hot_pages, rng, epochs=20, ticks_per_epoch=2):
    """Drive the detector: `hot_pages` are touched every tick."""
    for _ in range(epochs):
        detector.begin_epoch(rng)
        for _ in range(ticks_per_epoch):
            detector.record_accesses(hot_pages)
        detector.end_epoch()


class TestBasics:
    def test_region_mapping(self):
        detector = ThermostatDetector(
            2048, ThermostatConfig(region_pages=512)
        )
        assert detector.n_regions == 4
        np.testing.assert_array_equal(
            detector.region_of(np.array([0, 511, 512, 2047])), [0, 0, 1, 3]
        )

    def test_sample_size(self, rng):
        detector = ThermostatDetector(
            51200, ThermostatConfig(region_pages=512, sample_fraction=0.1)
        )
        sample = detector.begin_epoch(rng)
        assert sample.size == 10
        assert np.unique(sample).size == 10

    def test_validation(self):
        with pytest.raises(Exception):
            ThermostatDetector(0)


class TestFaultAccounting:
    def test_first_touch_faults_once(self, rng):
        config = ThermostatConfig(region_pages=512, sample_fraction=1.0)
        detector = ThermostatDetector(1024, config)
        detector.begin_epoch(rng)
        page = np.array([7])
        assert detector.record_accesses(page) == 1
        # Poison was cleared by the first fault.
        assert detector.record_accesses(page) == 0
        assert detector.total_sampled_faults == 1

    def test_unsampled_regions_never_fault(self, rng):
        config = ThermostatConfig(region_pages=512, sample_fraction=0.5)
        detector = ThermostatDetector(1024, config)  # 2 regions, sample 1
        sample = detector.begin_epoch(rng)
        unsampled = 1 - int(sample[0])
        pages = np.arange(unsampled * 512, unsampled * 512 + 10)
        assert detector.record_accesses(pages) == 0


class TestClassification:
    def test_separates_hot_from_cold_regions(self, rng):
        # 8 regions; regions 0-3 hot, 4-7 never touched.
        config = ThermostatConfig(region_pages=512, sample_fraction=0.5)
        detector = ThermostatDetector(8 * 512, config)
        hot_pages = np.arange(0, 4 * 512)
        run_epochs(detector, hot_pages, rng, epochs=30)

        cold = set(detector.cold_regions(max_faults_per_epoch=0.0))
        assert cold, "sampling never classified anything cold"
        assert cold <= {4, 5, 6, 7}
        hot_estimates = detector.estimated_rate[:4]
        known_hot = hot_estimates[~np.isnan(hot_estimates)]
        assert (known_hot > 0).all()

    def test_cold_page_mask_matches_regions(self, rng):
        config = ThermostatConfig(region_pages=512, sample_fraction=1.0)
        detector = ThermostatDetector(4 * 512, config)
        run_epochs(detector, np.arange(512), rng, epochs=3)
        mask = detector.cold_page_mask()
        assert not mask[:512].any()
        assert mask[512:].all()

    def test_coverage_grows_with_epochs(self, rng):
        config = ThermostatConfig(region_pages=512, sample_fraction=0.1)
        detector = ThermostatDetector(100 * 512, config)
        run_epochs(detector, np.zeros(0, dtype=int), rng, epochs=5)
        early = detector.coverage_fraction
        run_epochs(detector, np.zeros(0, dtype=int), rng, epochs=30)
        assert detector.coverage_fraction >= early
        assert detector.coverage_fraction < 1.0 or detector.epochs >= 10

    def test_unsampled_regions_not_classified(self, rng):
        config = ThermostatConfig(region_pages=512, sample_fraction=0.01)
        detector = ThermostatDetector(100 * 512, config)
        detector.begin_epoch(rng)
        detector.end_epoch()
        # Only the single sampled region can be classified.
        assert detector.cold_regions().size <= 1
