"""Plain-text rendering of tables and figure data.

The benchmark harness regenerates every paper figure as text: tables of
series points, ASCII CDFs, and violin summaries.  Keeping the rendering
here lets benches and examples print identical reports.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.distributions import ViolinStats
from repro.obs import Tracer, flame_table, subsystem_table

__all__ = [
    "render_table",
    "render_cdf",
    "render_violins",
    "render_series",
    "render_fleet_health",
    "render_flame_table",
]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells))
        if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_cdf(
    values: Sequence[float],
    title: str,
    unit: str = "",
    quantiles: Sequence[float] = (10, 25, 50, 75, 90, 98),
) -> str:
    """Render a CDF as a quantile table (the paper's CDF figures in text)."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return f"{title}: (no samples)"
    rows = [
        (f"p{q:g}", f"{np.percentile(data, q):.4g}{unit}") for q in quantiles
    ]
    return render_table(["quantile", "value"], rows, title=f"{title} (n={data.size})")


def render_violins(
    groups: Dict[str, ViolinStats], title: str, scale: float = 100.0,
    unit: str = "%"
) -> str:
    """Render per-group violin summaries (Figs. 2 and 6 in text form)."""
    rows = []
    for name, stats in groups.items():
        rows.append(
            (
                name,
                stats.n,
                f"{stats.median * scale:.1f}{unit}",
                f"{stats.q1 * scale:.1f}{unit}",
                f"{stats.q3 * scale:.1f}{unit}",
                f"{stats.whisker_low * scale:.1f}{unit}",
                f"{stats.whisker_high * scale:.1f}{unit}",
            )
        )
    return render_table(
        ["group", "n", "median", "q1", "q3", "whisk_lo", "whisk_hi"],
        rows,
        title=title,
    )


def render_series(
    x: Sequence[float],
    y: Sequence[float],
    x_label: str,
    y_label: str,
    title: str,
) -> str:
    """Render an (x, y) series as a two-column table."""
    rows = list(zip(x, y))
    return render_table([x_label, y_label], rows, title=title)


def render_fleet_health(report: Dict[str, float]) -> str:
    """Render a :meth:`WSC.fleet_health_report` dict as the health table.

    The row set follows the paper's monitoring story: coverage and cold
    fraction (§6.1), the promotion-rate SLI percentiles against the SLO
    (Fig. 7), and the zswap quality numbers (§3.2, §6.3).
    """
    rows = [
        ("coverage", f"{report['coverage']:.1%}"),
        ("cold fraction @120s",
         f"{report['cold_fraction_at_min_threshold']:.1%}"),
        ("far memory", f"{report['far_memory_gib']:.2f} GiB"),
        ("DRAM saved", f"{report['saved_gib']:.2f} GiB"),
        ("compression ratio", f"{report['compression_ratio']:.2f}x"),
        ("incompressible fraction",
         f"{report['incompressible_fraction']:.1%}"),
        ("promotion rate p50",
         f"{report['promotion_rate_p50_pct_per_min']:.4f} %/min"),
        ("promotion rate p90",
         f"{report['promotion_rate_p90_pct_per_min']:.4f} %/min"),
        ("promotion rate p98",
         f"{report['promotion_rate_p98_pct_per_min']:.4f} %/min"),
    ]
    return render_table(["SLI", "value"], rows, title="Fleet health")


def render_flame_table(tracer: Tracer, top: int = 12) -> str:
    """Render the tracer's profile: per-subsystem, then the hottest spans.

    Args:
        tracer: the tracer the run was instrumented with.
        top: how many individual spans to list under the subsystems.
    """
    subsystems = subsystem_table(tracer)
    if not subsystems:
        return "Profile: (no spans recorded)"
    sub_rows = [
        (
            s.name,
            s.calls,
            f"{s.wall_seconds * 1e3:.1f}ms",
            f"{s.self_seconds * 1e3:.1f}ms",
        )
        for s in subsystems
    ]
    parts = [
        render_table(
            ["subsystem", "calls", "wall", "self"],
            sub_rows,
            title="Profile by subsystem (wall clock)",
        )
    ]
    span_rows = [
        (
            s.name,
            s.calls,
            f"{s.self_seconds * 1e3:.1f}ms",
            f"{s.mean_seconds * 1e6:.0f}us",
            f"{s.max_seconds * 1e6:.0f}us",
        )
        for s in flame_table(tracer)[:top]
    ]
    parts.append(
        render_table(
            ["span", "calls", "self", "mean", "max"],
            span_rows,
            title=f"Hottest spans (top {len(span_rows)})",
        )
    )
    return "\n\n".join(parts)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
