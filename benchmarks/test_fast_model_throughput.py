"""Section 5.3's scalability claim: the fast far memory model is fast.

Paper: the MapReduce-style model replays one week of the entire WSC's
far-memory behaviour in under an hour because per-job replay is
embarrassingly parallel.  We benchmark single-worker replay throughput
(trace-entries per second) and verify it extrapolates to well under an
hour per fleet-week per core, and that the MapReduce engine parallelizes
replay without changing the answer.
"""

from __future__ import annotations

import functools

import pytest

from repro.analysis import render_table
from repro.common.units import DAY
from repro.core import ThresholdPolicyConfig
from repro.engine.parallel import default_worker_count
from repro.model import TRACE_PERIOD_SECONDS, FarMemoryModel
from repro.model.bench import run_model_bench

CONFIG = ThresholdPolicyConfig(percentile_k=95.0, warmup_seconds=600)


def test_fast_model_throughput(benchmark, paper_fleet, save_result):
    traces = paper_fleet.trace_db.traces()
    model = FarMemoryModel(traces)
    entries = sum(len(t) for t in traces)
    assert entries > 100

    report = benchmark(model.evaluate, CONFIG)
    assert report.job_results

    import time

    start = time.perf_counter()
    model.evaluate(CONFIG)
    seconds_per_eval = time.perf_counter() - start
    entries_per_second = entries / seconds_per_eval

    # Extrapolate: a 10k-job fleet traced for one week at 5-minute
    # aggregation = 10_000 * 7 * 288 entries.  The paper does a fleet-week
    # in < 1 hour on a distributed pipeline; we check a single core stays
    # within a small multiple of that (parallelism then divides it).
    fleet_week_entries = 10_000 * 7 * (DAY // TRACE_PERIOD_SECONDS)
    single_core_hours = fleet_week_entries / entries_per_second / 3600

    assert entries_per_second > 2_000
    assert single_core_hours < 24

    save_result(
        "fast_model_throughput",
        render_table(
            ["metric", "value"],
            [
                ("trace entries replayed", entries),
                ("replay throughput", f"{entries_per_second:,.0f} entries/s"),
                ("10k-job fleet-week, 1 core",
                 f"{single_core_hours:.2f} h"),
                ("10k-job fleet-week, 64 workers",
                 f"{single_core_hours / 64 * 60:.1f} min"),
            ],
            title="§5.3 — fast far memory model throughput "
            "(paper: fleet-week in < 1 h, distributed)",
        ),
    )


def test_fast_model_parallel_consistency(benchmark, paper_fleet,
                                         save_result):
    """The MapReduce engine with a process pool returns identical fleet
    numbers — the correctness half of the parallelism claim."""
    traces = paper_fleet.trace_db.traces()
    serial = FarMemoryModel(traces, workers=1).evaluate(CONFIG)

    parallel_model = FarMemoryModel(traces, workers=2)
    parallel = benchmark(parallel_model.evaluate, CONFIG)

    assert parallel.total_cold_pages == serial.total_cold_pages
    assert parallel.promotion_rate_p98 == serial.promotion_rate_p98

    save_result(
        "fast_model_parallel",
        render_table(
            ["workers", "total cold pages", "p98 %/min"],
            [
                (1, f"{serial.total_cold_pages:,.0f}",
                 f"{serial.promotion_rate_p98:.4f}"),
                (2, f"{parallel.total_cold_pages:,.0f}",
                 f"{parallel.promotion_rate_p98:.4f}"),
            ],
            title="§5.3 — parallel replay consistency",
        ),
    )


@pytest.mark.slow
def test_batched_vectorized_speedup(save_result):
    """The batched vectorized ``evaluate_many`` path must beat the seed
    per-config scalar replay by >= 3x at the default bench fleet size.

    On single-core hosts (shared CI runners) timings are too noisy to
    gate on, so — mirroring the engine throughput policy — only the
    bit-identical equivalence is asserted there.
    """
    report = run_model_bench()
    assert report["equivalent"], (
        "vectorized replay diverged from the scalar oracle"
    )
    if default_worker_count() >= 2:
        assert report["speedup_vectorized"] >= 3.0, report

    save_result(
        "fast_model_batched_speedup",
        render_table(
            ["mode", "wall s", "configs/s"],
            [
                ("scalar per-config",
                 f"{report['scalar']['wall_seconds']:.2f}",
                 f"{report['scalar']['configs_per_second']:.2f}"),
                ("batched vectorized",
                 f"{report['vectorized']['wall_seconds']:.2f}",
                 f"{report['vectorized']['configs_per_second']:.2f}"),
            ],
            title="§5.3 — batched vectorized model speedup "
            f"({report['speedup_vectorized']:.1f}x, "
            f"equivalent={report['equivalent']})",
        ),
    )
