"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.clusters == 2
        assert args.func.__name__ == "cmd_quickstart"

    def test_fleet_arguments_parsed(self):
        args = build_parser().parse_args(
            ["quickstart", "--clusters", "5", "--hours", "2.5", "--seed", "9"]
        )
        assert args.clusters == 5
        assert args.hours == 2.5
        assert args.seed == 9

    def test_autotune_iterations(self):
        args = build_parser().parse_args(["autotune", "--iterations", "3"])
        assert args.iterations == 3

    def test_figures_output(self):
        args = build_parser().parse_args(["figures", "--output", "/tmp/x"])
        assert args.output == "/tmp/x"

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.minutes == 60.0
        assert args.format == "table"
        assert args.output is None
        assert args.func.__name__ == "cmd_metrics"

    def test_metrics_rejects_unknown_format(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "--format", "xml"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.clusters == 4
        assert args.workers is None
        assert args.barrier_seconds == 60
        assert args.output == "BENCH_fleet.json"
        assert not args.quick
        assert args.func.__name__ == "cmd_bench"

    def test_bench_quick_flag_and_workers(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--workers", "2", "--output", "/tmp/b.json"]
        )
        assert args.quick
        assert args.workers == 2
        assert args.output == "/tmp/b.json"

    def test_bench_model_defaults(self):
        args = build_parser().parse_args(["bench", "--model"])
        assert args.model
        assert args.jobs is None
        assert args.intervals == 288
        assert args.configs == 8
        assert not build_parser().parse_args(["bench"]).model

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.scenario == "mixed"
        assert args.chaos_seed == 0
        assert args.workers is None
        assert args.func.__name__ == "cmd_chaos"

    def test_chaos_named_scenario_and_seed(self):
        args = build_parser().parse_args(
            ["chaos", "--scenario", "storm", "--chaos-seed", "7",
             "--workers", "2"]
        )
        assert args.scenario == "storm"
        assert args.chaos_seed == 7
        assert args.workers == 2

    def test_chaos_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--scenario", "solar_flare"])

    def test_ci_defaults(self):
        args = build_parser().parse_args(["ci"])
        assert not args.skip_tests
        assert not args.skip_bench
        assert args.pytest_args == []
        assert args.func.__name__ == "cmd_ci"

    def test_ci_forwards_pytest_args(self):
        args = build_parser().parse_args(
            ["ci", "--skip-tests", "tests/test_cli.py", "-k", "parser"]
        )
        assert args.skip_tests
        assert args.pytest_args == ["tests/test_cli.py", "-k", "parser"]


class TestExecution:
    def test_quickstart_runs(self, capsys):
        code = main(
            ["quickstart", "--clusters", "1", "--machines", "1",
             "--jobs", "2", "--hours", "0.5", "--dram-gib", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "DRAM TCO saving" in out

    def test_traces_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = main(
            ["traces", "--clusters", "1", "--machines", "1", "--jobs", "2",
             "--hours", "0.5", "--dram-gib", "2", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        from repro.cluster.trace_db import TraceDatabase

        assert len(TraceDatabase.load_jsonl(out)) > 0

    def test_bench_writes_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "bench.json"
        code = main(
            ["bench", "--quick", "--workers", "2", "--output", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["equivalent"]
        assert report["tick_path"]["equivalent"]
        assert report["tick_path"]["columnar"]["ticks_per_second"] > 0
        assert report["equivalence"]["equivalent"]
        assert report["serial"]["ticks_per_second"] > 0
        assert report["parallel"]["ticks_per_second"] > 0
        assert report["host"]["physical_cores"] >= 1
        # --quick skips the thousand-machine-hour section.
        assert report["thousand_machine_hour"] is None
        # On a 1-core host the parallel run cannot beat serial, so the
        # report must say "no measurable speedup" rather than invent one.
        if report["parallel"]["workers"] <= 1:
            assert report["speedup"] is None
            assert report["note"]
        assert "speedup" in capsys.readouterr().out.lower()

    def test_bench_model_writes_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "model.json"
        code = main(["bench", "--model", "--quick", "--output", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["equivalent"] is True
        assert report["vectorized"]["configs_per_second"] > 0
        assert "speedup" in capsys.readouterr().out.lower()

    def test_figures_writes_directory(self, tmp_path, capsys):
        code = main(
            ["figures", "--clusters", "1", "--machines", "2", "--jobs", "2",
             "--hours", "1", "--dram-gib", "2", "--output", str(tmp_path)]
        )
        assert code == 0
        written = {p.name for p in tmp_path.iterdir()}
        assert "fig1.txt" in written
        assert "fig3.txt" in written


METRICS_ARGS = ["metrics", "--clusters", "1", "--machines", "2",
                "--jobs", "2", "--minutes", "10", "--dram-gib", "2"]


class TestMetricsCommand:
    def test_table_report(self, capsys):
        code = main(METRICS_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "Fleet health" in out
        assert "compression ratio" in out
        assert "incompressible fraction" in out
        assert "promotion rate p98" in out
        assert "Profile by subsystem" in out
        assert "kstaled" in out

    def test_prom_exposition_parses(self, capsys):
        code = main(METRICS_ARGS + ["--format", "prom"])
        assert code == 0
        out = capsys.readouterr().out
        names = set()
        for line in out.splitlines():
            if not line or line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            names.add(name)
            # Every sample line ends in a parseable float.
            float(line.rsplit(" ", 1)[1])
        for expected in (
            "repro_pages_scanned_total",
            "repro_pages_compressed_total",
            "repro_pages_promoted_total",
            "repro_fleet_incompressible_fraction",
            "repro_fleet_compression_ratio",
            "repro_fleet_promotion_rate_p98_pct_per_min",
            "repro_threshold_seconds_bucket",
            "repro_promotion_rate_pct_per_min_bucket",
            "repro_span_self_seconds",
        ):
            assert expected in names, expected

    def test_json_exposition_parses(self, capsys):
        import json

        code = main(METRICS_ARGS + ["--format", "json"])
        assert code == 0
        out = capsys.readouterr().out
        records = [json.loads(line) for line in out.splitlines() if line]
        names = {r["name"] for r in records}
        assert "repro_pages_scanned_total" in names
        assert "repro_fleet_coverage" in names
        histograms = [r for r in records if r["kind"] == "histogram"]
        assert histograms
        assert all(r["buckets"][-1]["le"] == "+Inf" for r in histograms)

    def test_output_file(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        code = main(METRICS_ARGS + ["--format", "prom",
                                    "--output", str(out)])
        assert code == 0
        assert "# TYPE" in out.read_text()

    def test_metrics_entry_console_script(self, capsys):
        from repro.cli import metrics_entry

        code = metrics_entry(
            ["--clusters", "1", "--machines", "1", "--jobs", "2",
             "--minutes", "5", "--dram-gib", "2"]
        )
        assert code == 0
        assert "Fleet health" in capsys.readouterr().out


class TestChaosCommand:
    def test_reports_slo_impact_table(self, capsys):
        code = main(
            ["chaos", "--clusters", "1", "--machines", "2", "--jobs", "2",
             "--hours", "1", "--dram-gib", "2", "--scenario", "storm"]
        )
        # Exit code reflects the absolute SLO check; a 1-hour toy fleet
        # may violate it fault-free, so only the report is asserted.
        assert code in (0, 1)
        out = capsys.readouterr().out
        assert "SLO impact" in out
        assert "fault-free" in out
        assert "chaos (storm)" in out
        assert "promotion-rate SLO" in out


class TestCiCommand:
    def test_skip_tests_runs_only_lint(self, capsys):
        code = main(["ci", "--skip-tests"])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro lint --ci" in out
        assert "ci: clean" in out
        assert "tier-1 tests" not in out


class TestTraceParser:
    def test_bench_trace_flag(self):
        args = build_parser().parse_args(["bench", "--trace"])
        assert args.trace
        assert not build_parser().parse_args(["bench"]).trace

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_trace_subcommands_parsed(self):
        args = build_parser().parse_args(["trace", "stats", "store"])
        assert args.trace_command == "stats"
        assert args.store == "store"
        assert args.func.__name__ == "cmd_trace"
        args = build_parser().parse_args(
            ["trace", "import", "in.jsonl", "store", "--buffer-rows", "64"]
        )
        assert (args.input, args.store, args.buffer_rows) == (
            "in.jsonl", "store", 64
        )
        args = build_parser().parse_args(
            ["trace", "compact", "store", "--factor", "3", "--before", "900"]
        )
        assert (args.factor, args.before) == (3, 900)

    def test_compact_requires_factor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "compact", "store"])


class TestTraceCommand:
    def _seed_jsonl(self, tmp_path):
        from tests.test_tracestore import make_entry
        from repro.cluster.trace_db import TraceDatabase

        db = TraceDatabase()
        for t in (0, 300, 600, 900):
            db.add(make_entry("a", t, seed=t))
        db.add(make_entry("b", 0, seed=99))
        path = tmp_path / "in.jsonl"
        db.save_jsonl(path)
        return path

    def test_import_stats_window_export_roundtrip(self, tmp_path, capsys):
        import json

        source = self._seed_jsonl(tmp_path)
        store = tmp_path / "store"
        assert main(
            ["trace", "import", str(source), str(store),
             "--buffer-rows", "2"]
        ) == 0
        assert "Imported 5 trace entries" in capsys.readouterr().out

        assert main(["trace", "stats", str(store)]) == 0
        out = capsys.readouterr().out
        assert "rows" in out and "5" in out

        assert main(["trace", "window", str(store)]) == 0
        assert "Per-window aggregates" in capsys.readouterr().out

        back = tmp_path / "back.jsonl"
        assert main(
            ["trace", "export", str(store), "--output", str(back)]
        ) == 0
        capsys.readouterr()

        def rows(path):
            key = lambda d: (d["job_id"], d["time"])
            return sorted(
                (json.loads(line) for line in path.open() if line.strip()),
                key=key,
            )

        assert rows(back) == rows(source)

    def test_compact_reduces_rows(self, tmp_path, capsys):
        source = self._seed_jsonl(tmp_path)
        store = tmp_path / "store"
        main(["trace", "import", str(source), str(store)])
        capsys.readouterr()
        assert main(
            ["trace", "compact", str(store), "--factor", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "merged away 2 rows" in out

    def test_stats_on_missing_store_fails(self, tmp_path, capsys):
        code = main(["trace", "stats", str(tmp_path / "ghost")])
        assert code == 2
        assert "not a trace store" in capsys.readouterr().err

    def test_stats_on_corrupt_manifest_fails(self, tmp_path, capsys):
        root = tmp_path / "store"
        root.mkdir()
        (root / "manifest.json").write_text("{broken", encoding="utf-8")
        code = main(["trace", "stats", str(root)])
        assert code == 2
        assert "unreadable manifest" in capsys.readouterr().err

    def test_import_bad_jsonl_fails_with_location(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"not": "a trace entry"}\n', encoding="utf-8")
        code = main(
            ["trace", "import", str(bad), str(tmp_path / "store")]
        )
        assert code == 2
        assert "bad.jsonl:1" in capsys.readouterr().err

    def test_bench_trace_writes_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        code = main(["bench", "--trace", "--quick", "--output", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["equivalent"] is True
        assert report["ingest"]["rows"] > 0
        assert report["columnar_path"]["peak_bytes"] > 0
        assert "peak-mem ratio" in capsys.readouterr().out


class TestCanaryCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["canary"])
        assert args.policy == "paper"
        assert args.soak_minutes == 10.0
        assert args.slo_limit == 0.2
        assert args.min_coverage == 10
        assert args.scenario is None
        assert not args.smoke
        assert args.func.__name__ == "cmd_canary"

    def test_parser_policy_scenario_workers(self):
        args = build_parser().parse_args(
            ["canary", "--policy", "fixed", "--threshold", "120",
             "--warmup-seconds", "0", "--scenario", "storm",
             "--workers", "2", "--soak-minutes", "5"]
        )
        assert args.policy == "fixed"
        assert args.threshold == 120.0
        assert args.warmup_seconds == 0
        assert args.scenario == "storm"
        assert args.workers == 2

    def test_parser_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["canary", "--policy", "lru"])

    def test_smoke_prints_report_and_succeeds(self, capsys):
        assert main(["canary", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "Canary smoke" in out
        assert "rolled_back" in out

    def test_ci_skip_bench_skips_the_canary_smoke(self, capsys):
        code = main(["ci", "--skip-tests", "--skip-bench"])
        assert code == 0
        out = capsys.readouterr().out
        assert "canary controller smoke" not in out
