"""Fault plans and the injector: schedules, episodes, degraded modes."""

import pytest

from repro.cluster import quickfleet
from repro.common.errors import ReproError
from repro.common.rng import SeedSequenceFactory
from repro.common.units import ZSMALLOC_MAX_PAYLOAD
from repro.faults import (
    ALL_MACHINES,
    BrokenSink,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    KNOWN_FAULT_KINDS,
    SCENARIO_NAMES,
    build_scenario,
)
from repro.obs import MetricRegistry, Tracer


def make_fleet(seed=3):
    return quickfleet(
        clusters=1,
        machines_per_cluster=2,
        jobs_per_machine=2,
        seed=seed,
        registry=MetricRegistry(),
        tracer=Tracer(),
    )


def attach(cluster, *events, seed=5):
    injector = FaultInjector(
        FaultPlan(events=tuple(events)), SeedSequenceFactory(seed)
    )
    cluster.attach_fault_injector(injector)
    return injector


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=0, kind="solar_flare")

    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=-1, kind=FaultKind.SINK_OUTAGE)

    def test_magnitude_must_be_fraction(self):
        with pytest.raises(ReproError):
            FaultEvent(time=0, kind=FaultKind.MEMORY_PRESSURE, magnitude=1.5)

    def test_end_time_for_episodic_and_instant(self):
        outage = FaultEvent(
            time=100, kind=FaultKind.SINK_OUTAGE, duration=50
        )
        assert outage.end_time == 150
        spike = FaultEvent(time=100, kind=FaultKind.MEMORY_PRESSURE)
        assert spike.end_time == float("inf")
        # A crash with duration=0 never repairs.
        crash = FaultEvent(time=100, kind=FaultKind.MACHINE_CRASH)
        assert crash.end_time == float("inf")


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(events=(
            FaultEvent(time=900, kind=FaultKind.SINK_OUTAGE, duration=60),
            FaultEvent(time=100, kind=FaultKind.MEMORY_PRESSURE),
        ))
        assert [e.time for e in plan.events] == [100, 900]
        assert len(plan) == 2

    def test_horizon_covers_episode_ends(self):
        plan = FaultPlan(events=(
            FaultEvent(time=100, kind=FaultKind.SINK_OUTAGE, duration=500),
            FaultEvent(time=400, kind=FaultKind.MEMORY_PRESSURE),
        ))
        assert plan.horizon() == 600


class TestScenarios:
    def test_known_names(self):
        assert "mixed" in SCENARIO_NAMES
        assert "crash" in SCENARIO_NAMES

    def test_unknown_name_raises(self):
        with pytest.raises(FaultPlanError):
            build_scenario("nope", SeedSequenceFactory(1), 3600, 4)

    def test_deterministic_per_seed(self):
        a = build_scenario("mixed", SeedSequenceFactory(9), 7200, 4)
        b = build_scenario("mixed", SeedSequenceFactory(9), 7200, 4)
        assert a == b

    def test_every_scenario_builds_valid_events(self):
        for name in SCENARIO_NAMES:
            plan = build_scenario(name, SeedSequenceFactory(2), 7200, 4)
            assert len(plan) > 0
            assert plan.name == name
            for event in plan.events:
                assert event.kind in KNOWN_FAULT_KINDS


class TestInjectorEpisodes:
    def test_sink_outage_wraps_and_unwraps_sinks(self):
        fleet = make_fleet()
        cluster = fleet.clusters[0]
        injector = attach(cluster, FaultEvent(
            time=300, kind=FaultKind.SINK_OUTAGE, duration=600,
            target=ALL_MACHINES,
        ))
        fleet.run(600)  # inside the episode (now=600)
        assert all(
            isinstance(e.sink, BrokenSink)
            for e in cluster.exporters.values()
        )
        assert injector.faults_injected == 1
        fleet.run(600)  # past the episode end (900)
        assert not any(
            isinstance(e.sink, BrokenSink)
            for e in cluster.exporters.values()
        )
        assert injector.faults_cleared == 1
        assert injector.done()
        assert len(cluster.events.of_kind("faults.injected")) == 1
        assert len(cluster.events.of_kind("faults.cleared")) == 1

    def test_crash_fails_then_repairs_machine(self):
        fleet = make_fleet()
        cluster = fleet.clusters[0]
        attach(cluster, FaultEvent(
            time=300, kind=FaultKind.MACHINE_CRASH, duration=600, target=0,
        ))
        fleet.run(1200)
        assert len(cluster.events.of_kind("cluster.machine_failure")) == 1
        assert len(cluster.events.of_kind("cluster.machine_repaired")) == 1
        assert fleet.registry.value("repro_faults_injected_total") == 1

    def test_storm_scales_cutoff_and_restores_it(self):
        fleet = make_fleet()
        cluster = fleet.clusters[0]
        attach(cluster, FaultEvent(
            time=300, kind=FaultKind.INCOMPRESSIBLE_STORM, duration=600,
            target=ALL_MACHINES, magnitude=0.5,
        ))
        fleet.run(600)
        degraded = int(ZSMALLOC_MAX_PAYLOAD * 0.5)
        assert all(
            m.zswap.max_payload_bytes == degraded for m in cluster.machines
        )
        fleet.run(600)
        assert all(
            m.zswap.max_payload_bytes == ZSMALLOC_MAX_PAYLOAD
            for m in cluster.machines
        )

    def test_storm_survives_runtime_rewiring(self):
        """Level-triggered enforcement: rebinding the cluster's runtime
        mid-episode (what the parallel engine does) must not lift the
        fault — the next tick re-asserts it."""
        fleet = make_fleet()
        cluster = fleet.clusters[0]
        attach(cluster, FaultEvent(
            time=300, kind=FaultKind.SINK_OUTAGE, duration=900,
            target=ALL_MACHINES,
        ))
        fleet.run(600)
        cluster.rebind_runtime(fleet.registry, fleet.tracer, fleet.trace_db)
        assert not any(  # rebind reset the sinks...
            isinstance(e.sink, BrokenSink)
            for e in cluster.exporters.values()
        )
        fleet.run(60)  # ...and one tick puts the outage back
        assert all(
            isinstance(e.sink, BrokenSink)
            for e in cluster.exporters.values()
        )


class TestInstantFaults:
    def test_pressure_spike_fires_once(self):
        fleet = make_fleet()
        cluster = fleet.clusters[0]
        injector = attach(cluster, FaultEvent(
            time=300, kind=FaultKind.MEMORY_PRESSURE, target=0,
            magnitude=0.5,
        ))
        fleet.run(600)
        assert injector.faults_injected == 1
        assert injector.active_faults == ()
        assert injector.done()

    def test_histogram_corrupt_triggers_agent_rewarm(self):
        fleet = make_fleet()
        cluster = fleet.clusters[0]
        attach(cluster, FaultEvent(
            time=600, kind=FaultKind.HISTOGRAM_CORRUPT,
            target=ALL_MACHINES, magnitude=1.0,
        ))
        fleet.run(1200)
        rewarms = sum(a.rewarms for a in cluster.agents.values())
        assert rewarms > 0
        assert fleet.registry.value(
            "repro_agent_histogram_rewarms_total") == rewarms
        assert len(cluster.events.of_kind("agent.histogram_rewarm")) == rewarms

    def test_target_taken_modulo_machine_count(self):
        fleet = make_fleet()
        cluster = fleet.clusters[0]
        injector = attach(cluster, FaultEvent(
            time=60, kind=FaultKind.MACHINE_CRASH, duration=0,
            target=len(cluster.machines) + 1,
        ))
        fleet.run(120)
        failures = cluster.events.of_kind("cluster.machine_failure")
        assert len(failures) == 1
        expected = cluster.machines[1].machine_id  # (n+1) % n == 1
        assert failures[0].payload["machine"] == expected
        assert not injector.done()  # a one-way crash never clears
