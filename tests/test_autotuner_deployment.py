"""Staged deployment with rollback."""

import pytest

from repro.common.errors import ConfigurationError
from repro.cluster import quickfleet
from repro.core.threshold_policy import (
    FixedThresholdPolicy,
    PaperPolicy,
    ThresholdPolicyConfig,
)
from repro.autotuner.deployment import (
    DeploymentStage,
    StagedDeployment,
)


def make_fleet(**overrides):
    kwargs = dict(
        clusters=3,
        machines_per_cluster=1,
        jobs_per_machine=2,
        seed=77,
        warmup_hours=0.5,
    )
    kwargs.update(overrides)
    return quickfleet(**kwargs)


SAFE = ThresholdPolicyConfig(percentile_k=99.0, warmup_seconds=1800)
PREVIOUS = ThresholdPolicyConfig(percentile_k=98.0, warmup_seconds=600)


class TestStageValidation:
    def test_fraction_must_not_decrease(self):
        fleet = make_fleet()
        stages = [
            DeploymentStage("a", 0.5, 600),
            DeploymentStage("b", 0.2, 600),
        ]
        with pytest.raises(ConfigurationError):
            StagedDeployment(fleet, stages)

    def test_stage_validation(self):
        with pytest.raises(ConfigurationError):
            DeploymentStage("x", 1.5, 600)
        with pytest.raises(ConfigurationError):
            DeploymentStage("x", 0.5, 0)


class TestRollout:
    def test_safe_config_reaches_production(self):
        fleet = make_fleet()
        stages = [
            DeploymentStage("qual", 0.34, 600),
            DeploymentStage("prod", 1.0, 600),
        ]
        deployment = StagedDeployment(fleet, stages, slo_limit=1e9)
        assert deployment.deploy(SAFE)
        assert len(deployment.outcomes) == 2
        assert all(o.passed for o in deployment.outcomes)
        assert all(o.reason == "advanced" for o in deployment.outcomes)
        for cluster in fleet.clusters:
            assert cluster.policy_config == SAFE

    def test_bad_config_rolls_back(self):
        fleet = make_fleet()
        fleet.deploy_policy(PREVIOUS)
        stages = [
            DeploymentStage("qual", 0.34, 600),
            DeploymentStage("prod", 1.0, 600),
        ]
        # An impossible SLO limit guarantees stage failure.
        deployment = StagedDeployment(fleet, stages, slo_limit=1e-12)
        aggressive = ThresholdPolicyConfig(percentile_k=50.0, warmup_seconds=60)
        assert not deployment.deploy(aggressive)
        assert not deployment.outcomes[-1].passed
        assert deployment.outcomes[-1].reason == "slo-breach"
        # Every touched cluster is back on the previous config.
        for cluster in fleet.clusters[:1]:
            assert cluster.policy_config == PREVIOUS
        # Untouched clusters never saw the new config.
        assert fleet.clusters[-1].policy_config != aggressive

    def test_stage_fraction_maps_to_cluster_count(self):
        fleet = make_fleet()
        deployment = StagedDeployment(
            fleet, [DeploymentStage("tiny", 0.01, 600)], slo_limit=1e9
        )
        deployment.deploy(SAFE)
        # At least one cluster always upgrades.
        assert fleet.clusters[0].policy_config == SAFE
        assert fleet.clusters[1].policy_config != SAFE

    def test_policy_objects_deploy_through_the_ladder(self):
        fleet = make_fleet()
        deployment = StagedDeployment(
            fleet, [DeploymentStage("prod", 1.0, 600)], slo_limit=1e9
        )
        assert deployment.deploy(PaperPolicy(SAFE))
        for cluster in fleet.clusters:
            assert cluster.policy == PaperPolicy(SAFE)
            assert cluster.policy_config == SAFE


class TestFailClosed:
    """Regression: a soak with zero SLI evidence must not pass.

    `SliWindow.percentile` returns 0.0 on an empty window and every
    `AlertRule` suppresses itself below `min_samples`, so before the
    `min_coverage` gate a silent canary sailed through every stage.
    """

    def make_silent_fleet(self):
        # Control period longer than the soak => after the t=0 round
        # (absorbed by the warmup), agents never publish a single SLI
        # sample during the stage.
        return make_fleet(control_period=7200, warmup_hours=0.25)

    def test_zero_sample_stage_fails_closed(self):
        fleet = self.make_silent_fleet()
        deployment = StagedDeployment(
            fleet, [DeploymentStage("qual", 0.34, 600)]
        )
        assert not deployment.deploy(SAFE)
        outcome = deployment.outcomes[0]
        assert not outcome.passed
        assert outcome.reason == "insufficient-coverage"
        assert outcome.slice_samples == 0
        assert outcome.alerts == ()  # no rule fired — that was the trap
        # The touched cluster was rolled back to what it ran before.
        assert fleet.clusters[0].policy_config != SAFE

    def test_min_coverage_zero_reproduces_the_vacuous_pass(self):
        # The pre-fix behavior, kept reachable for comparison: with the
        # gate disabled, the same silent soak "passes" on no evidence.
        fleet = self.make_silent_fleet()
        deployment = StagedDeployment(
            fleet, [DeploymentStage("qual", 0.34, 600)], min_coverage=0
        )
        assert deployment.deploy(SAFE)
        assert deployment.outcomes[0].slice_samples == 0


class TestSampleAttribution:
    """Regression: samples from jobs that exited mid-soak must count."""

    def test_churning_fleet_attributes_every_sample(self):
        fleet = make_fleet(
            clusters=2,
            jobs_per_machine=3,
            warmup_hours=0.25,
            churn_duration_range=(300, 900),
        )
        deployment = StagedDeployment(
            fleet, [DeploymentStage("prod", 1.0, 1800)], slo_limit=1e9
        )
        assert deployment.deploy(SAFE)
        outcome = deployment.outcomes[0]
        # Short-lived jobs churned during the soak; with the one-shot
        # job->cluster map (built from placements, departed jobs
        # included) nothing is dropped on the floor.
        assert outcome.unattributed_samples == 0
        assert outcome.slice_samples > 0


class TestHeterogeneousRollback:
    """Regression: rollback restores each cluster's own prior config."""

    def test_rollback_restores_per_cluster_priors(self):
        fleet = make_fleet(clusters=2)
        prior_a = ThresholdPolicyConfig(percentile_k=95.0,
                                        warmup_seconds=1200)
        prior_b = FixedThresholdPolicy(threshold_seconds=7200.0)
        fleet.clusters[0].deploy_policy(prior_a)
        fleet.clusters[1].deploy_policy(prior_b)

        deployment = StagedDeployment(
            fleet,
            [
                DeploymentStage("qual", 0.5, 600),
                DeploymentStage("prod", 1.0, 600),
            ],
            slo_limit=1e-12,  # guarantees the first stage fails
        )
        aggressive = ThresholdPolicyConfig(percentile_k=50.0,
                                           warmup_seconds=60)
        assert not deployment.deploy(aggressive)
        # Each touched cluster is back on ITS prior, not a single
        # fleet-wide "previous config".
        assert fleet.clusters[0].policy_config == prior_a
        assert fleet.clusters[1].policy == prior_b
