"""ACC001: float equality in accounting / analysis code.

The paper's accounting identities (promotion-rate SLO at P98, cold-age
histograms, bytes-per-page compression ratios) are computed in floating
point; ``==``/``!=`` between floats in ``core/`` and ``analysis/``
silently turns a rounding wobble into a policy flip.  Compare against a
tolerance (``math.isclose``/``numpy.isclose``) or restructure to
integers.

Comparisons against the integer-valued literals ``0.0``/``1.0`` used as
sentinels are still flagged — the handful of deliberate exact-zero
checks in the codebase live outside this rule's path scope or carry a
``# repro: noqa[ACC001]``.
"""

from __future__ import annotations

import ast

from repro.checks.core import Rule, RuleVisitor, register

__all__ = ["FloatEqualityRule"]


def _is_floatish(node: ast.AST) -> bool:
    """Syntactically float-valued: a float literal, ``float(...)``, or an
    arithmetic expression containing a true division."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    if isinstance(node, ast.BinOp):
        for sub in ast.walk(node):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    return False


class _FloatEqualityVisitor(RuleVisitor):
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_floatish(left) or _is_floatish(right):
                kind = "==" if isinstance(op, ast.Eq) else "!="
                self.report(
                    node,
                    f"float `{kind}` comparison in accounting code; use "
                    f"math.isclose / numpy.isclose or integer arithmetic",
                )
                break
        self.generic_visit(node)


@register
class FloatEqualityRule(Rule):
    """ACC001: exact float equality where tolerance is required."""

    id = "ACC001"
    title = "exact float equality in accounting code"
    path_fragments = ("repro/core/", "repro/analysis/", "fixtures/lint/")
    visitor_class = _FloatEqualityVisitor
