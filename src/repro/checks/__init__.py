"""repro.checks: determinism & invariant analysis for the simulator.

Two halves:

* **Static** — an AST lint engine (``repro lint``) with simulator-
  specific rules: DET001 wall-clock reads, DET002 unseeded randomness,
  DET003 order-sensitive accumulation from unordered iteration, DET004
  per-page Python loops in the columnar kernel, FORK001 pickle-safety at
  the fork boundary, ACC001 float equality in accounting code, OBS001
  metric/event name drift.  See
  ``docs/static_analysis.md`` for the rule catalogue and the
  ``# repro: noqa[RULE]`` / baseline workflows.
* **Runtime** — :mod:`repro.checks.invariants`, accounting identities
  asserted inside the hot paths when ``REPRO_CHECKS=1``.
"""

from repro.checks.core import (
    Finding,
    LintEngine,
    LintError,
    RULES,
    Rule,
    RuleVisitor,
    iter_python_files,
    register,
)
from repro.checks.invariants import (
    InvariantViolation,
    check_machine_accounting,
    check_memcg_histogram,
    check_merge_delta,
    invariants_enabled,
    set_invariants_enabled,
)

# Rule modules self-register on import.
from repro.checks import (  # noqa: F401  (imported for registration)
    rules_accounting,
    rules_determinism,
    rules_fork,
    rules_obs,
)

from repro.checks.reporters import (
    filter_baseline,
    load_baseline,
    render_json,
    render_text,
    save_baseline,
)
from repro.checks.runner import (
    LintResult,
    check_docs_drift,
    default_lint_paths,
    run_external_tools,
    run_lint,
)

__all__ = [
    "Finding",
    "InvariantViolation",
    "LintEngine",
    "LintError",
    "LintResult",
    "RULES",
    "Rule",
    "RuleVisitor",
    "check_docs_drift",
    "check_machine_accounting",
    "check_memcg_histogram",
    "check_merge_delta",
    "default_lint_paths",
    "filter_baseline",
    "invariants_enabled",
    "iter_python_files",
    "load_baseline",
    "register",
    "render_json",
    "render_text",
    "run_external_tools",
    "run_lint",
    "save_baseline",
    "set_invariants_enabled",
]
