"""ML-based autotuning: GP regression, GP-Bandit, pipeline, deployment."""

from repro.autotuner.deployment import (
    DEFAULT_STAGES,
    DeploymentStage,
    StagedDeployment,
    StageOutcome,
)
from repro.autotuner.gp import GaussianProcess
from repro.autotuner.gp_bandit import GpBandit, Observation
from repro.autotuner.kernels import Kernel, Matern52Kernel, RbfKernel
from repro.autotuner.pipeline import AutotuningPipeline, Trial, TuningResult
from repro.autotuner.search_space import (
    ContinuousParameter,
    IntegerParameter,
    Parameter,
    SearchSpace,
    config_from_values,
    far_memory_search_space,
)

__all__ = [
    "AutotuningPipeline",
    "ContinuousParameter",
    "DEFAULT_STAGES",
    "DeploymentStage",
    "GaussianProcess",
    "GpBandit",
    "IntegerParameter",
    "Kernel",
    "Matern52Kernel",
    "Observation",
    "Parameter",
    "RbfKernel",
    "SearchSpace",
    "StageOutcome",
    "StagedDeployment",
    "Trial",
    "TuningResult",
    "config_from_values",
    "far_memory_search_space",
]
