"""Spread placement strategy."""

import pytest

from repro.common.errors import SchedulingError
from repro.common.rng import SeedSequenceFactory
from repro.common.units import MIB
from repro.cluster.scheduler import BorgScheduler
from repro.kernel.compression import ContentProfile
from repro.kernel.machine import Machine, MachineConfig
from repro.workloads.job_generator import JobSpec


def make_machines(n=3, dram=64 * MIB):
    seeds = SeedSequenceFactory(2)
    return [
        Machine(f"m{i}", MachineConfig(dram_bytes=dram), seeds=seeds)
        for i in range(n)
    ]


def make_spec(job_id, pages):
    return JobSpec(
        job_id=job_id,
        pages=pages,
        cpu_cores=1.0,
        priority=1,
        content_profile=ContentProfile(),
        pattern_factory=lambda rng: None,
    )


def test_spread_balances_across_machines():
    scheduler = BorgScheduler(make_machines(3), strategy="spread")
    for i in range(6):
        scheduler.place(make_spec(f"j{i}", 1000))
    per_machine = [len(scheduler.jobs_on(f"m{i}")) for i in range(3)]
    assert per_machine == [2, 2, 2]


def test_best_fit_concentrates():
    scheduler = BorgScheduler(make_machines(3), strategy="best_fit")
    for i in range(3):
        scheduler.place(make_spec(f"j{i}", 1000))
    per_machine = sorted(len(scheduler.jobs_on(f"m{i}")) for i in range(3))
    assert per_machine == [0, 0, 3]


def test_spread_still_respects_capacity():
    scheduler = BorgScheduler(make_machines(2, dram=8 * MIB),
                              strategy="spread")
    scheduler.place(make_spec("a", 1500))
    scheduler.place(make_spec("b", 1500))
    with pytest.raises(SchedulingError):
        scheduler.place(make_spec("c", 1500))


def test_unknown_strategy_rejected():
    with pytest.raises(SchedulingError):
        BorgScheduler(make_machines(1), strategy="first_fit")


def test_quickfleet_spread_populates_every_machine():
    from repro.cluster import quickfleet

    fleet = quickfleet(clusters=1, machines_per_cluster=4,
                       jobs_per_machine=2, seed=3)
    for machine in fleet.machines:
        assert machine.memcgs
