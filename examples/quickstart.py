#!/usr/bin/env python3
"""Quickstart: software-defined far memory on a small simulated fleet.

Builds a two-cluster fleet, runs it for a few simulated hours with the
paper's proactive zswap control plane, and prints the headline metrics:
cold memory, coverage, promotion-rate SLI, and the projected TCO saving.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import (
    compression_ratios_per_job,
    per_job_promotion_rates,
    percentile_summary,
    render_table,
)
from repro.cluster import quickfleet
from repro.common.units import HOUR
from repro.core import TcoModel


def main() -> None:
    print("Building a 2-cluster, 8-machine fleet (seed=7)...")
    fleet = quickfleet(
        clusters=2,
        machines_per_cluster=4,
        jobs_per_machine=6,
        seed=7,
    )

    print("Simulating 6 hours of production...")
    fleet.run(6 * HOUR)

    report = fleet.coverage_report()
    print()
    print(
        render_table(
            ["metric", "value"],
            [
                ("cold memory (T=120s)",
                 f"{report['cold_fraction_at_min_threshold']:.1%} of used"),
                ("cold memory coverage", f"{report['coverage']:.1%}"),
                ("far memory stored", f"{report['far_memory_gib']:.3f} GiB"),
                ("DRAM freed by compression", f"{report['saved_gib']:.3f} GiB"),
                ("promotion rate p98 (per-minute samples)",
                 f"{report['promotion_rate_p98_pct_per_min']:.3f} %/min"),
            ],
            title="Fleet report after 6 simulated hours",
        )
    )

    job_rates = per_job_promotion_rates(fleet.sli_history)
    if job_rates:
        summary = percentile_summary(job_rates, (50, 90, 98))
        print()
        print(
            render_table(
                ["percentile", "%/min of WSS"],
                sorted(summary.items()),
                title="Per-job promotion rate (the paper's Fig. 7 statistic)",
            )
        )

    ratios = compression_ratios_per_job(fleet)
    mean_ratio = sum(ratios) / len(ratios) if ratios else 3.0

    tco = TcoModel(fleet_dram_gib=1_000_000).evaluate(
        coverage=report["coverage"],
        cold_fraction=report["cold_fraction_at_min_threshold"],
        compression_ratio=mean_ratio,
    )
    print()
    print(
        render_table(
            ["metric", "value"],
            [
                ("mean compression ratio", f"{mean_ratio:.2f}x"),
                ("DRAM TCO saving", f"{tco.dram_saving_fraction:.2%}"),
                ("at a 1 EiB-class fleet",
                 f"${tco.dram_dollars_saved_per_year:,.0f}/year"),
            ],
            title="Projected TCO (paper §6.1 arithmetic)",
        )
    )


if __name__ == "__main__":
    main()
