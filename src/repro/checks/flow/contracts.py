"""Static column-contract verification (CON001 / CON002).

The columnar kernel (:mod:`repro.kernel.columnar`) and the compiled
model tensors (:mod:`repro.model.trace`) promise fixed dtypes and ranks
for every pooled/compiled array — the whole-pool sweeps and suffix-sum
lookups silently produce wrong answers (or silently upcast and slow
down) if an assignment drifts.  Owning modules declare the promise in a
module-level ``COLUMN_CONTRACTS`` literal::

    COLUMN_CONTRACTS = {
        "MachinePagePool.age_scans": {"dtype": "int32", "ndim": 1},
        ...
    }

This pass reads that literal straight from the AST (no import, so it
works on fixtures and broken trees alike) and checks, inside each
contract-owning class:

* **CON001** — an assignment (or constructor keyword) whose value is a
  recognizable array constructor — ``np.zeros``/``np.ones``/
  ``np.empty``/``np.full``/``np.arange``/``np.asarray`` with a literal
  ``dtype=``, or ``.astype(...)`` — with a dtype or rank that
  contradicts the declared contract.  One-step local propagation is
  applied: ``fresh = np.zeros(n, dtype=np.int64); self.col = fresh`` is
  checked too.
* **CON002** — ``self.<name> = <array constructor>`` for a *public*
  ``name`` with no declared contract: a new column snuck into a pooled
  class without declaring its dtype/shape promise.

The runtime half lives in :mod:`repro.checks.contracts` and verifies
the same table against live arrays behind ``REPRO_CHECKS=1``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.checks.core import Finding

__all__ = ["check_module_contracts", "parse_contract_table"]

#: The module-level literal the pass looks for.
TABLE_NAME = "COLUMN_CONTRACTS"

#: Array constructors whose first argument is the shape.
_SHAPE_CTORS = frozenset(
    {"numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full"}
)

#: dtype spellings -> canonical dtype string.
_DTYPE_NAMES = {
    "bool": "bool", "bool_": "bool",
    "int8": "int8", "int16": "int16", "int32": "int32", "int64": "int64",
    "uint8": "uint8", "uint16": "uint16", "uint32": "uint32",
    "uint64": "uint64",
    "float32": "float32", "float64": "float64", "float": "float64",
    "int": "int64",
}


def parse_contract_table(tree: ast.Module) -> Optional[Dict[str, Dict[str, object]]]:
    """The ``COLUMN_CONTRACTS`` literal of a module, or None.

    Only pure literals are accepted — the table is shared with the
    runtime checker, so anything dynamic would make the static and
    runtime views diverge.
    """
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == TABLE_NAME
        ):
            try:
                table = ast.literal_eval(stmt.value)
            except ValueError:
                return None
            if isinstance(table, dict):
                return table
    return None


def _dtype_string(node: ast.AST) -> Optional[str]:
    """Canonical dtype for a literal dtype expression, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _DTYPE_NAMES.get(node.value, node.value)
    if isinstance(node, ast.Attribute):
        return _DTYPE_NAMES.get(node.attr)
    if isinstance(node, ast.Name):
        return _DTYPE_NAMES.get(node.id)
    return None


def _ctor_facts(
    node: ast.AST, dotted
) -> Optional[Tuple[Optional[str], Optional[int], str]]:
    """(dtype, ndim, description) when ``node`` is a recognizable array
    constructor; dtype/ndim are None when not statically determined."""
    if not isinstance(node, ast.Call):
        return None
    # .astype(X) — dtype known, rank preserved (unknown here).
    if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
        dtype = _dtype_string(node.args[0]) if node.args else None
        for kw in node.keywords:
            if kw.arg == "dtype":
                dtype = _dtype_string(kw.value)
        if dtype is not None:
            return dtype, None, f".astype({dtype})"
        return None
    name = dotted(node.func)
    if name is None:
        return None
    dtype: Optional[str] = None
    for kw in node.keywords:
        if kw.arg == "dtype":
            dtype = _dtype_string(kw.value)
    if name in _SHAPE_CTORS:
        ndim: Optional[int] = None
        shape_pos = 0
        if node.args:
            shape = node.args[shape_pos]
            if isinstance(shape, ast.Tuple):
                ndim = len(shape.elts)
            else:
                ndim = 1
        if dtype is None:
            return None
        return dtype, ndim, f"{name.rsplit('.', 1)[-1]}(dtype={dtype})"
    if name in ("numpy.arange",):
        if dtype is None:
            return None
        return dtype, 1, f"arange(dtype={dtype})"
    if name in ("numpy.asarray", "numpy.array", "numpy.asanyarray"):
        if dtype is None:
            return None
        return dtype, None, f"{name.rsplit('.', 1)[-1]}(dtype={dtype})"
    return None


class _ContractVisitor(ast.NodeVisitor):
    """Walks one contract-owning class, checking assignments + ctor kwargs."""

    def __init__(
        self,
        rel_path: str,
        class_name: str,
        contracts: Dict[str, Dict[str, object]],
        dotted,
    ):
        self.rel_path = rel_path
        self.class_name = class_name
        self.contracts = contracts
        self.dotted = dotted
        self.findings: List[Finding] = []
        #: local name -> ctor facts (one-step propagation).
        self._locals: Dict[str, Tuple[Optional[str], Optional[int], str]] = {}
        #: class names that own at least one contract entry.
        self._owners = {key.split(".", 1)[0] for key in contracts}

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.rel_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    def _check_value(
        self, attr: str, value: ast.AST, node: ast.AST
    ) -> None:
        facts = _ctor_facts(value, self.dotted)
        if facts is None and isinstance(value, ast.Name):
            facts = self._locals.get(value.id)
        key = f"{self.class_name}.{attr}"
        contract = self.contracts.get(key)
        if contract is None:
            if facts is not None and not attr.startswith("_"):
                self._report(
                    "CON002",
                    node,
                    f"undeclared column `{key}`: array assignment with no "
                    f"COLUMN_CONTRACTS entry — declare its dtype/ndim "
                    f"promise",
                )
            return
        if facts is None:
            return  # not statically determinable; the runtime check covers it
        dtype, ndim, described = facts
        want_dtype = contract.get("dtype")
        want_ndim = contract.get("ndim")
        if dtype is not None and want_dtype is not None and dtype != want_dtype:
            self._report(
                "CON001",
                node,
                f"column `{key}` declared dtype={want_dtype} but assigned "
                f"{described} (dtype={dtype})",
            )
        if (
            ndim is not None
            and isinstance(want_ndim, int)
            and ndim != want_ndim
        ):
            self._report(
                "CON001",
                node,
                f"column `{key}` declared ndim={want_ndim} but assigned a "
                f"rank-{ndim} constructor ({described})",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        # Track locals for one-step propagation.
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            facts = _ctor_facts(node.value, self.dotted)
            if facts is not None:
                self._locals[node.targets[0].id] = facts
            else:
                self._locals.pop(node.targets[0].id, None)
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self._check_value(target.attr, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            node.value is not None
            and isinstance(node.target, ast.Attribute)
            and isinstance(node.target.value, ast.Name)
            and node.target.value.id == "self"
        ):
            self._check_value(node.target.attr, node.value, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # Constructor keywords: cls(col=local) / ClassName(col=np.zeros(...)).
        callee: Optional[str] = None
        if isinstance(node.func, ast.Name):
            if node.func.id == "cls":
                callee = self.class_name
            elif node.func.id in self._owners:
                callee = node.func.id
        elif isinstance(node.func, ast.Attribute):
            leaf = node.func.attr
            if leaf in self._owners:
                callee = leaf
        if callee is not None:
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                saved = self.class_name
                self.class_name = callee
                self._check_value(kw.arg, kw.value, node)
                self.class_name = saved
        self.generic_visit(node)


def check_module_contracts(tree: ast.Module, summary) -> List[Finding]:
    """Run CON001/CON002 over one module (no-op without a contract table).

    Args:
        tree: the module's parsed AST.
        summary: the module's :class:`~repro.checks.flow.callgraph.ModuleSummary`
            (for rel_path; suppressions are applied later by the runner).
    """
    contracts = parse_contract_table(tree)
    if not contracts:
        return []
    owners = {key.split(".", 1)[0] for key in contracts}
    # A tiny alias resolver good enough for dtype/ctor dotted names.
    module_aliases: Dict[str, str] = {}
    symbol_aliases: Dict[str, str] = {}
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    module_aliases[alias.asname] = alias.name
                else:
                    module_aliases[alias.name.split(".")[0]] = alias.name
        elif isinstance(stmt, ast.ImportFrom) and stmt.module:
            for alias in stmt.names:
                symbol_aliases[alias.asname or alias.name] = (
                    f"{stmt.module}.{alias.name}"
                )

    def dotted(node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        resolved = module_aliases.get(root) or symbol_aliases.get(root) or root
        parts.append(resolved)
        return ".".join(reversed(parts))

    findings: List[Finding] = []
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name in owners:
            visitor = _ContractVisitor(
                summary.rel_path, stmt.name, contracts, dotted
            )
            visitor.visit(stmt)
            findings.extend(visitor.findings)
    return sorted(findings)
