"""Memcg page-state machine: allocation, touch, scan, reclaim candidacy."""

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.common.units import MAX_PAGE_AGE_SCANS
from repro.core.threshold_policy import DISABLED
from repro.kernel.memcg import MemCg, PageState


class TestAllocation:
    def test_allocate_marks_resident_and_accessed(self, memcg):
        idx = memcg.allocate(100)
        assert memcg.resident_pages == 100
        assert memcg.near_pages == 100
        assert memcg.accessed[idx].all()
        assert (memcg.age_scans[idx] == 0).all()

    def test_allocate_zero(self, memcg):
        assert memcg.allocate(0).size == 0

    def test_over_allocation_raises(self, memcg):
        with pytest.raises(SimulationError):
            memcg.allocate(memcg.capacity_pages + 1)

    def test_release_returns_far_subset(self, memcg):
        idx = memcg.allocate(10)
        memcg.state[idx[:3]] = PageState.FAR
        far = memcg.release(idx)
        assert far.size == 3
        assert memcg.resident_pages == 0

    def test_release_nonresident_raises(self, memcg):
        with pytest.raises(Exception):
            memcg.release(np.array([0]))

    def test_slots_reusable_after_release(self, memcg):
        idx = memcg.allocate(memcg.capacity_pages)
        memcg.release(idx[:500])
        again = memcg.allocate(500)
        assert again.size == 500


class TestTouch:
    def test_touch_sets_accessed(self, memcg):
        idx = memcg.allocate(10)
        memcg.accessed[idx] = False
        memcg.touch(idx[:4])
        assert memcg.accessed[idx[:4]].all()
        assert not memcg.accessed[idx[4:]].any()

    def test_touch_reports_far_pages(self, memcg):
        idx = memcg.allocate(10)
        memcg.state[idx[:2]] = PageState.FAR
        far = memcg.touch(idx[:5])
        np.testing.assert_array_equal(np.sort(far), np.sort(idx[:2]))

    def test_write_touch_dirties(self, memcg):
        idx = memcg.allocate(10)
        memcg.dirtied[idx] = False
        memcg.touch(idx[:3], write=True)
        assert memcg.dirtied[idx[:3]].all()

    def test_touch_ignores_nonresident(self, memcg):
        idx = memcg.allocate(10)
        memcg.release(idx[:5])
        far = memcg.touch(idx)  # includes released slots
        assert far.size == 0
        assert not memcg.accessed[idx[:5]].any()


class TestScan:
    def test_idle_pages_age(self, memcg):
        idx = memcg.allocate(10)
        memcg.scan_update()  # consumes the allocation touch
        memcg.scan_update()
        assert (memcg.age_scans[idx] == 1).all()

    def test_accessed_pages_reset(self, memcg):
        idx = memcg.allocate(10)
        for _ in range(3):
            memcg.scan_update()
        memcg.touch(idx[:2])
        memcg.scan_update()
        assert (memcg.age_scans[idx[:2]] == 0).all()
        assert (memcg.age_scans[idx[2:]] == 3).all()

    def test_age_saturates_at_255(self, memcg):
        idx = memcg.allocate(5)
        memcg.accessed[idx] = False
        memcg.age_scans[idx] = MAX_PAGE_AGE_SCANS
        memcg.scan_update()
        assert (memcg.age_scans[idx] == MAX_PAGE_AGE_SCANS).all()

    def test_promotion_histogram_records_age_at_access(self, memcg):
        idx = memcg.allocate(10)
        memcg.scan_update()
        # Age the pages to 2 scans (240s), then touch one.
        memcg.scan_update()
        memcg.scan_update()
        memcg.touch(idx[:1])
        memcg.scan_update()
        assert memcg.promotion_histogram.colder_than(240) == 1

    def test_cold_histogram_is_snapshot(self, memcg):
        memcg.allocate(10)
        memcg.scan_update()
        memcg.scan_update()
        first = memcg.cold_age_histogram.total
        memcg.scan_update()
        # Snapshot, not cumulative: total stays the page count.
        assert memcg.cold_age_histogram.total == first == 10

    def test_dirty_clears_incompressible(self, memcg):
        idx = memcg.allocate(10)
        memcg.incompressible[idx[:3]] = True
        memcg.dirtied[:] = False
        memcg.touch(idx[:3], write=True)
        memcg.scan_update()
        assert not memcg.incompressible[idx[:3]].any()

    def test_dirty_resamples_payload(self, memcg):
        idx = memcg.allocate(200)
        before = memcg.payload_bytes[idx].copy()
        memcg.dirtied[:] = False
        memcg.touch(idx, write=True)
        memcg.scan_update()
        # With 200 pages at least one payload must change.
        assert (memcg.payload_bytes[idx] != before).any()


class TestColdAccounting:
    def test_cold_pages_counts_by_threshold(self, memcg):
        idx = memcg.allocate(10)
        memcg.scan_update()
        for _ in range(2):
            memcg.scan_update()  # ages -> 2 scans = 240s
        assert memcg.cold_pages(120) == 10
        assert memcg.cold_pages(240) == 10
        assert memcg.cold_pages(241) == 0

    def test_far_pages_counted_as_cold(self, memcg):
        idx = memcg.allocate(10)
        memcg.scan_update()
        memcg.scan_update()
        memcg.state[idx[:4]] = PageState.FAR
        assert memcg.cold_pages(120) == 10
        assert memcg.far_pages == 4
        assert memcg.near_pages == 6


class TestReclaimCandidates:
    def _age_all(self, memcg, scans):
        memcg.scan_update()
        for _ in range(scans):
            memcg.scan_update()

    def test_only_old_enough_pages(self, memcg):
        idx = memcg.allocate(10)
        self._age_all(memcg, 2)  # 240s
        memcg.touch(idx[:3])
        memcg.scan_update()  # those 3 reset
        candidates = memcg.reclaim_candidates(240)
        assert set(candidates) == set(idx[3:])

    def test_excludes_far_unevictable_incompressible(self, memcg):
        idx = memcg.allocate(10)
        self._age_all(memcg, 3)
        memcg.state[idx[0]] = PageState.FAR
        memcg.mlock(idx[1:2])
        memcg.incompressible[idx[2]] = True
        candidates = memcg.reclaim_candidates(120)
        assert set(candidates) == set(idx[3:])

    def test_disabled_threshold_no_candidates(self, memcg):
        memcg.allocate(10)
        self._age_all(memcg, 3)
        assert memcg.reclaim_candidates(DISABLED).size == 0

    def test_munlock_restores_candidacy(self, memcg):
        idx = memcg.allocate(4)
        self._age_all(memcg, 2)
        memcg.mlock(idx)
        assert memcg.reclaim_candidates(120).size == 0
        memcg.munlock(idx)
        assert memcg.reclaim_candidates(120).size == 4


class TestRecordPromotions:
    def test_updates_histogram_and_counters(self, memcg):
        idx = memcg.allocate(5)
        memcg.age_scans[idx] = 4  # 480s
        memcg.record_promotions(idx[:2])
        assert memcg.promoted_pages_total == 2
        assert memcg.promotion_histogram.colder_than(480) == 2
        assert (memcg.age_scans[idx[:2]] == 0).all()
