"""Ablation (§3.2): proactive control plane vs stock-Linux reactive zswap.

Paper: reactive zswap (direct reclaim under pressure) was evaluated during
deployment and rejected — savings only materialize at saturation, and the
last-minute compression bursts stall allocations and hurt tails.  We run
identical workloads under both modes and verify:

* proactive realizes memory savings long before saturation;
* reactive realizes (almost) none until pressure, then bills synchronous
  stall time to the allocating task.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agent import NodeAgent
from repro.analysis import render_table
from repro.common.rng import SeedSequenceFactory
from repro.common.units import HOUR, MIB, PAGE_SIZE
from repro.core import ThresholdPolicyConfig
from repro.kernel import ContentProfile, FarMemoryMode, Machine, MachineConfig
from repro.workloads import (
    HeterogeneousPoissonPattern,
    make_rates_for_cold_fraction,
)

DRAM = 256 * MIB
SIM_SECONDS = 3 * HOUR


def run_mode(mode: FarMemoryMode):
    seeds = SeedSequenceFactory(23)
    machine = Machine("m", MachineConfig(dram_bytes=DRAM, mode=mode),
                      seeds=seeds)
    agent = NodeAgent(
        machine, ThresholdPolicyConfig(percentile_k=95, warmup_seconds=300)
    )
    rng = np.random.default_rng(23)

    resident_pages = int(0.75 * DRAM / PAGE_SIZE)
    machine.add_job("resident", resident_pages,
                    ContentProfile(incompressible_fraction=0.1))
    page_map = machine.allocate("resident", resident_pages)
    pattern = HeterogeneousPoissonPattern(
        make_rates_for_cold_fraction(resident_pages, 0.5, rng)
    )

    burst_pages = int(0.3 * DRAM / PAGE_SIZE)
    machine.add_job("bursty", burst_pages, ContentProfile())
    burst_live = None
    pre_pressure_saved = None
    oom_failures = 0

    for t in range(0, SIM_SECONDS, 60):
        reads, writes = pattern.step(t, 60, rng)
        machine.touch("resident", page_map[reads])
        machine.touch("resident", page_map[writes], write=True)
        minute = t // 60
        if minute == 8:
            # Snapshot savings before the first allocation burst (min 10):
            # no memory pressure has existed yet.
            pre_pressure_saved = machine.saved_bytes()
        if minute % 20 == 10:
            try:
                burst_live = machine.allocate("bursty", burst_pages)
            except Exception:
                oom_failures += 1
        elif burst_live is not None and minute % 20 == 15:
            machine.release("bursty", burst_live)
            burst_live = None
        machine.tick(t)
        agent.maybe_control(t)
    return {
        "machine": machine,
        "pre_pressure_saved": pre_pressure_saved,
        "oom_failures": oom_failures,
    }


@pytest.fixture(scope="module")
def both_modes():
    return {
        mode: run_mode(mode)
        for mode in (FarMemoryMode.REACTIVE, FarMemoryMode.PROACTIVE)
    }


def test_ablation_reactive_vs_proactive(benchmark, both_modes, save_result):
    reactive = both_modes[FarMemoryMode.REACTIVE]
    proactive = both_modes[FarMemoryMode.PROACTIVE]

    rows = benchmark(
        lambda: [
            (
                mode.value,
                f"{result['pre_pressure_saved'] / MIB:.1f} MiB",
                f"{result['machine'].saved_bytes() / MIB:.1f} MiB",
                f"{result['machine'].direct_reclaim.stall_seconds_total * 1e3:.2f} ms",
                result["machine"].direct_reclaim.invocations,
            )
            for mode, result in both_modes.items()
        ]
    )

    # Proactive realizes savings before any pressure; reactive does not.
    assert proactive["pre_pressure_saved"] > 2 * MIB
    assert reactive["pre_pressure_saved"] < proactive["pre_pressure_saved"] / 4

    # Reactive pays for its savings with allocation-path stalls.
    assert reactive["machine"].direct_reclaim.stall_seconds_total > 0
    assert proactive["machine"].direct_reclaim.stall_seconds_total == 0.0
    assert proactive["machine"].direct_reclaim.invocations == 0

    save_result(
        "ablation_reactive_vs_proactive",
        render_table(
            ["mode", "saved pre-pressure", "saved at end",
             "allocation stall", "direct reclaims"],
            rows,
            title="§3.2 ablation — proactive vs reactive zswap",
        ),
    )
