"""Stateful property testing: random op sequences against a Machine.

Hypothesis drives arbitrary interleavings of job lifecycle, page access,
scans, reclaim, and compaction, checking the accounting invariants that
must hold after *every* operation:

* conservation: ``used = near + arena footprint`` and ``free >= 0``;
* every far page is backed by exactly one arena object;
* arena footprint always covers its payload bytes;
* far pages are never unevictable or incompressible;
* the cold-age histogram snapshot counts exactly the resident pages.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.common.errors import OutOfMemoryError, SimulationError
from repro.common.rng import SeedSequenceFactory
from repro.common.units import MIB, PAGE_SIZE
from repro.kernel.compression import ContentProfile
from repro.kernel.machine import FarMemoryMode, Machine, MachineConfig


class MachineStateMachine(RuleBasedStateMachine):
    """Random walks over the Machine API."""

    def __init__(self):
        super().__init__()
        self.machine = None
        self.pages = {}  # job_id -> allocated indices
        self.job_counter = 0
        self.time = 0

    @initialize(
        mode=st.sampled_from([FarMemoryMode.PROACTIVE, FarMemoryMode.REACTIVE]),
        pool_fraction=st.sampled_from([0.0, 0.2]),
    )
    def setup(self, mode, pool_fraction):
        self.machine = Machine(
            "fuzz",
            MachineConfig(
                dram_bytes=32 * MIB,
                mode=mode,
                zswap_max_pool_fraction=pool_fraction,
            ),
            seeds=SeedSequenceFactory(99),
        )

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @rule(
        pages=st.integers(min_value=1, max_value=1500),
        incompressible=st.floats(min_value=0.0, max_value=1.0),
    )
    def add_job(self, pages, incompressible):
        job_id = f"job{self.job_counter}"
        self.job_counter += 1
        profile = ContentProfile(incompressible_fraction=incompressible)
        self.machine.add_job(job_id, pages, profile)
        try:
            self.pages[job_id] = self.machine.allocate(job_id, pages)
        except OutOfMemoryError:
            self.machine.remove_job(job_id)

    @precondition(lambda self: self.pages)
    @rule(data=st.data())
    def remove_job(self, data):
        job_id = data.draw(st.sampled_from(sorted(self.pages)))
        self.machine.remove_job(job_id)
        del self.pages[job_id]

    @precondition(lambda self: self.pages)
    @rule(data=st.data(), fraction=st.floats(min_value=0.0, max_value=1.0),
          write=st.booleans())
    def touch(self, data, fraction, write):
        job_id = data.draw(st.sampled_from(sorted(self.pages)))
        indices = self.pages[job_id]
        count = int(fraction * indices.size)
        if count:
            self.machine.touch(job_id, indices[:count], write=write)

    @precondition(lambda self: self.pages)
    @rule(data=st.data())
    def release_half(self, data):
        job_id = data.draw(st.sampled_from(sorted(self.pages)))
        indices = self.pages[job_id]
        if indices.size < 2:
            return
        half = indices[: indices.size // 2]
        self.machine.release(job_id, half)
        self.pages[job_id] = indices[indices.size // 2 :]

    @rule(ticks=st.integers(min_value=1, max_value=5))
    def advance_time(self, ticks):
        for _ in range(ticks):
            self.time += 60
            self.machine.tick(self.time)

    @precondition(lambda self: self.pages)
    @rule(data=st.data(),
          threshold=st.sampled_from([120.0, 480.0, 3840.0, float("inf")]))
    def set_threshold_and_reclaim(self, data, threshold):
        job_id = data.draw(st.sampled_from(sorted(self.pages)))
        self.machine.memcgs[job_id].cold_age_threshold = threshold
        self.machine.run_reclaim()

    @rule()
    def compact(self):
        self.machine.arena.compact()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def accounting_conserved(self):
        if self.machine is None:
            return
        machine = self.machine
        assert machine.used_bytes == (
            machine.near_bytes + machine.arena.footprint_bytes
        )
        assert machine.free_bytes >= 0

    @invariant()
    def far_pages_backed_by_arena(self):
        if self.machine is None:
            return
        assert self.machine.far_pages == self.machine.arena.live_objects

    @invariant()
    def arena_covers_payload(self):
        if self.machine is None:
            return
        stats = self.machine.arena.stats()
        assert stats.footprint_bytes >= stats.payload_bytes
        assert stats.payload_bytes >= 0

    @invariant()
    def far_page_state_sane(self):
        if self.machine is None:
            return
        for memcg in self.machine.memcgs.values():
            far = memcg.far_mask()
            assert memcg.resident[far].all()
            assert not memcg.incompressible[far].any()
            assert (
                memcg.payload_bytes[far] <= self.machine.zswap.max_payload_bytes
            ).all()


MachineStateMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestMachineStateful = MachineStateMachine.TestCase
