"""Far-memory trace schema (paper §5.3).

Each trace entry captures one job's far-memory statistics aggregated over a
5-minute period — exactly the triple the paper's telemetry exports:

* the **working set size** (pages touched within the minimum threshold),
* the **promotion histogram** accumulated over the period (would-be
  promotions at every candidate threshold),
* the **cold-age histogram** snapshot at the end of the period.

These entries are all the fast far memory model needs to replay the §4.3
control algorithm offline under any parameter configuration: the histograms
carry information about *all* candidate thresholds simultaneously.

Entries are plain data with dict/JSON round-tripping so traces can be
persisted to the external database (:mod:`repro.cluster.trace_db`) and
shipped to the autotuner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.checks.contracts import verify_column_contracts
from repro.checks.invariants import invariants_enabled
from repro.common.errors import TraceError
from repro.core.histograms import AgeBins, AgeHistogram

__all__ = [
    "TRACE_PERIOD_SECONDS",
    "TelemetryBlock",
    "TraceEntry",
    "JobTrace",
    "CompiledTrace",
]

#: Aggregation period of one trace entry (the paper uses 5 minutes).
TRACE_PERIOD_SECONDS = 300

#: The trace tensor layout promises.  Checked statically by the
#: CON001/CON002 flow rules against every visible constructor call, and
#: at runtime (under ``REPRO_CHECKS=1``) by ``__post_init__`` on every
#: construction path — ``from_trace``, ``from_columns``, ``from_entries``,
#: and direct instantiation alike.  Must stay a pure literal.
COLUMN_CONTRACTS = {
    "CompiledTrace.cold_suffix_sums": {"dtype": "int64", "ndim": 2},
    "CompiledTrace.promotion_suffix_sums": {"dtype": "int64", "ndim": 2},
    "CompiledTrace.working_set_pages": {"dtype": "int64", "ndim": 1},
    "CompiledTrace.times": {"dtype": "int64", "ndim": 1},
    "CompiledTrace.resident_pages": {"dtype": "int64", "ndim": 1},
    "CompiledTrace.cpu_cores": {"dtype": "float64", "ndim": 1},
    # The zero-copy telemetry block: one export window as dense columns.
    "TelemetryBlock.job": {"dtype": "int64", "ndim": 1},
    "TelemetryBlock.machine": {"dtype": "int64", "ndim": 1},
    "TelemetryBlock.time": {"dtype": "int64", "ndim": 1},
    "TelemetryBlock.working_set_pages": {"dtype": "int64", "ndim": 1},
    "TelemetryBlock.resident_pages": {"dtype": "int64", "ndim": 1},
    "TelemetryBlock.cpu_cores": {"dtype": "float64", "ndim": 1},
    "TelemetryBlock.promotion_counts": {"dtype": "int64", "ndim": 2},
    "TelemetryBlock.promotion_young": {"dtype": "int64", "ndim": 1},
    "TelemetryBlock.cold_counts": {"dtype": "int64", "ndim": 2},
    "TelemetryBlock.cold_young": {"dtype": "int64", "ndim": 1},
}

#: TelemetryBlock per-row columns by family — the validation tables the
#: block and the trace store share.
BLOCK_INT_COLUMNS = (
    "time",
    "job",
    "machine",
    "working_set_pages",
    "resident_pages",
    "promotion_young",
    "cold_young",
)
BLOCK_FLOAT_COLUMNS = ("cpu_cores",)
BLOCK_MATRIX_COLUMNS = ("promotion_counts", "cold_counts")

#: Precomputed (dtype, ndim) per block column.  ``validate`` runs on the
#: hot ingest path for every block, so dtype checks compare against
#: these dtype objects instead of building name strings each call.
_BLOCK_SCHEMA: Dict[str, Tuple[np.dtype, int]] = {
    **{name: (np.dtype(np.int64), 1) for name in BLOCK_INT_COLUMNS},
    **{name: (np.dtype(np.float64), 1) for name in BLOCK_FLOAT_COLUMNS},
    **{name: (np.dtype(np.int64), 2) for name in BLOCK_MATRIX_COLUMNS},
}


def _histogram_to_lists(histogram: AgeHistogram) -> Tuple[List[int], int]:
    return histogram.counts.tolist(), histogram.young_count


def _histogram_from_lists(
    bins: AgeBins, counts: Sequence[int], young: int
) -> AgeHistogram:
    histogram = AgeHistogram(bins)
    counts = np.asarray(counts, dtype=np.int64)
    if counts.shape != histogram.counts.shape:
        raise TraceError(
            f"histogram has {counts.size} bins, grid expects "
            f"{histogram.counts.size}"
        )
    histogram.counts = counts
    histogram.young_count = int(young)
    return histogram


@dataclass
class TraceEntry:
    """One job's 5-minute far-memory statistics.

    Attributes:
        job_id: the job this entry describes.
        machine_id: where the job was running.
        time: start of the aggregation period (seconds).
        working_set_pages: pages accessed within the minimum threshold.
        promotion_histogram: would-be promotions during this period, by age.
        cold_age_histogram: page-age snapshot at the end of the period.
        resident_pages: total resident pages (near + far).
        cpu_cores: the job's average CPU usage in cores (for overhead
            normalization in Fig. 8).
    """

    job_id: str
    machine_id: str
    time: int
    working_set_pages: int
    promotion_histogram: AgeHistogram
    cold_age_histogram: AgeHistogram
    resident_pages: int
    cpu_cores: float = 1.0

    def __post_init__(self) -> None:
        if self.promotion_histogram.bins.thresholds != (
            self.cold_age_histogram.bins.thresholds
        ):
            raise TraceError("trace histograms must share one threshold grid")
        if self.working_set_pages < 0 or self.resident_pages < 0:
            raise TraceError("page counts must be non-negative")

    @property
    def bins(self) -> AgeBins:
        """The candidate-threshold grid these histograms use."""
        return self.promotion_histogram.bins

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to JSON-compatible primitives."""
        promo_counts, promo_young = _histogram_to_lists(self.promotion_histogram)
        cold_counts, cold_young = _histogram_to_lists(self.cold_age_histogram)
        return {
            "job_id": self.job_id,
            "machine_id": self.machine_id,
            "time": self.time,
            "working_set_pages": self.working_set_pages,
            "thresholds": list(self.bins.thresholds),
            "promotion_counts": promo_counts,
            "promotion_young": promo_young,
            "cold_counts": cold_counts,
            "cold_young": cold_young,
            "resident_pages": self.resident_pages,
            "cpu_cores": self.cpu_cores,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEntry":
        """Inverse of :meth:`to_dict`."""
        try:
            bins = AgeBins(tuple(int(t) for t in data["thresholds"]))
            return cls(
                job_id=data["job_id"],
                machine_id=data["machine_id"],
                time=int(data["time"]),
                working_set_pages=int(data["working_set_pages"]),
                promotion_histogram=_histogram_from_lists(
                    bins, data["promotion_counts"], data["promotion_young"]
                ),
                cold_age_histogram=_histogram_from_lists(
                    bins, data["cold_counts"], data["cold_young"]
                ),
                resident_pages=int(data["resident_pages"]),
                cpu_cores=float(data.get("cpu_cores", 1.0)),
            )
        except KeyError as missing:
            raise TraceError(f"trace entry missing field {missing}") from None


@dataclass
class TelemetryBlock:
    """One telemetry export window as dense numpy columns (zero-copy unit).

    The columnar kernel materializes a block per export window straight
    from :class:`~repro.kernel.columnar.MachinePagePool` columns (one
    fancy-index gather per column), and the on-disk trace store ingests
    it via ``append_columns`` without ever constructing a
    :class:`TraceEntry`.  Job and machine ids are carried once each in
    small string tables; the per-row ``job``/``machine`` columns hold
    ordinals into those tables.

    Rows are one-per-(job, window); the histogram matrices are
    ``(rows, len(bins))`` over the shared candidate threshold grid,
    exactly the layout :mod:`repro.tracestore` segments persist.

    Attributes:
        bins: the candidate-threshold grid every row shares.
        job_table: distinct job ids, first-seen order.
        machine_table: distinct machine ids, first-seen order.
        job: per-row ordinals into ``job_table`` (int64).
        machine: per-row ordinals into ``machine_table`` (int64).
        time: period start times (int64).
        working_set_pages: working-set sizes (int64).
        resident_pages: resident page counts (int64).
        cpu_cores: average CPU cores (float64).
        promotion_counts: per-period promotion histogram counts.
        promotion_young: per-period promotion young counts (int64).
        cold_counts: cold-age snapshot counts.
        cold_young: cold-age young counts (int64).
    """

    bins: AgeBins
    job_table: List[str]
    machine_table: List[str]
    job: np.ndarray
    machine: np.ndarray
    time: np.ndarray
    working_set_pages: np.ndarray
    resident_pages: np.ndarray
    cpu_cores: np.ndarray
    promotion_counts: np.ndarray
    promotion_young: np.ndarray
    cold_counts: np.ndarray
    cold_young: np.ndarray

    def __post_init__(self) -> None:
        if invariants_enabled():
            verify_column_contracts(self, COLUMN_CONTRACTS, where="construct")
            self.validate()

    @property
    def n_rows(self) -> int:
        """Rows in the block."""
        return int(self.time.size)

    def validate(self) -> None:
        """Check dtypes, shapes, and ordinal ranges; raise a located error.

        The trace store calls this unconditionally before ingesting a
        block, so a dtype drift is rejected whole with the offending
        column named — never half-appended.

        Raises:
            TraceError: naming the first offending column.
        """
        n = int(np.asarray(self.time).size)
        for name, (dtype, ndim) in _BLOCK_SCHEMA.items():
            column = getattr(self, name)
            if not isinstance(column, np.ndarray):
                raise TraceError(
                    f"TelemetryBlock.{name}: expected ndarray, got "
                    f"{type(column).__name__}"
                )
            # Pointer comparison first: numpy interns builtin dtypes, so
            # the well-formed case never pays a dtype __eq__.
            if column.dtype is not dtype and column.dtype != dtype:
                raise TraceError(
                    f"TelemetryBlock.{name}: dtype {column.dtype}, "
                    f"expected {dtype}"
                )
            if column.ndim != ndim:
                raise TraceError(
                    f"TelemetryBlock.{name}: ndim {column.ndim}, "
                    f"expected {ndim}"
                )
            if column.shape[0] != n:
                raise TraceError(
                    f"TelemetryBlock.{name}: {column.shape[0]} rows, "
                    f"block has {n}"
                )
            if ndim == 2 and column.shape[1] != len(self.bins):
                raise TraceError(
                    f"TelemetryBlock.{name}: {column.shape[1]} bins, "
                    f"grid has {len(self.bins)}"
                )
        if n:
            for name, table in (
                ("job", self.job_table),
                ("machine", self.machine_table),
            ):
                column = getattr(self, name)
                if int(column.min()) < 0 or int(column.max()) >= len(table):
                    raise TraceError(
                        f"TelemetryBlock.{name}: ordinal out of range for "
                        f"a {len(table)}-entry table"
                    )
            if int(self.working_set_pages.min()) < 0 or int(
                self.resident_pages.min()
            ) < 0:
                raise TraceError(
                    "TelemetryBlock: page counts must be non-negative"
                )

    @classmethod
    def from_entries(cls, entries: Sequence[TraceEntry]) -> "TelemetryBlock":
        """Pack trace entries into a block (the object-path bridge).

        Used by the equivalence oracle and by mixed merges (e.g. a
        degraded engine shard that staged entries).  Row order is the
        entry order.

        Raises:
            TraceError: on an empty sequence or mixed threshold grids.
        """
        if not entries:
            raise TraceError("cannot build a TelemetryBlock from no entries")
        bins = entries[0].bins
        job_table: List[str] = []
        job_index: Dict[str, int] = {}
        machine_table: List[str] = []
        machine_index: Dict[str, int] = {}
        n = len(entries)
        jobs = np.empty(n, dtype=np.int64)
        machines = np.empty(n, dtype=np.int64)
        for i, entry in enumerate(entries):
            if entry.bins.thresholds != bins.thresholds:
                raise TraceError(
                    f"entry for job {entry.job_id} uses a different "
                    f"threshold grid; a block carries exactly one"
                )
            ordinal = job_index.get(entry.job_id)
            if ordinal is None:
                ordinal = len(job_table)
                job_index[entry.job_id] = ordinal
                job_table.append(entry.job_id)
            jobs[i] = ordinal
            ordinal = machine_index.get(entry.machine_id)
            if ordinal is None:
                ordinal = len(machine_table)
                machine_index[entry.machine_id] = ordinal
                machine_table.append(entry.machine_id)
            machines[i] = ordinal
        return cls(
            bins=bins,
            job_table=job_table,
            machine_table=machine_table,
            job=jobs,
            machine=machines,
            time=np.fromiter(
                (e.time for e in entries), dtype=np.int64, count=n),
            working_set_pages=np.fromiter(
                (e.working_set_pages for e in entries),
                dtype=np.int64, count=n),
            resident_pages=np.fromiter(
                (e.resident_pages for e in entries),
                dtype=np.int64, count=n),
            cpu_cores=np.fromiter(
                (e.cpu_cores for e in entries), dtype=np.float64, count=n),
            promotion_counts=np.stack(
                [e.promotion_histogram.counts for e in entries]
            ).astype(np.int64),
            promotion_young=np.fromiter(
                (e.promotion_histogram.young_count for e in entries),
                dtype=np.int64, count=n),
            cold_counts=np.stack(
                [e.cold_age_histogram.counts for e in entries]
            ).astype(np.int64),
            cold_young=np.fromiter(
                (e.cold_age_histogram.young_count for e in entries),
                dtype=np.int64, count=n),
        )

    def entries(self) -> List[TraceEntry]:
        """Materialize the rows as :class:`TraceEntry` objects, in order.

        The degraded path: the telemetry exporter spills a block this way
        when the sink rejects it, so the per-entry retry buffer replays
        exactly the rows the block carried.  Histogram rows are copied —
        the entries outlive the block.
        """
        out: List[TraceEntry] = []
        for i in range(self.n_rows):
            promo = AgeHistogram(self.bins)
            promo.counts = np.array(self.promotion_counts[i], dtype=np.int64)
            promo.young_count = int(self.promotion_young[i])
            cold = AgeHistogram(self.bins)
            cold.counts = np.array(self.cold_counts[i], dtype=np.int64)
            cold.young_count = int(self.cold_young[i])
            out.append(TraceEntry(
                job_id=self.job_table[int(self.job[i])],
                machine_id=self.machine_table[int(self.machine[i])],
                time=int(self.time[i]),
                working_set_pages=int(self.working_set_pages[i]),
                promotion_histogram=promo,
                cold_age_histogram=cold,
                resident_pages=int(self.resident_pages[i]),
                cpu_cores=float(self.cpu_cores[i]),
            ))
        return out

    @classmethod
    def concat(cls, blocks: Sequence["TelemetryBlock"]) -> "TelemetryBlock":
        """Concatenate blocks row-wise, merging the string tables.

        The parallel engine's barrier merge concatenates per-shard block
        deltas in deterministic shard order; string tables merge
        first-seen, and ordinal columns are remapped through a lookup
        vector (no per-row Python work).

        Raises:
            TraceError: on an empty sequence or mixed threshold grids.
        """
        if not blocks:
            raise TraceError("cannot concatenate zero TelemetryBlocks")
        if len(blocks) == 1:
            return blocks[0]
        bins = blocks[0].bins
        job_table: List[str] = []
        job_index: Dict[str, int] = {}
        machine_table: List[str] = []
        machine_index: Dict[str, int] = {}
        job_cols: List[np.ndarray] = []
        machine_cols: List[np.ndarray] = []
        for block in blocks:
            if block.bins.thresholds != bins.thresholds:
                raise TraceError(
                    "cannot concatenate TelemetryBlocks with different "
                    "threshold grids"
                )
            for table, merged, index, col, out in (
                (block.job_table, job_table, job_index, block.job, job_cols),
                (block.machine_table, machine_table, machine_index,
                 block.machine, machine_cols),
            ):
                lut = np.empty(len(table), dtype=np.int64)
                for i, name in enumerate(table):
                    ordinal = index.get(name)
                    if ordinal is None:
                        ordinal = len(merged)
                        index[name] = ordinal
                        merged.append(name)
                    lut[i] = ordinal
                out.append(lut[col])
        merged_columns = {
            name: np.concatenate([getattr(b, name) for b in blocks])
            for name in (
                "time", "working_set_pages", "resident_pages", "cpu_cores",
                "promotion_counts", "promotion_young", "cold_counts",
                "cold_young",
            )
        }
        return cls(
            bins=bins,
            job_table=job_table,
            machine_table=machine_table,
            job=np.concatenate(job_cols),
            machine=np.concatenate(machine_cols),
            **merged_columns,
        )

    def sorted_by_time_job(self) -> "TelemetryBlock":
        """Rows stably re-ordered by ``(time, job_id)``, tables canonical.

        The same canonical cross-job order the parallel engine's entry
        merge uses (ties keep their current relative order, so per-shard
        per-job sequences survive intact).  The string tables are rebuilt
        in first-appearance order of the sorted rows — so a consumer that
        interns ids row by row (the trace store) assigns exactly the
        ordinals it would have assigned to the equivalent entry stream,
        regardless of how this block was assembled.
        """
        if self.n_rows == 0:
            return self
        names = np.asarray(self.job_table, dtype=np.str_)[self.job]
        order = np.lexsort((names, self.time))
        job_col = self.job[order]
        machine_col = self.machine[order]
        tables = {}
        for key, col, table in (
            ("job", job_col, self.job_table),
            ("machine", machine_col, self.machine_table),
        ):
            uniq, first_at = np.unique(col, return_index=True)
            seen_order = np.argsort(first_at, kind="stable")
            lut = np.empty(len(table), dtype=np.int64)
            lut[uniq[seen_order]] = np.arange(seen_order.size)
            tables[key] = (
                [table[int(uniq[i])] for i in seen_order],
                lut[col],
            )
        return TelemetryBlock(
            bins=self.bins,
            job_table=tables["job"][0],
            machine_table=tables["machine"][0],
            job=tables["job"][1],
            machine=tables["machine"][1],
            time=self.time[order],
            working_set_pages=self.working_set_pages[order],
            resident_pages=self.resident_pages[order],
            cpu_cores=self.cpu_cores[order],
            promotion_counts=self.promotion_counts[order],
            promotion_young=self.promotion_young[order],
            cold_counts=self.cold_counts[order],
            cold_young=self.cold_young[order],
        )


@dataclass
class JobTrace:
    """The time-ordered trace of one job (one replay unit).

    Attributes:
        job_id: the job identifier.
        entries: entries sorted by time.
    """

    job_id: str
    entries: List[TraceEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def append(self, entry: TraceEntry) -> None:
        """Add an entry, enforcing job identity and time order."""
        if entry.job_id != self.job_id:
            raise TraceError(
                f"entry for job {entry.job_id} appended to trace of "
                f"{self.job_id}"
            )
        if self.entries and entry.time < self.entries[-1].time:
            raise TraceError(
                f"out-of-order trace entry at t={entry.time} after "
                f"t={self.entries[-1].time}"
            )
        self.entries.append(entry)

    @property
    def duration_seconds(self) -> int:
        """Span from first entry to one period past the last."""
        if not self.entries:
            return 0
        return (
            self.entries[-1].time - self.entries[0].time + TRACE_PERIOD_SECONDS
        )

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Serialize all entries."""
        return [entry.to_dict() for entry in self.entries]

    @classmethod
    def from_dicts(cls, job_id: str, dicts: Sequence[Dict[str, Any]]) -> "JobTrace":
        """Rebuild a trace from serialized entries."""
        trace = cls(job_id)
        for data in dicts:
            trace.append(TraceEntry.from_dict(data))
        return trace

    def compile(self) -> "CompiledTrace":
        """Compile this trace into dense arrays for vectorized replay."""
        return CompiledTrace.from_trace(self)


@dataclass(frozen=True)
class CompiledTrace:
    """One job's trace as dense tensors (the vectorized-replay unit).

    Replaying a trace needs, per interval, only ``colder_than(T)`` lookups
    on the two histograms plus the working-set size — so a trace compiles
    once into per-interval suffix-sum matrices (``suffix[t, i]`` is the
    count with age >= ``bins.thresholds[i]`` during interval ``t``; column
    ``len(bins)`` is an explicit zero so a threshold beyond the grid
    indexes to zero, mirroring :meth:`AgeHistogram.colder_than`), a
    working-set vector, and interval metadata.  All fields are plain
    numpy arrays, so a compiled trace pickles cheaply and ships to
    MapReduce workers once per model instead of once per configuration.

    Attributes:
        job_id: the compiled job.
        bins: the candidate-threshold grid (None only for empty traces).
        cold_suffix_sums: ``(intervals, len(bins) + 1)`` int64 matrix of
            cold-age-histogram suffix sums.
        promotion_suffix_sums: same shape, for the promotion histograms.
        working_set_pages: ``(intervals,)`` int64 vector.
        times: ``(intervals,)`` int64 vector of period start times.
        resident_pages: ``(intervals,)`` int64 vector.
        cpu_cores: ``(intervals,)`` float vector (overhead normalization).
        interval_seconds: aggregation period of each interval.
    """

    job_id: str
    bins: Optional[AgeBins]
    cold_suffix_sums: np.ndarray
    promotion_suffix_sums: np.ndarray
    working_set_pages: np.ndarray
    times: np.ndarray
    resident_pages: np.ndarray
    cpu_cores: np.ndarray
    interval_seconds: int = TRACE_PERIOD_SECONDS

    def __post_init__(self) -> None:
        if invariants_enabled():
            verify_column_contracts(self, COLUMN_CONTRACTS, where="construct")

    @property
    def intervals(self) -> int:
        return int(self.working_set_pages.size)

    @classmethod
    def from_trace(cls, trace: JobTrace) -> "CompiledTrace":
        """Compile a :class:`JobTrace` (one pass; O(intervals * bins)).

        Raises:
            TraceError: if entries disagree on the threshold grid — the
                scalar replay would reject such a trace mid-flight, the
                compiler rejects it up front.
        """
        if not trace.entries:
            empty = np.zeros((0, 1), dtype=np.int64)
            vec = np.zeros(0, dtype=np.int64)
            return cls(
                job_id=trace.job_id,
                bins=None,
                cold_suffix_sums=empty,
                promotion_suffix_sums=empty.copy(),
                working_set_pages=vec,
                times=vec.copy(),
                resident_pages=vec.copy(),
                cpu_cores=np.zeros(0, dtype=float),
            )
        bins = trace.entries[0].bins
        for entry in trace.entries:
            if entry.bins.thresholds != bins.thresholds:
                raise TraceError(
                    f"trace {trace.job_id} mixes threshold grids; "
                    f"cannot compile"
                )
        cold_counts = np.stack(
            [entry.cold_age_histogram.counts for entry in trace.entries]
        )
        promo_counts = np.stack(
            [entry.promotion_histogram.counts for entry in trace.entries]
        )
        return cls(
            job_id=trace.job_id,
            bins=bins,
            cold_suffix_sums=_suffix_sum_matrix(cold_counts),
            promotion_suffix_sums=_suffix_sum_matrix(promo_counts),
            working_set_pages=np.asarray(
                [entry.working_set_pages for entry in trace.entries],
                dtype=np.int64,
            ),
            times=np.asarray(
                [entry.time for entry in trace.entries], dtype=np.int64
            ),
            resident_pages=np.asarray(
                [entry.resident_pages for entry in trace.entries],
                dtype=np.int64,
            ),
            cpu_cores=np.asarray(
                [entry.cpu_cores for entry in trace.entries], dtype=float
            ),
        )

    @classmethod
    def from_columns(
        cls,
        job_id: str,
        bins: Optional[AgeBins],
        cold_counts: np.ndarray,
        promotion_counts: np.ndarray,
        working_set_pages: np.ndarray,
        times: np.ndarray,
        resident_pages: np.ndarray,
        cpu_cores: np.ndarray,
        interval_seconds: int = TRACE_PERIOD_SECONDS,
    ) -> "CompiledTrace":
        """Compile straight from columnar arrays (no ``TraceEntry`` objects).

        The on-disk trace store (:mod:`repro.tracestore`) holds exactly
        these columns per segment; this constructor builds the suffix-sum
        tensors from them directly, bit-identical to routing the same
        rows through :meth:`from_trace` (which stays as the oracle — the
        equivalence is asserted in tier-1 tests).

        Args:
            job_id: the compiled job.
            bins: the threshold grid shared by every row (None only when
                ``times`` is empty).
            cold_counts: ``(intervals, len(bins))`` cold-age histogram
                counts, one row per interval, time-ascending.
            promotion_counts: same shape, promotion histogram counts.
            working_set_pages: ``(intervals,)`` working-set sizes.
            times: ``(intervals,)`` period start times, ascending.
            resident_pages: ``(intervals,)`` resident page counts.
            cpu_cores: ``(intervals,)`` CPU usage in cores.
            interval_seconds: aggregation period of each row (larger
                than the raw 5-minute period for downsampled stores).

        Raises:
            TraceError: on shape mismatches between the columns, or a
                missing grid for a non-empty trace.
        """
        times = np.asarray(times, dtype=np.int64)
        if times.size == 0:
            empty = np.zeros((0, 1), dtype=np.int64)
            vec = np.zeros(0, dtype=np.int64)
            return cls(
                job_id=job_id,
                bins=None,
                cold_suffix_sums=empty,
                promotion_suffix_sums=empty.copy(),
                working_set_pages=vec,
                times=vec.copy(),
                resident_pages=vec.copy(),
                cpu_cores=np.zeros(0, dtype=float),
                interval_seconds=interval_seconds,
            )
        if bins is None:
            raise TraceError(
                f"trace {job_id}: non-empty columns need a threshold grid"
            )
        cold_counts = np.asarray(cold_counts, dtype=np.int64)
        promotion_counts = np.asarray(promotion_counts, dtype=np.int64)
        expected = (times.size, len(bins))
        for name, matrix in (
            ("cold_counts", cold_counts),
            ("promotion_counts", promotion_counts),
        ):
            if matrix.shape != expected:
                raise TraceError(
                    f"trace {job_id}: {name} shape {matrix.shape} != "
                    f"{expected}"
                )
        for name, vector in (
            ("working_set_pages", working_set_pages),
            ("resident_pages", resident_pages),
            ("cpu_cores", cpu_cores),
        ):
            if np.asarray(vector).shape != times.shape:
                raise TraceError(
                    f"trace {job_id}: {name} has {np.asarray(vector).size} "
                    f"rows, times has {times.size}"
                )
        return cls(
            job_id=job_id,
            bins=bins,
            cold_suffix_sums=_suffix_sum_matrix(cold_counts),
            promotion_suffix_sums=_suffix_sum_matrix(promotion_counts),
            working_set_pages=np.asarray(working_set_pages, dtype=np.int64),
            times=times,
            resident_pages=np.asarray(resident_pages, dtype=np.int64),
            cpu_cores=np.asarray(cpu_cores, dtype=float),
            interval_seconds=interval_seconds,
        )

    def colder_than(self, thresholds: np.ndarray, *, cold: bool) -> np.ndarray:
        """Per-interval ``colder_than(thresholds[t])`` as one indexed lookup.

        Args:
            thresholds: ``(intervals,)`` per-interval thresholds; infinite
                entries (DISABLED) yield 0.
            cold: read the cold-age matrix (True) or the promotion matrix.
        """
        assert self.bins is not None
        matrix = self.cold_suffix_sums if cold else self.promotion_suffix_sums
        grid = np.asarray(self.bins.thresholds)
        finite = np.isfinite(thresholds)
        # DISABLED rows index the explicit zero column.
        column = np.full(thresholds.shape, len(grid), dtype=np.int64)
        column[finite] = np.searchsorted(grid, thresholds[finite], side="left")
        return matrix[np.arange(matrix.shape[0]), column]


def _suffix_sum_matrix(counts: np.ndarray) -> np.ndarray:
    """Row-wise suffix sums with a trailing zero column.

    ``result[t, i] == counts[t, i:].sum()`` — the matrix form of
    :meth:`AgeHistogram.suffix_sums` — and ``result[t, -1] == 0`` so that
    an index one past the grid (a threshold larger than every candidate)
    reads zero.
    """
    suffix = np.cumsum(counts[:, ::-1], axis=1, dtype=np.int64)[:, ::-1]
    zero = np.zeros((counts.shape[0], 1), dtype=np.int64)
    return np.concatenate([suffix, zero], axis=1)
