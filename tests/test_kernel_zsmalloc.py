"""zsmalloc arena invariants, including property-based accounting checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.common.units import PAGE_SIZE
from repro.kernel.zsmalloc import (
    OBJECT_METADATA_BYTES,
    SIZE_CLASS_STEP,
    ZSPAGE_BYTES,
    ArenaStats,
    ZsmallocArena,
)


class TestSizeClasses:
    def test_class_rounding(self):
        arena = ZsmallocArena()
        # 100B payload + 16B metadata = 116 -> class 128.
        assert arena.class_bytes_for(100) == 128
        # Exactly on a boundary stays there.
        assert arena.class_bytes_for(SIZE_CLASS_STEP - OBJECT_METADATA_BYTES) == 32

    def test_zero_payload_rejected(self):
        with pytest.raises(Exception):
            ZsmallocArena().class_bytes_for(0)


class TestStoreRelease:
    def test_store_accounts_payload(self):
        arena = ZsmallocArena()
        arena.store(np.array([1000, 1000, 2000]))
        assert arena.live_objects == 3
        assert arena.payload_bytes == 4000
        assert arena.footprint_bytes >= arena.payload_bytes

    def test_release_decrements(self):
        arena = ZsmallocArena()
        arena.store(np.array([1000, 2000]))
        arena.release(np.array([1000]))
        assert arena.live_objects == 1
        assert arena.payload_bytes == 2000

    def test_release_unknown_class_raises(self):
        arena = ZsmallocArena()
        arena.store(np.array([1000]))
        with pytest.raises(SimulationError):
            arena.release(np.array([3000]))

    def test_release_more_than_live_raises(self):
        arena = ZsmallocArena()
        arena.store(np.array([1000]))
        with pytest.raises(SimulationError):
            arena.release(np.array([1000, 1000]))

    def test_holes_reused_by_store(self):
        arena = ZsmallocArena()
        arena.store(np.array([1000] * 10))
        footprint = arena.footprint_bytes
        arena.release(np.array([1000] * 5))
        arena.store(np.array([1000] * 5))
        # Freed slots absorbed the new objects: footprint unchanged.
        assert arena.footprint_bytes == footprint
        assert arena.stats().external_fragmentation_bytes == 0


class TestCompaction:
    def test_compact_releases_hole_bytes(self):
        arena = ZsmallocArena()
        payloads = np.full(200, 1000)
        arena.store(payloads)
        arena.release(payloads[:190])
        stats_before = arena.stats()
        assert stats_before.external_fragmentation_bytes > 0
        released = arena.compact()
        assert released >= 0
        assert arena.stats().external_fragmentation_bytes == 0
        assert arena.compactions == 1

    def test_compact_preserves_live_objects(self):
        arena = ZsmallocArena()
        arena.store(np.array([500] * 50))
        arena.release(np.array([500] * 20))
        arena.compact()
        assert arena.live_objects == 30
        assert arena.payload_bytes == 30 * 500


class TestStats:
    def test_internal_fragmentation(self):
        arena = ZsmallocArena()
        arena.store(np.array([100]))  # class 128: 28B of rounding+metadata
        stats = arena.stats()
        assert stats.internal_fragmentation_bytes == 28
        assert stats.live_objects == 1

    def test_empty_arena(self):
        stats = ZsmallocArena().stats()
        assert stats == ArenaStats(0, 0, 0, 0, 0)


@settings(max_examples=40, deadline=None)
@given(
    payloads=st.lists(
        st.integers(min_value=1, max_value=PAGE_SIZE), min_size=1, max_size=100
    ),
    release_count=st.integers(min_value=0, max_value=100),
)
def test_arena_accounting_invariants(payloads, release_count):
    """Properties that must hold for any store/release sequence:

    * footprint >= payload bytes (compression can't create space),
    * live objects and payload bytes track exactly,
    * full release then compact returns the arena to empty.
    """
    arena = ZsmallocArena()
    payloads = np.array(payloads)
    arena.store(payloads)
    assert arena.live_objects == payloads.size
    assert arena.payload_bytes == payloads.sum()
    assert arena.footprint_bytes >= arena.payload_bytes

    release_count = min(release_count, payloads.size)
    arena.release(payloads[:release_count])
    assert arena.live_objects == payloads.size - release_count
    assert arena.footprint_bytes >= arena.payload_bytes

    arena.release(payloads[release_count:])
    arena.compact()
    assert arena.footprint_bytes == 0
    assert arena.payload_bytes == 0


@settings(max_examples=40, deadline=None)
@given(
    payloads=st.lists(
        st.integers(min_value=1, max_value=PAGE_SIZE), min_size=1, max_size=60
    )
)
def test_compaction_never_loses_data(payloads):
    """Property: compaction changes footprint, never contents."""
    arena = ZsmallocArena()
    payloads = np.array(payloads)
    arena.store(payloads)
    arena.release(payloads[::2])
    live_before = arena.live_objects
    payload_before = arena.payload_bytes
    arena.compact()
    assert arena.live_objects == live_before
    assert arena.payload_bytes == payload_before
