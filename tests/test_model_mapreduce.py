"""The MapReduce-style pipeline engine."""

import pytest

from repro.common.errors import ConfigurationError
from repro.model.mapreduce import MapReduce, mapreduce


def square(x):
    return x * x


def total(values):
    return sum(values)


class TestInProcess:
    def test_map_then_reduce(self):
        assert mapreduce([1, 2, 3, 4], square, total) == 30

    def test_empty_input(self):
        assert mapreduce([], square, total) == 0

    def test_order_preserved(self):
        result = mapreduce([3, 1, 2], lambda x: x, lambda xs: xs)
        assert result == [3, 1, 2]

    def test_single_input(self):
        assert mapreduce([5], square, total) == 25


class TestParallel:
    def test_pool_matches_sequential(self):
        inputs = list(range(50))
        sequential = MapReduce(square, total, workers=1).run(inputs)
        parallel = MapReduce(square, total, workers=2).run(inputs)
        assert sequential == parallel

    def test_pool_preserves_order(self):
        inputs = list(range(20))
        result = MapReduce(square, lambda xs: xs, workers=2).run(inputs)
        assert result == [x * x for x in inputs]


class TestValidation:
    def test_bad_workers(self):
        with pytest.raises(ConfigurationError):
            MapReduce(square, total, workers=0)

    def test_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            MapReduce(square, total, chunk_size=0)
