"""FORK001 positive fixture: unpicklable state on fork-boundary classes."""

import threading


class Shard:
    def __init__(self, path):
        self.transform = lambda x: x + 1  # finding: lambda
        self.log = open(path)  # finding: open file handle
        self.guard = threading.Lock()  # finding: lock
        self.stream = (i for i in range(10))  # finding: live generator
