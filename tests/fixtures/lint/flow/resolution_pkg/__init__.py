"""Call-graph resolution fixture (no sinks — graph-shape tests only).

Re-exports ``helper`` so ``facade.through_reexport`` exercises the
re-export chase in :meth:`CallGraph.resolve`.
"""

from resolution_pkg.impl import helper  # noqa: F401
