"""Figure 7: normalized promotion-rate distribution before/after autotuning.

Paper: the per-job promotion rate (normalized to working-set size) stays
below 0.2 %/min at the 98th percentile both before and after the
autotuner; the autotuner slightly raises the p25-p90 body of the
distribution (it pushes harder where the SLO has slack) without violating
the tail.  We regenerate both CDFs and verify tail safety + body shift.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import per_job_promotion_rates, render_table


def test_fig7_promotion_rate_before_after(benchmark, autotune_run,
                                          save_result):
    before_rates = benchmark(
        per_job_promotion_rates, autotune_run["before_sli"]
    )
    # The tuned fleet's steady-state window vs the control fleet's over
    # the same window — same workload, different parameters.
    after_rates = per_job_promotion_rates(autotune_run["after_sli"])
    control_rates = per_job_promotion_rates(autotune_run["control_sli"])

    assert before_rates and after_rates

    quantiles = (25, 50, 75, 90, 98)
    before_q = np.percentile(before_rates, quantiles)
    after_q = np.percentile(after_rates, quantiles)

    # Tail safety: per-job p98 stays in the SLO's neighbourhood both
    # before and after (paper: < 0.2%/min; we allow calibration slack).
    assert before_q[-1] < 1.0
    assert after_q[-1] < 1.0

    # The autotuner must not blow up the tail relative to the control arm.
    if control_rates:
        control_p98 = float(np.percentile(control_rates, 98))
        assert after_q[-1] < max(4.0 * control_p98, 1.0)

    rows = [
        (f"p{q}", f"{b:.4f}", f"{a:.4f}")
        for q, b, a in zip(quantiles, before_q, after_q)
    ]
    rows.append(
        (
            "minutes over SLO",
            f"{100 * autotune_run['before_violation_fraction']:.1f}%",
            f"{100 * autotune_run['after_violation_fraction']:.1f}%",
        )
    )
    save_result(
        "fig7_promotion_rate_cdf",
        render_table(
            ["quantile", "hand-tuned (%/min)", "autotuned (%/min)"],
            rows,
            title="Fig. 7 — per-job normalized promotion rate "
            "(paper: p98 < 0.2%/min in both arms)",
        ),
    )
