"""The fast far memory model: offline what-if replay (paper §5.3).

Given recorded per-job traces (working set size, promotion histogram, and
cold-age histogram per 5-minute period) and a candidate parameter
configuration ``(K, S)``, the model re-runs the §4.3 control algorithm over
each trace and estimates, interval by interval, what the fleet would have
done under that configuration:

* the **size of cold memory captured** — pages whose age exceeded the
  replayed threshold (the memory that would have been in far memory), and
* the **promotion rate** — accesses that would have hit far memory,
  normalized by the working set.

The report's two headline numbers mirror the autotuner's problem
formulation: total cold memory captured (the objective) and the fleet-wide
98th-percentile normalized promotion rate (the constraint).

Replay of different jobs is independent, so the model runs as a MapReduce
pipeline (:mod:`repro.model.mapreduce`) and scales linearly with workers.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.common.units import MINUTE
from repro.core.slo import PromotionRateSlo, normalized_promotion_rate
from repro.core.threshold_policy import (
    ColdAgeThresholdPolicy,
    ThresholdPolicyConfig,
)
from repro.model.mapreduce import MapReduce
from repro.model.trace import TRACE_PERIOD_SECONDS, JobTrace

__all__ = ["JobReplayResult", "FleetReplayReport", "FarMemoryModel"]


@dataclass
class JobReplayResult:
    """Replay outcome for one job under one configuration.

    Attributes:
        job_id: the replayed job.
        cold_pages_captured: per-interval pages the replayed threshold
            would have put in far memory.
        normalized_rates: per-interval promotion rate, % of WSS per minute.
        thresholds: per-interval threshold the policy chose (inf=disabled).
        intervals: number of trace intervals replayed.
    """

    job_id: str
    cold_pages_captured: List[float] = field(default_factory=list)
    normalized_rates: List[float] = field(default_factory=list)
    thresholds: List[float] = field(default_factory=list)

    @property
    def intervals(self) -> int:
        return len(self.thresholds)

    @property
    def mean_cold_pages(self) -> float:
        """Average far-memory size this job would have sustained."""
        if not self.cold_pages_captured:
            return 0.0
        return float(np.mean(self.cold_pages_captured))


@dataclass
class FleetReplayReport:
    """Fleet aggregation of per-job replay results.

    Attributes:
        config: the configuration replayed.
        total_cold_pages: mean-over-time, summed-over-jobs far memory size
            (the autotuner's objective).
        promotion_rate_p98: fleet-wide 98th percentile of per-job,
            per-interval normalized promotion rates (the constraint).
        slo_target: the SLO the constraint is checked against.
        job_results: per-job detail.
    """

    config: ThresholdPolicyConfig
    total_cold_pages: float
    promotion_rate_p98: float
    slo_target: float
    job_results: List[JobReplayResult]

    @property
    def meets_slo(self) -> bool:
        """True when the replayed p98 promotion rate is within the SLO."""
        return self.promotion_rate_p98 <= self.slo_target


def _replay_one_job(
    trace: JobTrace,
    config: ThresholdPolicyConfig,
    slo: PromotionRateSlo,
) -> JobReplayResult:
    """Replay the control algorithm over one job's trace.

    For each interval the threshold chosen from history *before* observing
    the interval governs it — exactly the online ordering, where the agent
    publishes a threshold and the next minute runs under it.
    """
    result = JobReplayResult(job_id=trace.job_id)
    if not trace.entries:
        return result
    bins = trace.entries[0].bins
    policy = ColdAgeThresholdPolicy(config, bins, slo)
    for entry in trace.entries:
        threshold = policy.threshold()
        result.thresholds.append(threshold)

        if np.isfinite(threshold):
            captured = entry.cold_age_histogram.colder_than(threshold)
            promoted = entry.promotion_histogram.colder_than(threshold)
        else:
            captured = 0
            promoted = 0
        per_min = promoted * (MINUTE / TRACE_PERIOD_SECONDS)
        result.cold_pages_captured.append(float(captured))
        result.normalized_rates.append(
            normalized_promotion_rate(per_min, entry.working_set_pages)
        )
        policy.observe(
            entry.promotion_histogram,
            entry.working_set_pages,
            TRACE_PERIOD_SECONDS,
        )
    return result


class FarMemoryModel:
    """Replays fleet traces under candidate configurations.

    Args:
        traces: per-job traces (e.g. ``trace_db.traces()``).
        slo: the promotion-rate SLO used both inside the policy and as the
            fleet constraint.
        workers: MapReduce worker processes (1 = in-process).
    """

    def __init__(
        self,
        traces: Sequence[JobTrace],
        slo: Optional[PromotionRateSlo] = None,
        workers: int = 1,
    ):
        self.traces = list(traces)
        self.slo = slo if slo is not None else PromotionRateSlo()
        self.workers = workers

    def evaluate(self, config: ThresholdPolicyConfig) -> FleetReplayReport:
        """What-if analysis of one configuration over the whole fleet."""
        pipeline = MapReduce(
            mapper=functools.partial(
                _replay_one_job, config=config, slo=self.slo
            ),
            reducer=functools.partial(
                _reduce_fleet, config=config, slo=self.slo
            ),
            workers=self.workers,
        )
        return pipeline.run(self.traces)

    def evaluate_many(
        self, configs: Sequence[ThresholdPolicyConfig]
    ) -> List[FleetReplayReport]:
        """Evaluate several configurations (independent, order-preserving)."""
        return [self.evaluate(config) for config in configs]


def _reduce_fleet(
    results: List[JobReplayResult],
    config: ThresholdPolicyConfig,
    slo: PromotionRateSlo,
) -> FleetReplayReport:
    """Combine per-job replays into the fleet report."""
    total_cold = sum(r.mean_cold_pages for r in results)
    rates = np.concatenate(
        [np.asarray(r.normalized_rates) for r in results if r.normalized_rates]
        or [np.zeros(0)]
    )
    finite = rates[np.isfinite(rates)]
    p98 = float(np.percentile(finite, 98.0)) if finite.size else 0.0
    return FleetReplayReport(
        config=config,
        total_cold_pages=total_cold,
        promotion_rate_p98=p98,
        slo_target=slo.target_pct_per_min,
        job_results=results,
    )
