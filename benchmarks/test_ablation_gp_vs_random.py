"""Ablation (§5.3): GP-Bandit vs random search at an equal trial budget.

The paper chose GP-Bandit because it "learns the shape of the search space
and guides parameter search towards the optimal point with the minimal
number of trials".  We give both strategies the same number of fast-model
evaluations over the same fleet traces and compare the best feasible
configuration each finds.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.model import FarMemoryModel
from repro.autotuner import AutotuningPipeline

ITERATIONS = 5
BATCH = 4


def test_ablation_gp_vs_random(benchmark, paper_fleet, save_result):
    traces = paper_fleet.trace_db.traces()
    model = FarMemoryModel(traces)

    gp_result = benchmark(
        lambda: AutotuningPipeline(model, batch_size=BATCH, seed=3).run(
            iterations=ITERATIONS
        )
    )
    random_result = AutotuningPipeline(model, seed=3).run_random_baseline(
        n_trials=ITERATIONS * BATCH, seed=4
    )

    assert gp_result.best is not None, "GP found no feasible configuration"
    gp_best = gp_result.best
    random_best = random_result.best

    # Both must respect the constraint; GP must be at least competitive
    # (the paper's claim is fewer trials to the optimum, so at an equal
    # budget GP should not lose).
    assert gp_best.report.meets_slo
    if random_best is not None:
        assert gp_best.objective >= 0.9 * random_best.objective

    rows = [
        (
            "GP-Bandit",
            f"K={gp_best.config.percentile_k:.1f}, "
            f"S={gp_best.config.warmup_seconds}",
            f"{gp_best.objective:,.0f}",
            f"{gp_best.report.promotion_rate_p98:.3f}",
        ),
        (
            "random search",
            "-"
            if random_best is None
            else f"K={random_best.config.percentile_k:.1f}, "
            f"S={random_best.config.warmup_seconds}",
            "-" if random_best is None else f"{random_best.objective:,.0f}",
            "-"
            if random_best is None
            else f"{random_best.report.promotion_rate_p98:.3f}",
        ),
    ]
    save_result(
        "ablation_gp_vs_random",
        render_table(
            ["strategy", "best config", "cold pages captured", "p98 %/min"],
            rows,
            title=f"§5.3 ablation — GP-Bandit vs random "
            f"({ITERATIONS * BATCH} trials each)",
        ),
    )
