"""DET004 negative fixture: row/memcg-axis loops and whole-array sweeps."""

import numpy as np


class Pool:
    def pooled_scan(self, memcgs, u):
        res = self.resident[:u]
        acc_idx = np.flatnonzero(res & self.accessed[:u])
        rows = self.owner_row[:u][acc_idx].astype(np.int64)
        per_row = np.bincount(rows, minlength=self._row_cap)
        for r in np.flatnonzero(per_row):  # row axis, not page axis
            self.row_memcg[r].promo_hist_events += int(per_row[r])
        memcg_list = list(memcgs)
        for memcg in memcg_list:  # memcg axis, not page axis
            memcg.invalidate_reclaim_cache()
        for bits in (self.accessed[:u], self.dirtied[:u]):  # two arrays
            bits[acc_idx] = False
        self.age_scans[:u][res] += 1  # whole-array sweep

    def setup(self):
        for name, dtype, fill in self._fields:  # schema walk, not pages
            setattr(self, name, np.full(0, fill, dtype=dtype))
