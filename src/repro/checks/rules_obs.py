"""OBS001: metric and event names must come from the central registries.

Dashboards, the Prometheus-style exposition format, and the analysis
notebooks all key on metric/event names as strings.  A typo'd literal
(``"repro_pages_scaned_total"``) creates a *new* series that nothing
reads, while the real one silently flatlines.  The fix is a single
source of truth: :class:`repro.obs.metrics.MetricName` and
:class:`repro.common.events.EventKind`.  This rule flags any string
literal that *looks like* a metric name (``repro_*`` passed to
``.counter/.gauge/.histogram``) or an event kind (dotted lowercase
passed to ``.record``) but is absent from the corresponding registry.

Literals that exactly equal a registered name are accepted — the
contract is "names cannot drift", not "never write a string" — but
using the constants keeps call sites greppable.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from repro.checks.core import Rule, RuleVisitor, register
from repro.common.events import KNOWN_EVENT_KINDS
from repro.obs.metrics import KNOWN_METRIC_NAMES

__all__ = ["MetricNameRule"]

#: Registration methods whose first argument is a metric name.
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})

#: Event kinds are dotted lowercase identifiers ("scheduler.evict").
_EVENT_KIND_RE = re.compile(r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9_.]*$")


def _literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _MetricNameVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in _METRIC_METHODS:
                self._check_metric(node)
            elif method == "record":
                self._check_event(node)
        self.generic_visit(node)

    def _check_metric(self, node: ast.Call) -> None:
        name_node: Optional[ast.AST] = node.args[0] if node.args else None
        for kw in node.keywords:
            if kw.arg == "name":
                name_node = kw.value
        if name_node is None:
            return
        name = _literal_str(name_node)
        if name is None or not name.startswith("repro_"):
            return
        if name not in KNOWN_METRIC_NAMES:
            self.report(
                name_node,
                f"metric name {name!r} is not in "
                f"repro.obs.metrics.MetricName; add the constant there "
                f"and reference it (prevents dashboard/name drift)",
            )

    def _check_event(self, node: ast.Call) -> None:
        # EventLog.record(time, kind, **payload): kind is 2nd positional.
        kind_node: Optional[ast.AST] = (
            node.args[1] if len(node.args) >= 2 else None
        )
        for kw in node.keywords:
            if kw.arg == "kind":
                kind_node = kw.value
        if kind_node is None:
            return
        kind = _literal_str(kind_node)
        if kind is None or not _EVENT_KIND_RE.match(kind):
            return
        if kind not in KNOWN_EVENT_KINDS:
            self.report(
                kind_node,
                f"event kind {kind!r} is not in "
                f"repro.common.events.EventKind; add the constant there "
                f"and reference it (prevents analysis/name drift)",
            )


@register
class MetricNameRule(Rule):
    """OBS001: metric/event name literals must match the registry."""

    id = "OBS001"
    title = "metric or event name absent from the central registry"
    #: The registries themselves define the names.
    allowlist = ("repro/obs/metrics.py", "repro/common/events.py")
    visitor_class = _MetricNameVisitor
