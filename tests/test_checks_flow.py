"""Tests for repro.checks.flow — the interprocedural analysis layer.

Fixture packages live under ``tests/fixtures/lint/flow/``:

* ``seeded_pkg`` — every flow rule fires at a planned location;
* ``clean_pkg`` — the sanctioned twin of each hazard, zero findings;
* ``resolution_pkg`` — call-graph resolution shapes (methods through
  inheritance, re-exports, decorators, unknown callees, cycles).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.checks import (
    RULES,
    Finding,
    InvariantViolation,
    filter_baseline,
    load_baseline,
    render_sarif,
    run_flow,
    run_lint,
    save_baseline,
    verify_column_contracts,
)
from repro.checks.core import LintError
from repro.checks.flow.cache import CACHE_FILENAME, load_summaries
from repro.checks.flow.callgraph import (
    CallGraph,
    extract_module,
    find_package_root,
)
from repro.checks.flow.taint import (
    _propagate,
    find_worker_entry_points,
    run_fork_closure,
)
from repro.cli import main as cli_main

FLOW_FIXTURES = Path(__file__).parent / "fixtures" / "lint" / "flow"
SEEDED = FLOW_FIXTURES / "seeded_pkg"
CLEAN = FLOW_FIXTURES / "clean_pkg"
RESOLUTION = FLOW_FIXTURES / "resolution_pkg"
SRC_TREE = Path(__file__).parent.parent / "src" / "repro"


def graph_for(package_root: Path) -> CallGraph:
    summaries, _stats = load_summaries(package_root, cache_dir=None)
    return CallGraph(summaries)


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# Call-graph construction and resolution
# ----------------------------------------------------------------------


class TestCallGraph:
    def test_package_root_discovery(self):
        assert find_package_root(SEEDED / "kernel" / "sweep.py") == SEEDED
        assert find_package_root(SEEDED) == SEEDED

    def test_non_package_rejected(self, tmp_path):
        loose = tmp_path / "loose.py"
        loose.write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(LintError, match="not inside a python package"):
            find_package_root(loose)

    def test_method_resolution_through_inheritance(self):
        graph = graph_for(RESOLUTION)
        edges = {c for c, _ in graph.edges["resolution_pkg.impl.Child.run"]}
        # self.shared() resolves to the *base* class method, self.own()
        # to the subclass's own.
        assert "resolution_pkg.impl.Base.shared" in edges
        assert "resolution_pkg.impl.Child.own" in edges

    def test_self_call_on_same_class(self):
        graph = graph_for(RESOLUTION)
        edges = {c for c, _ in graph.edges["resolution_pkg.impl.Base.template"]}
        assert edges == {"resolution_pkg.impl.Base.shared"}

    def test_locally_typed_receiver(self):
        graph = graph_for(RESOLUTION)
        edges = {c for c, _ in graph.edges["resolution_pkg.impl.use_local_type"]}
        assert "resolution_pkg.impl.Child.run" in edges

    def test_reexport_resolution(self):
        graph = graph_for(RESOLUTION)
        edges = {
            c for c, _ in graph.edges["resolution_pkg.facade.through_reexport"]
        }
        assert edges == {"resolution_pkg.impl.helper"}

    def test_decorated_function_is_a_plain_node(self):
        graph = graph_for(RESOLUTION)
        clock = graph.functions["resolution_pkg.impl.decorated_clock"]
        assert [s.kind for s in clock.sources] == ["wall-clock"]
        edges = {
            c for c, _ in graph.edges["resolution_pkg.impl.calls_decorated"]
        }
        assert edges == {"resolution_pkg.impl.decorated_clock"}

    def test_unknown_callee_recorded_not_resolved(self):
        graph = graph_for(RESOLUTION)
        unresolved = {
            t for t, _ in graph.unresolved["resolution_pkg.impl.calls_unknown"]
        }
        assert "mystery.fetch" in unresolved
        assert graph.edges["resolution_pkg.impl.calls_unknown"] == []

    def test_summary_round_trips_through_json(self):
        # The cache stores summaries as JSON; to_dict/from_dict must be
        # lossless for linking to behave identically on the warm path.
        summary = extract_module(SEEDED, SEEDED / "kernel" / "sweep.py")
        clone = type(summary).from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert clone.to_dict() == summary.to_dict()


# ----------------------------------------------------------------------
# FLOW001 taint
# ----------------------------------------------------------------------


class TestTaint:
    def test_seeded_chain_reported_in_full(self):
        findings = by_rule(run_flow([SEEDED]).findings, "FLOW001")
        assert len(findings) == 1
        f = findings[0]
        assert f.path == "seeded_pkg/kernel/sweep.py"
        assert "`seeded_pkg.kernel.sweep.tick`" in f.message
        assert "time.time" in f.message
        # The chain walks sink -> intermediate -> source, every hop named.
        assert len(f.chain) == 3
        assert "sweep.tick" in f.chain[0]
        assert "helpers.jitter" in f.chain[1]
        assert "helpers.wall_now" in f.chain[2]
        assert "time.time" in f.chain[2]

    def test_sink_line_suppression_swallows_the_chain(self):
        findings = run_flow([SEEDED]).findings
        assert not any("tick_suppressed" in f.message for f in findings)

    def test_clean_package_is_silent(self):
        assert run_flow([CLEAN]).findings == []

    def test_unknown_callee_never_taints(self):
        graph = graph_for(RESOLUTION)
        taints = _propagate(graph)
        assert "resolution_pkg.impl.calls_unknown" not in taints

    def test_cycle_fixpoint_terminates_and_taints_both(self):
        graph = graph_for(RESOLUTION)
        taints = _propagate(graph)
        assert "resolution_pkg.impl.cycle_a" in taints
        assert "resolution_pkg.impl.cycle_b" in taints

    def test_taint_flows_through_reexport_chain(self):
        graph = graph_for(RESOLUTION)
        taints = _propagate(graph)
        # decorated_clock's wall-clock taints its caller.
        assert "resolution_pkg.impl.calls_decorated" in taints

    def test_chain_render_is_indented(self):
        f = by_rule(run_flow([SEEDED]).findings, "FLOW001")[0]
        lines = f.render().splitlines()
        assert lines[0].startswith("seeded_pkg/kernel/sweep.py:")
        assert all(line.startswith("    ") for line in lines[1:])


# ----------------------------------------------------------------------
# FLOW002 fork closure
# ----------------------------------------------------------------------


class TestForkClosure:
    def test_entry_point_convention(self):
        graph = graph_for(SEEDED)
        assert find_worker_entry_points(graph) == [
            "seeded_pkg.engine.par.worker_main"
        ]

    def test_reachable_hazard_reported_with_chain(self):
        findings = by_rule(run_flow([SEEDED]).findings, "FLOW002")
        assert len(findings) == 1
        f = findings[0]
        assert "seeded_pkg.engine.par.Job" in f.message
        assert "open file handle" in f.message
        # Chain rebuilds constructor -> builder -> entry point.
        assert any("build_job" in hop for hop in f.chain)
        assert any("fork worker entry point" in hop for hop in f.chain)

    def test_pickle_hooks_and_unreached_classes_stay_quiet(self):
        messages = " ".join(
            f.message for f in by_rule(run_flow([SEEDED]).findings, "FLOW002")
        )
        assert "SafeJob" not in messages
        assert "UnreachedJob" not in messages

    def test_no_entry_points_no_findings(self):
        graph = graph_for(RESOLUTION)
        assert run_fork_closure(graph) == []


# ----------------------------------------------------------------------
# CON001 / CON002 column contracts
# ----------------------------------------------------------------------


class TestColumnContracts:
    def test_static_findings_on_seeded(self):
        findings = run_flow([SEEDED]).findings
        con1 = by_rule(findings, "CON001")
        con2 = by_rule(findings, "CON002")
        assert len(con1) == 2
        messages = " ".join(f.message for f in con1)
        assert "Pool.ages" in messages and "float64" in messages
        assert "Pool.counts" in messages and "ndim=2" in messages
        assert len(con2) == 1
        assert "Pool.extra" in con2[0].message

    def test_private_columns_exempt_from_con002(self):
        findings = run_flow([CLEAN]).findings
        assert by_rule(findings, "CON002") == []

    def test_runtime_verification_accepts_shipped_tables(self):
        from repro.kernel.columnar import COLUMN_CONTRACTS, MachinePagePool
        from repro.core.histograms import AgeBins

        pool = MachinePagePool(AgeBins((120, 300, 600)), scan_period=120)
        verify_column_contracts(pool, COLUMN_CONTRACTS)  # must not raise

    def test_runtime_verification_catches_dtype_drift(self):
        from repro.kernel.columnar import COLUMN_CONTRACTS, MachinePagePool
        from repro.core.histograms import AgeBins

        pool = MachinePagePool(AgeBins((120, 300, 600)), scan_period=120)
        pool.age_scans = pool.age_scans.astype(np.int64)
        with pytest.raises(InvariantViolation, match="age_scans"):
            verify_column_contracts(pool, COLUMN_CONTRACTS)

    def test_scan_all_hook_fires_on_drift(self, monkeypatch):
        # Through the actual hook, not a direct call — even an empty
        # pool (the used == 0 early return) must be verified.
        from repro.kernel.columnar import MachinePagePool
        from repro.core.histograms import AgeBins

        monkeypatch.setenv("REPRO_CHECKS", "1")
        pool = MachinePagePool(AgeBins((120, 300, 600)), scan_period=120)
        pool.age_scans = pool.age_scans.astype(np.int64)
        with pytest.raises(InvariantViolation, match="age_scans"):
            pool.scan_all([])

    def test_compiled_trace_construction_is_verified(self, monkeypatch):
        from repro.model.trace import CompiledTrace

        monkeypatch.setenv("REPRO_CHECKS", "1")
        with pytest.raises(InvariantViolation, match="cold_suffix_sums"):
            CompiledTrace(
                job_id="j",
                bins=None,
                cold_suffix_sums=np.zeros((0, 1), dtype=np.int32),
                promotion_suffix_sums=np.zeros((0, 1), dtype=np.int64),
                working_set_pages=np.zeros(0, dtype=np.int64),
                times=np.zeros(0, dtype=np.int64),
                resident_pages=np.zeros(0, dtype=np.int64),
                cpu_cores=np.zeros(0, dtype=np.float64),
            )

    def test_runtime_verification_reports_missing_columns(self):
        class Sparse:
            pass

        with pytest.raises(InvariantViolation, match="missing"):
            verify_column_contracts(
                Sparse(), {"Sparse.gone": {"dtype": "int64", "ndim": 1}}
            )


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------


class TestCache:
    def test_cold_then_warm(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _s, cold = load_summaries(SEEDED, cache_dir=cache_dir)
        assert cold.extracted == cold.files > 0
        assert cold.wrote and (cache_dir / CACHE_FILENAME).exists()
        _s, warm = load_summaries(SEEDED, cache_dir=cache_dir)
        assert warm.hits == warm.files
        assert warm.extracted == 0 and not warm.wrote

    def test_staleness_only_reextracts_the_changed_file(self, tmp_path):
        # Copy the package so we can edit it.
        import shutil

        pkg = tmp_path / "seeded_pkg"
        shutil.copytree(SEEDED, pkg)
        cache_dir = tmp_path / "cache"
        _s, cold = load_summaries(pkg, cache_dir=cache_dir)
        target = pkg / "util" / "helpers.py"
        target.write_text(
            target.read_text(encoding="utf-8") + "\n\nX = 1\n",
            encoding="utf-8",
        )
        _s, stale = load_summaries(pkg, cache_dir=cache_dir)
        assert stale.extracted == 1
        assert stale.hits == cold.files - 1

    def test_deleted_files_drop_out(self, tmp_path):
        import shutil

        pkg = tmp_path / "seeded_pkg"
        shutil.copytree(SEEDED, pkg)
        cache_dir = tmp_path / "cache"
        load_summaries(pkg, cache_dir=cache_dir)
        (pkg / "util" / "helpers.py").unlink()
        summaries, _stats = load_summaries(pkg, cache_dir=cache_dir)
        modules = {s.module for s in summaries}
        assert "seeded_pkg.util.helpers" not in modules
        # And the cache file itself no longer resurrects it.
        document = json.loads(
            (cache_dir / CACHE_FILENAME).read_text(encoding="utf-8")
        )
        assert "seeded_pkg/util/helpers.py" not in document["files"]

    def test_parse_failure_reported_not_fatal(self, tmp_path):
        import shutil

        pkg = tmp_path / "seeded_pkg"
        shutil.copytree(SEEDED, pkg)
        (pkg / "broken.py").write_text("def nope(:\n", encoding="utf-8")
        result = run_flow([pkg])
        parse = [f for f in result.findings if f.rule == "PARSE"]
        assert len(parse) == 1 and "broken.py" in parse[0].path
        # The rest of the package still analyzed: seeded findings intact.
        assert by_rule(result.findings, "FLOW001")


# ----------------------------------------------------------------------
# Reporters: SARIF + multi-line baseline regression
# ----------------------------------------------------------------------


class TestReporters:
    def _flow_finding(self) -> Finding:
        return by_rule(run_flow([SEEDED]).findings, "FLOW001")[0]

    def test_sarif_document_shape(self):
        f = self._flow_finding()
        document = json.loads(render_sarif([f]))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"FLOW001", "FLOW002", "CON001", "CON002"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "FLOW001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == f.path
        assert location["region"]["startLine"] == f.line
        # The chain rides along in the message text.
        assert "wall_now" in result["message"]["text"]

    def test_sarif_empty_is_valid(self):
        document = json.loads(render_sarif([]))
        assert document["runs"][0]["results"] == []

    def test_baseline_key_ignores_chain_line_numbers(self):
        # Multi-line diagnostics must baseline on (path, rule, message)
        # alone: chains embed line numbers that drift on every edit.
        f = self._flow_finding()
        assert f.chain and str(f.line) not in f.baseline_key()
        shifted = Finding(
            path=f.path,
            line=f.line + 40,
            col=f.col,
            rule=f.rule,
            message=f.message,
            chain=("totally", "different", "chain"),
        )
        assert shifted.baseline_key() == f.baseline_key()

    def test_baseline_round_trip_with_flow_findings(self, tmp_path):
        findings = run_flow([SEEDED]).findings
        baseline_file = tmp_path / "baseline.json"
        save_baseline(findings, baseline_file)
        assert filter_baseline(findings, load_baseline(baseline_file)) == []

    def test_baseline_accepts_reason_objects(self, tmp_path):
        f = self._flow_finding()
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(
            json.dumps(
                {
                    "version": 1,
                    "suppressed": [
                        {"key": f.baseline_key(), "reason": "accepted: test"}
                    ],
                }
            ),
            encoding="utf-8",
        )
        assert f.baseline_key() in load_baseline(baseline_file)

    def test_baseline_rejects_garbage_entries(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(
            json.dumps({"version": 1, "suppressed": [42]}), encoding="utf-8"
        )
        with pytest.raises(LintError, match="key strings"):
            load_baseline(baseline_file)

    def test_finding_to_dict_carries_chain(self):
        f = self._flow_finding()
        assert tuple(f.to_dict()["chain"]) == f.chain


# ----------------------------------------------------------------------
# Runner + CLI integration
# ----------------------------------------------------------------------


class TestFlowCli:
    def test_lint_flow_reports_chain(self, capsys, tmp_path):
        code = cli_main(["lint", "--flow", str(SEEDED)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FLOW001" in out and "FLOW002" in out
        assert "CON001" in out and "CON002" in out
        assert "helpers.wall_now" in out  # the chain is printed

    def test_lint_flow_clean_package(self, capsys):
        assert cli_main(["lint", "--flow", str(CLEAN)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_without_flow_skips_flow_rules(self, capsys):
        # The local rules still fire on the fixture (DET001 on the wall
        # clock, FORK001 on the open()), but no flow/contract rule may.
        cli_main(["lint", str(SEEDED)])
        out = capsys.readouterr().out
        assert "DET001" in out
        for rule_id in ("FLOW001", "FLOW002", "CON001", "CON002"):
            assert rule_id not in out

    def test_rule_filter_selects_single_flow_rule(self, capsys):
        code = cli_main(["lint", "--flow", "--rule", "CON002", str(SEEDED)])
        out = capsys.readouterr().out
        assert code == 1
        assert "CON002" in out and "FLOW001" not in out

    def test_sarif_format_end_to_end(self, capsys):
        cli_main(["lint", "--flow", "--format", "sarif", str(SEEDED)])
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        fired = {r["ruleId"] for r in document["runs"][0]["results"]}
        # Local rules fire on the fixture too; all four flow rules must.
        assert {"FLOW001", "FLOW002", "CON001", "CON002"} <= fired

    def test_run_lint_flow_respects_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        first = run_lint(
            [SEEDED], flow=True, flow_cache=None, update_baseline=baseline
        )
        assert first.exit_code == 0
        second = run_lint(
            [SEEDED], flow=True, flow_cache=None, baseline=baseline
        )
        assert second.exit_code == 0, "\n" + second.report

    def test_flow_rules_registered_but_engine_skips_them(self):
        for rule_id in ("FLOW001", "FLOW002", "CON001", "CON002"):
            rule = RULES[rule_id]
            assert getattr(rule, "flow_only", False)
            assert not rule.applies_to("repro/kernel/columnar.py")


# ----------------------------------------------------------------------
# The whole-tree gate and the performance contract
# ----------------------------------------------------------------------


@pytest.mark.lint
class TestFullTreeFlow:
    def test_shipped_tree_has_zero_flow_findings(self):
        if not SRC_TREE.exists():
            pytest.skip("src/ tree not present (sdist install)")
        result = run_flow([SRC_TREE])
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.findings == [], "\n" + rendered

    def test_cold_and_warm_latency_budget(self, tmp_path):
        if not SRC_TREE.exists():
            pytest.skip("src/ tree not present (sdist install)")
        cache_dir = tmp_path / "cache"
        start = time.perf_counter()
        run_flow([SRC_TREE], cache_dir=cache_dir)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        result = run_flow([SRC_TREE], cache_dir=cache_dir)
        warm = time.perf_counter() - start
        assert cold < 10.0, f"cold flow run took {cold:.2f}s"
        assert warm < 1.0, f"warm flow run took {warm:.2f}s"
        stats = result.cache_stats[0]
        assert stats.hits == stats.files and stats.extracted == 0
