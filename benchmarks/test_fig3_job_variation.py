"""Figure 3: cold-memory variation across jobs (cumulative distribution).

Paper: the top decile of jobs is >= 43 % cold while the bottom decile is
below 9 % — heterogeneity that rules out per-application tuning.  We
regenerate the per-job cold-fraction CDF and verify the decile spread.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import per_job_cold_fractions, render_cdf


def test_fig3_per_job_cold_cdf(benchmark, paper_fleet, save_result):
    fractions = benchmark(
        per_job_cold_fractions, paper_fleet.trace_db.traces()
    )

    assert len(fractions) >= 20
    assert all(0.0 <= f <= 1.0 for f in fractions)

    p10, p90 = np.percentile(fractions, [10, 90])
    # Shape: strong heterogeneity with a hot bottom decile and a cold top
    # decile (paper: p90 >= 43%, p10 < 9%).
    assert p90 >= 0.35
    assert p10 <= 0.20
    assert p90 - p10 >= 0.25

    save_result(
        "fig3_job_variation",
        render_cdf(
            [100 * f for f in fractions],
            "Fig. 3 — per-job cold memory percentage "
            "(paper: p90>=43%, p10<9%)",
            unit="%",
            quantiles=(10, 25, 50, 75, 90, 98),
        ),
    )
