"""Suppression fixture: findings silenced by # repro: noqa comments."""

import time
import random


def stamp():
    started = time.time()  # repro: noqa[DET001]
    wobble = random.random()  # repro: noqa
    exact = time.perf_counter()  # repro: noqa[DET002]  <- wrong rule, still fires
    return started, wobble, exact
