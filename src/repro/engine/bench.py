"""The ``repro bench`` throughput harness behind ``BENCH_fleet.json``.

Four sections, all produced by :func:`run_bench`:

* **tick_path** — the same machines ticked through one kstaled/kreclaimd
  cycle per simulated minute, once with the scalar per-page kernel and
  once with the columnar pooled kernel.  This is the number the columnar
  kernel exists for: ticks/sec on the online tick path, with the
  speedup recorded as ``speedup_columnar``.
* **equivalence** — a full churning simulation run under all three
  backends (scalar, columnar with per-machine pools, columnar with
  cluster-scoped pools); ``equivalent`` is true only when coverage
  reports and complete SLI histories are identical.
* **serial / parallel** — a hundreds-of-machines fleet timed through the
  serial :meth:`WSC.run` loop and again under :class:`FleetEngine`.
  When the host cannot give the parallel run more than one physical
  core, ``speedup`` is ``null`` and ``note`` says why — a 1-core
  "speedup" is noise, not signal.
* **thousand_machine_hour** — one simulated hour over a 1,000-machine
  fleet on a single core via the cluster-pooled columnar kernel,
  compared against the wall time of the legacy 8-machine scalar bench.

``docs/performance.md`` explains how to read the output.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.cluster.wsc import quickfleet
from repro.common.units import HOUR, MIB, PAGE_SIZE
from repro.common.validation import check_positive
from repro.engine.parallel import FleetEngine, default_worker_count
from repro.obs import MetricName, MetricRegistry, Tracer

__all__ = [
    "columnar_equivalence",
    "run_bench",
    "thousand_machine_hour",
    "tick_path_bench",
    "zero_copy_equivalence",
]

#: Fleet shape of the original serial-vs-parallel bench; its scalar wall
#: time is the budget the thousand-machine hour must beat.
_LEGACY_SHAPE = {"clusters": 4, "machines": 2, "jobs": 3, "hours": 2.0}


def _build_fleet(clusters: int, machines: int, jobs: int, seed: int,
                 kernel: str = "scalar", pool_scope: str = "machine"):
    """The legacy bench workload: 8 GiB machines, 16-64 MiB jobs, churn."""
    return quickfleet(
        clusters=clusters,
        machines_per_cluster=machines,
        jobs_per_machine=jobs,
        seed=seed,
        machine_dram_gib=8.0,
        mean_cold_fraction=0.20,
        job_pages_range=((16 * MIB) // PAGE_SIZE, (64 * MIB) // PAGE_SIZE),
        churn_duration_range=(2 * HOUR, 12 * HOUR),
        kernel=kernel,
        pool_scope=pool_scope,
        registry=MetricRegistry(),
        tracer=Tracer(),
    )


def _build_dense_fleet(clusters: int, machines: int, jobs: int, seed: int,
                       kernel: str, pool_scope: str = "machine"):
    """The dense fleet workload: many small machines, mostly-cold jobs.

    This is the shape the columnar kernel targets — hundreds to
    thousands of machines per core — so both the serial-vs-parallel
    section and the thousand-machine hour use it.  The tracer is
    disabled and the kstaled/agent periods are stretched (240 s scans,
    5-minute control rounds): at this scale span bookkeeping and
    per-minute control dispatch would dominate the numbers for both
    kernels without telling us anything about either.
    """
    return quickfleet(
        clusters=clusters,
        machines_per_cluster=machines,
        jobs_per_machine=jobs,
        seed=seed,
        machine_dram_gib=0.25,
        mean_cold_fraction=0.90,
        job_pages_range=(16, 64),
        kernel=kernel,
        pool_scope=pool_scope,
        scan_period=240,
        control_period=300,
        registry=MetricRegistry(),
        tracer=Tracer(enabled=False),
    )


def _pages_scanned(fleet) -> float:
    total = 0.0
    for (name, _labels), value in fleet.registry.baseline().items():
        if name == MetricName.PAGES_SCANNED_TOTAL:
            total += value
    return total


def tick_path_bench(machines: int = 20, jobs: int = 384, ticks: int = 10,
                    seed: int = 42) -> Dict:
    """Scalar vs columnar throughput on the machine tick path.

    Ticks every machine through ``ticks`` simulated minutes of
    kstaled/kreclaimd work (no job stepping, no node agents — just the
    per-minute kernel path the columnar backend vectorizes) and reports
    ticks/sec for each kernel plus the columnar speedup.  The default
    shape is many small memcgs per machine — the regime warehouse-scale
    machines actually run in, and the one where the scalar kernel's cost
    is per-memcg dispatch rather than per-page work.  As a cheap
    equivalence check the total pages scanned and pages in far memory
    must match bit-for-bit between the two kernels.
    """
    sections: Dict[str, Dict] = {}
    state = {}
    for kernel in ("scalar", "columnar"):
        fleet = quickfleet(
            clusters=1,
            machines_per_cluster=machines,
            jobs_per_machine=jobs,
            seed=seed,
            machine_dram_gib=0.25,
            mean_cold_fraction=0.90,
            job_pages_range=(4, 16),
            kernel=kernel,
            scan_period=60,
            registry=MetricRegistry(),
            tracer=Tracer(enabled=False),
        )
        cluster = fleet.clusters[0]
        start = time.perf_counter()
        now = 0
        for _ in range(ticks):
            for machine in cluster.machines:
                machine.tick(now)
                machine.run_reclaim()
            now += 60
        wall = time.perf_counter() - start
        state[kernel] = (
            sum(m.kstaled.pages_scanned for m in cluster.machines),
            sum(m.far_pages for m in cluster.machines),
        )
        sections[kernel] = {
            "wall_seconds": round(wall, 3),
            "ticks_per_second": round(ticks / wall, 2),
        }
    speedup = (sections["scalar"]["wall_seconds"]
               / max(sections["columnar"]["wall_seconds"], 1e-9))
    return {
        "machines": machines,
        "jobs_per_machine": jobs,
        "ticks": ticks,
        "seed": seed,
        "scalar": sections["scalar"],
        "columnar": sections["columnar"],
        "speedup_columnar": round(speedup, 2),
        "pages_scanned": state["scalar"][0],
        "equivalent": state["scalar"] == state["columnar"],
    }


def columnar_equivalence(clusters: int = 2, machines: int = 4,
                         jobs: int = 12, hours: float = 1.0,
                         seed: int = 77) -> Dict:
    """Full-simulation equivalence across all three kernel backends.

    Runs the same churning fleet — job arrivals, node agents, telemetry,
    the lot — under the scalar kernel, the columnar kernel with
    per-machine pools, and the columnar kernel with cluster-scoped
    pools.  ``equivalent`` is true only when all three produce identical
    coverage reports *and* identical SLI histories, sample by sample.
    """
    check_positive(hours, "hours")
    seconds = int(hours * HOUR)
    walls: Dict[str, float] = {}
    snapshots = []
    for kernel, scope in (("scalar", "machine"),
                          ("columnar", "machine"),
                          ("columnar", "cluster")):
        fleet = quickfleet(
            clusters=clusters,
            machines_per_cluster=machines,
            jobs_per_machine=jobs,
            seed=seed,
            machine_dram_gib=1.0,
            job_pages_range=((1 * MIB) // PAGE_SIZE,
                             (4 * MIB) // PAGE_SIZE),
            kernel=kernel,
            pool_scope=scope,
            scan_period=60,
            churn_duration_range=(1800, 7200),
            registry=MetricRegistry(),
            tracer=Tracer(),
        )
        start = time.perf_counter()
        fleet.run(seconds)
        walls[f"{kernel}/{scope}"] = round(time.perf_counter() - start, 3)
        sli = tuple(
            (s.job_id, s.time, s.working_set_pages, s.promotions,
             s.normalized_rate_pct_per_min, s.threshold)
            for s in fleet.sli_history
        )
        snapshots.append((fleet.coverage_report(), sli))
    return {
        "clusters": clusters,
        "machines_per_cluster": machines,
        "jobs_per_machine": jobs,
        "simulated_hours": hours,
        "seed": seed,
        "wall_seconds": walls,
        "sli_samples": len(snapshots[0][1]),
        "equivalent": all(s == snapshots[0] for s in snapshots[1:]),
    }


def _store_bytes(root: Path) -> Dict[str, bytes]:
    """Every file in a trace-store directory, name -> content."""
    return {
        path.name: path.read_bytes() for path in sorted(root.iterdir())
    }


def _compiled_equal(left, right) -> bool:
    """Tensor-level equality of two compiled-trace sets.

    Keyed by job: serial and parallel runs intern jobs in different
    first-seen orders (per-machine export order vs canonical barrier
    order), which is fine — the replay unit is the per-job trace.
    """
    if len(left) != len(right):
        return False
    left = sorted(left, key=lambda c: c.job_id)
    right = sorted(right, key=lambda c: c.job_id)
    for a, b in zip(left, right):
        if a.job_id != b.job_id or a.bins != b.bins:
            return False
        for attr in ("cold_suffix_sums", "promotion_suffix_sums",
                     "working_set_pages", "times", "resident_pages",
                     "cpu_cores"):
            if not np.array_equal(getattr(a, attr), getattr(b, attr)):
                return False
    return True


def zero_copy_equivalence(clusters: int = 2, machines: int = 3,
                          jobs: int = 6, hours: float = 0.5,
                          seed: int = 99, workers: int = 2) -> Dict:
    """Zero-copy telemetry ≡ object telemetry, serial and parallel.

    Runs the same seeded columnar fleet four times against an on-disk
    :class:`~repro.tracestore.database.ColumnarTraceDatabase`: serial
    and parallel, each once over the block fast path (pool columns →
    ``add_block`` → segments; blocks shipped across barriers) and once
    over the per-entry object oracle (``prefer_blocks`` off on every
    exporter, entry shipping pinned in the engine).  Within each mode
    the two stores must come out **byte-identical** — same segment
    files, same manifest (hence same window aggregates) — and the
    compiled replay tensors must match across all four runs.
    """
    check_positive(hours, "hours")
    from repro.tracestore.database import ColumnarTraceDatabase

    seconds = int(hours * HOUR)
    results: Dict[str, Dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-zerocopy-") as tmp:
        for mode in ("serial", "parallel"):
            for path in ("block", "entry"):
                root = Path(tmp) / f"{mode}-{path}"
                registry = MetricRegistry()
                db = ColumnarTraceDatabase(
                    root, buffer_rows=256, registry=registry
                )
                fleet = quickfleet(
                    clusters=clusters,
                    machines_per_cluster=machines,
                    jobs_per_machine=jobs,
                    seed=seed,
                    machine_dram_gib=1.0,
                    job_pages_range=((1 * MIB) // PAGE_SIZE,
                                     (4 * MIB) // PAGE_SIZE),
                    kernel="columnar",
                    pool_scope="cluster",
                    scan_period=60,
                    churn_duration_range=(1800, 7200),
                    registry=registry,
                    tracer=Tracer(),
                    trace_db=db,
                )
                if path == "entry":
                    for cluster in fleet.clusters:
                        for exporter in cluster.exporters.values():
                            exporter.prefer_blocks = False
                start = time.perf_counter()
                if mode == "serial":
                    fleet.run(seconds)
                else:
                    FleetEngine(
                        fleet, workers=workers,
                        ship_blocks=(path == "block"),
                    ).run(seconds)
                wall = time.perf_counter() - start
                db.flush()
                results[f"{mode}/{path}"] = {
                    "wall_seconds": round(wall, 3),
                    "rows": db.store.rows_total,
                    "segments": len(db.store.segments),
                    "files": _store_bytes(root),
                    "compiled": db.compiled_traces(),
                }

    byte_identical = all(
        results[f"{mode}/block"]["files"] == results[f"{mode}/entry"]["files"]
        for mode in ("serial", "parallel")
    )
    compiled = [results[key]["compiled"] for key in sorted(results)]
    tensors_identical = all(
        _compiled_equal(compiled[0], other) for other in compiled[1:]
    )
    return {
        "clusters": clusters,
        "machines_per_cluster": machines,
        "jobs_per_machine": jobs,
        "simulated_hours": hours,
        "seed": seed,
        "workers": workers,
        "rows": results["serial/block"]["rows"],
        "segments": results["serial/block"]["segments"],
        "wall_seconds": {
            key: value["wall_seconds"] for key, value in results.items()
        },
        "stores_byte_identical": byte_identical,
        "compiled_tensors_identical": tensors_identical,
        "equivalent": byte_identical and tensors_identical,
    }


def thousand_machine_hour(machines: int = 1000, seed: int = 42,
                          budget_seconds: Optional[float] = None) -> Dict:
    """One simulated hour, ``machines`` machines, one core, columnar.

    Uses cluster-scoped pools (one shared page pool per 100-machine
    cluster) so each cluster's scan and reclaim run as a handful of
    array sweeps instead of hundreds of per-machine calls.  When
    ``budget_seconds`` is given (the legacy 8-machine scalar bench
    wall), ``under_scalar_8_machine_bench`` records whether the
    thousand-machine hour beat it.
    """
    check_positive(machines, "machines")
    clusters = max(1, machines // 100)
    fleet = _build_dense_fleet(clusters, machines // clusters, 1, seed,
                               kernel="columnar", pool_scope="cluster")
    start = time.perf_counter()
    fleet.run(HOUR, collect_sli=False)
    wall = time.perf_counter() - start
    report = {
        "machines": clusters * (machines // clusters),
        "jobs_per_machine": 1,
        "simulated_hours": 1.0,
        "kernel": "columnar",
        "pool_scope": "cluster",
        "scan_period_seconds": 240,
        "control_period_seconds": 300,
        "workers": 1,
        "seed": seed,
        "wall_seconds": round(wall, 3),
        "ticks_per_second": round((HOUR // 60) / wall, 2),
    }
    if budget_seconds is not None:
        report["scalar_8_machine_wall_seconds"] = round(budget_seconds, 3)
        report["under_scalar_8_machine_bench"] = wall < budget_seconds
    return report


def run_bench(
    hours: float = 1.0,
    clusters: int = 4,
    machines: int = 50,
    jobs: int = 1,
    seed: int = 42,
    workers: Optional[int] = None,
    barrier_seconds: int = 60,
    tick_machines: int = 20,
    tick_jobs: int = 384,
    tick_ticks: int = 10,
    equivalence_hours: float = 1.0,
    thousand_machines: int = 1000,
    output: Optional[Union[str, Path]] = None,
) -> Dict:
    """Run the full fleet benchmark and assemble the report.

    Args:
        hours: simulated hours for the serial-vs-parallel section.
        clusters / machines / jobs: serial-vs-parallel fleet shape
            (machines and jobs are per-cluster and per-machine); the
            defaults give a 200-machine dense fleet.
        seed: root seed for every section.
        workers: parallel worker count (default: usable CPUs capped
            at 4).
        barrier_seconds: engine barrier interval.
        tick_machines / tick_jobs / tick_ticks: tick-path section shape.
        equivalence_hours: simulated hours for the three-backend
            equivalence section.
        thousand_machines: machine count for the thousand-machine-hour
            section; 0 skips it (and the legacy reference run it is
            compared against).
        output: when given, the report is also written there as JSON
            (conventionally ``BENCH_fleet.json``).

    Returns:
        The report dict described in the module docstring.  The
        top-level ``equivalent`` is the conjunction of every section's
        equivalence check.
    """
    check_positive(hours, "hours")
    if workers is None:
        workers = min(4, default_worker_count())

    seconds = int(hours * HOUR)

    tick_path = tick_path_bench(tick_machines, tick_jobs, tick_ticks, seed)
    equivalence = columnar_equivalence(hours=equivalence_hours, seed=seed + 35)

    # Serial vs parallel on the dense hundreds-of-machines fleet.  The
    # columnar cluster-pooled kernel is the production configuration at
    # this scale, so that is what both runs use.
    serial_fleet = _build_dense_fleet(clusters, machines, jobs, seed,
                                      kernel="columnar",
                                      pool_scope="cluster")
    start = time.perf_counter()
    serial_fleet.run(seconds)
    serial_wall = time.perf_counter() - start

    parallel_fleet = _build_dense_fleet(clusters, machines, jobs, seed,
                                        kernel="columnar",
                                        pool_scope="cluster")
    engine = FleetEngine(parallel_fleet, workers=workers,
                         barrier_seconds=barrier_seconds)
    start = time.perf_counter()
    stats = engine.run(seconds)
    parallel_wall = time.perf_counter() - start

    parallel_equivalent = (
        serial_fleet.coverage_report() == parallel_fleet.coverage_report()
        and serial_fleet.sli_history == parallel_fleet.sli_history
    )
    pages = _pages_scanned(serial_fleet)

    host_cores = os.cpu_count() or 1
    # A parallel "speedup" only means something when the engine actually
    # had more than one physical core to spread workers across.
    if stats.workers > 1 and stats.workers <= host_cores:
        speedup = round(serial_wall / parallel_wall, 3)
        note = None
    else:
        speedup = None
        note = (f"parallel ran with {stats.workers} worker(s) on "
                f"{host_cores} physical core(s); workers cannot exceed "
                f"physical cores, so no speedup is measurable")

    thousand = None
    if thousand_machines:
        reference = _build_fleet(_LEGACY_SHAPE["clusters"],
                                 _LEGACY_SHAPE["machines"],
                                 _LEGACY_SHAPE["jobs"], seed)
        start = time.perf_counter()
        reference.run(int(_LEGACY_SHAPE["hours"] * HOUR))
        reference_wall = time.perf_counter() - start
        thousand = thousand_machine_hour(thousand_machines, seed,
                                         budget_seconds=reference_wall)

    report = {
        "fleet": {
            "clusters": clusters,
            "machines_per_cluster": machines,
            "jobs_per_machine": jobs,
            "simulated_hours": hours,
            "seed": seed,
            "kernel": "columnar",
            "pool_scope": "cluster",
        },
        "host": {
            "physical_cores": host_cores,
            "usable_cpus": default_worker_count(),
        },
        "barrier_seconds": barrier_seconds,
        "ticks": stats.ticks,
        "tick_path": tick_path,
        "equivalence": equivalence,
        "serial": {
            "wall_seconds": round(serial_wall, 3),
            "ticks_per_second": round(stats.ticks / serial_wall, 2),
            "pages_scanned_per_second": round(pages / serial_wall, 0),
        },
        "parallel": {
            "mode": stats.mode,
            "workers": stats.workers,
            "barriers": stats.barriers,
            "fallback_reason": stats.fallback_reason,
            "wall_seconds": round(parallel_wall, 3),
            "ticks_per_second": round(stats.ticks / parallel_wall, 2),
            "pages_scanned_per_second": round(pages / parallel_wall, 0),
        },
        "speedup": speedup,
        "note": note,
        "thousand_machine_hour": thousand,
        "equivalent": (tick_path["equivalent"]
                       and equivalence["equivalent"]
                       and parallel_equivalent),
    }
    if output is not None:
        Path(output).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    return report
