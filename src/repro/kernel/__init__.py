"""Simulated Linux kernel substrate: memcg, kstaled, kreclaimd, zswap,
zsmalloc, direct reclaim, and the machine that composes them (paper §5.1)."""

from repro.kernel.columnar import (
    ColumnarMemCg,
    MachinePagePool,
    PooledAgeHistogram,
)
from repro.kernel.compression import (
    DEFAULT_LATENCY_MODEL,
    CompressionLatencyModel,
    ContentProfile,
)
from repro.kernel.direct_reclaim import DirectReclaim
from repro.kernel.kreclaimd import Kreclaimd
from repro.kernel.kstaled import Kstaled
from repro.kernel.machine import FarMemoryMode, Machine, MachineConfig
from repro.kernel.memcg import MemCg, PageState
from repro.kernel.remote import RemoteAccessModel, RemoteMemoryPool
from repro.kernel.tiers import (
    NVM_DEVICE,
    ZSSD_DEVICE,
    ZSWAP_ACCEL_DEVICE,
    ZSWAP_DEVICE,
    FarMemoryDevice,
    TierAssignment,
    TieredFarMemory,
)
from repro.kernel.zsmalloc import ArenaStats, ZsmallocArena
from repro.kernel.zswap import Zswap, ZswapJobStats

__all__ = [
    "ArenaStats",
    "FarMemoryDevice",
    "NVM_DEVICE",
    "RemoteAccessModel",
    "RemoteMemoryPool",
    "TierAssignment",
    "TieredFarMemory",
    "ZSSD_DEVICE",
    "ZSWAP_ACCEL_DEVICE",
    "ZSWAP_DEVICE",
    "ColumnarMemCg",
    "CompressionLatencyModel",
    "ContentProfile",
    "DEFAULT_LATENCY_MODEL",
    "DirectReclaim",
    "MachinePagePool",
    "PooledAgeHistogram",
    "FarMemoryMode",
    "Kreclaimd",
    "Kstaled",
    "Machine",
    "MachineConfig",
    "MemCg",
    "PageState",
    "Zswap",
    "ZswapJobStats",
]
