"""Telemetry export of 5-minute trace entries."""

import numpy as np
import pytest

from repro.agent.telemetry import TelemetryExporter
from repro.cluster.trace_db import TraceDatabase
from repro.common.rng import SeedSequenceFactory
from repro.kernel.compression import ContentProfile
from repro.kernel.machine import Machine, MachineConfig
from repro.model.trace import TRACE_PERIOD_SECONDS


COMPRESSIBLE = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)


def make_machine():
    return Machine(
        "m0", MachineConfig(dram_bytes=1 << 30), seeds=SeedSequenceFactory(4)
    )


def test_exports_every_five_minutes():
    machine = make_machine()
    db = TraceDatabase()
    exporter = TelemetryExporter(machine, db)
    machine.add_job("j", 200, COMPRESSIBLE)
    machine.allocate("j", 200)
    for t in range(0, 1501, 60):
        machine.tick(t)
        exporter.maybe_export(t)
    # Exports at t=0, 300, ..., 1500 -> 6 entries (t=0 one included).
    assert len(db) == 6
    assert db.job_ids == ["j"]


def test_promotion_histogram_is_per_period_diff():
    machine = make_machine()
    db = TraceDatabase()
    exporter = TelemetryExporter(machine, db)
    memcg = machine.add_job("j", 200, COMPRESSIBLE)
    idx = machine.allocate("j", 200)
    for t in range(0, 601, 60):
        machine.tick(t)
        exporter.maybe_export(t)
    # Age everything, then touch cold pages once in period 3.
    machine.touch("j", idx[:50])
    for t in range(660, 1201, 60):
        machine.tick(t)
        exporter.maybe_export(t)
    entries = db.trace_for("j").entries
    total_promos = sum(e.promotion_histogram.colder_than(120) for e in entries)
    # The cold touches appear exactly once across all period diffs.
    assert total_promos == memcg.promotion_histogram.colder_than(120)


def test_entry_fields_populated():
    machine = make_machine()
    db = TraceDatabase()
    exporter = TelemetryExporter(machine, db, cpu_lookup=lambda j: 4.0)
    machine.add_job("j", 300, COMPRESSIBLE)
    machine.allocate("j", 300)
    for t in range(0, 601, 60):
        machine.tick(t)
        exporter.maybe_export(t)
    entry = db.trace_for("j").entries[-1]
    assert entry.machine_id == "m0"
    assert entry.resident_pages == 300
    assert entry.cpu_cores == 4.0
    assert entry.working_set_pages >= 0


def test_departed_jobs_cleaned_up():
    machine = make_machine()
    db = TraceDatabase()
    exporter = TelemetryExporter(machine, db)
    machine.add_job("j", 100, COMPRESSIBLE)
    machine.allocate("j", 100)
    for t in range(0, 301, 60):
        machine.tick(t)
        exporter.maybe_export(t)
    machine.remove_job("j")
    for t in range(360, 661, 60):
        machine.tick(t)
        exporter.maybe_export(t)
    assert "j" not in exporter._last_promotion


def test_counts_exported_entries():
    machine = make_machine()
    db = TraceDatabase()
    exporter = TelemetryExporter(machine, db)
    machine.add_job("a", 50, COMPRESSIBLE)
    machine.add_job("b", 50, COMPRESSIBLE)
    machine.allocate("a", 50)
    machine.allocate("b", 50)
    exporter.export(TRACE_PERIOD_SECONDS)
    assert exporter.entries_exported == 2
