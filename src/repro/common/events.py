"""Lightweight event recording for simulator observability.

Components append :class:`Event` records to an :class:`EventLog`; analysis
code filters by kind.  This is the simulator's stand-in for the paper's
monitoring infrastructure — cheap enough to leave on, structured enough to
drive assertions in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence.

    Attributes:
        time: simulation time in seconds.
        kind: dotted event name, e.g. ``"scheduler.evict"``.
        payload: arbitrary structured details.
    """

    time: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only event sink with simple filtering.

    A log may be created bounded (``max_events``) for long simulations; when
    full, the oldest events are dropped and ``dropped_count`` records how
    many.
    """

    def __init__(self, max_events: Optional[int] = None):
        if max_events is not None and max_events <= 0:
            raise ValueError("max_events must be positive or None")
        self._events: List[Event] = []
        self._max_events = max_events
        self.dropped_count = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def record(self, time: int, kind: str, **payload: Any) -> Event:
        """Append and return a new event."""
        event = Event(time=time, kind=kind, payload=payload)
        self._events.append(event)
        if self._max_events is not None and len(self._events) > self._max_events:
            overflow = len(self._events) - self._max_events
            del self._events[:overflow]
            self.dropped_count += overflow
        return event

    def of_kind(self, kind: str) -> List[Event]:
        """All events whose kind equals or is nested under ``kind``."""
        prefix = kind + "."
        return [e for e in self._events if e.kind == kind or e.kind.startswith(prefix)]

    def between(self, start: int, end: int) -> List[Event]:
        """All events with ``start <= time < end``."""
        return [e for e in self._events if start <= e.time < end]

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
