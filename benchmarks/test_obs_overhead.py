"""Observability must cost ~nothing (the Fig. 8 discipline, turned inward).

The paper's control plane ships because its total CPU cost stays in the
0.001-0.005 band; an observability layer that slowed the simulator down
would get turned off the same way.  This bench runs the *same* seeded
fleet twice — once fully instrumented (live registry + tracer), once with
both disabled (the shared no-op handles) — and asserts the instrumented
run stays within 5 % on min-of-N wall time.  Min-of-N is the standard
noise filter: the minimum approaches the true cost as N grows, while the
mean absorbs scheduler hiccups.
"""

from __future__ import annotations

import time

from repro.analysis import render_table
from repro.cluster import quickfleet
from repro.common.units import MIB, MINUTE, PAGE_SIZE
from repro.obs import MetricRegistry, Tracer

FLEET_KWARGS = dict(
    clusters=1,
    machines_per_cluster=2,
    jobs_per_machine=4,
    machine_dram_gib=2.0,
    mean_cold_fraction=0.20,
    job_pages_range=((4 * MIB) // PAGE_SIZE, (16 * MIB) // PAGE_SIZE),
    seed=11,
)

SIM_MINUTES = 20
REPEATS = 5
MAX_OVERHEAD = 0.05


def timed_run(enabled: bool) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        registry = MetricRegistry(enabled=enabled)
        tracer = Tracer(enabled=enabled)
        fleet = quickfleet(registry=registry, tracer=tracer, **FLEET_KWARGS)
        start = time.perf_counter()
        fleet.run(SIM_MINUTES * MINUTE)
        best = min(best, time.perf_counter() - start)
    return best


def test_observability_overhead_under_5_percent(save_result):
    # Interleaving the off measurement after the on one keeps both on the
    # same warmed-up interpreter state (allocator pools, imported numpy).
    on_seconds = timed_run(enabled=True)
    off_seconds = timed_run(enabled=False)
    overhead = on_seconds / off_seconds - 1.0

    save_result(
        "obs_overhead",
        render_table(
            ["configuration", "min wall time"],
            [
                ("observability off", f"{off_seconds * 1e3:.1f} ms"),
                ("observability on", f"{on_seconds * 1e3:.1f} ms"),
                ("overhead", f"{overhead:+.2%} (budget {MAX_OVERHEAD:.0%})"),
            ],
            title="Instrumentation overhead (min of "
                  f"{REPEATS} x {SIM_MINUTES} sim-minutes)",
        ),
    )
    assert overhead < MAX_OVERHEAD, (
        f"instrumentation overhead {overhead:.2%} exceeds "
        f"{MAX_OVERHEAD:.0%} budget "
        f"({on_seconds * 1e3:.1f} ms on vs {off_seconds * 1e3:.1f} ms off)"
    )


def test_disabled_handles_are_shared_noops():
    """The off path must not allocate per-call: disabled registry/tracer
    hand out shared singletons, so leaving instrumentation in hot loops
    is free when observability is off."""
    registry = MetricRegistry(enabled=False)
    tracer = Tracer(enabled=False)
    c1 = registry.counter("a_total", "x", ("machine",))
    c2 = registry.counter("b_total", "y")
    assert c1 is c2
    assert c1.labels(machine="m0") is c1
    s1 = tracer.span("x")
    s2 = tracer.span("y", sim_time=3)
    assert s1 is s2
