"""repro: Software-Defined Far Memory in Warehouse-Scale Computers.

A production-quality reproduction of Lagar-Cavilla et al., ASPLOS 2019:
a proactive, SLO-driven control plane that turns compressed in-DRAM swap
(zswap) into a software-defined far memory tier, plus the simulated
warehouse-scale substrate needed to evaluate it and the GP-Bandit
autotuner that optimizes it fleet-wide.

Subpackages:

* :mod:`repro.core` — cold-page identification, SLO, threshold policy.
* :mod:`repro.kernel` — memcg/kstaled/kreclaimd/zswap/zsmalloc models.
* :mod:`repro.agent` — the node agent control loop and telemetry.
* :mod:`repro.cluster` — Borg-like scheduler, clusters, the WSC fleet.
* :mod:`repro.workloads` — synthetic access patterns and applications.
* :mod:`repro.model` — the fast far memory model (offline trace replay).
* :mod:`repro.autotuner` — GP-Bandit parameter optimization.
* :mod:`repro.analysis` — distribution statistics and figure pipelines.
"""

__version__ = "1.0.0"

from repro.core import (
    AgeBins,
    AgeHistogram,
    ColdAgeThresholdPolicy,
    PromotionRateSlo,
    TcoModel,
    ThresholdPolicyConfig,
    default_age_bins,
)
from repro.kernel import FarMemoryMode, Machine, MachineConfig

__all__ = [
    "AgeBins",
    "AgeHistogram",
    "ColdAgeThresholdPolicy",
    "FarMemoryMode",
    "Machine",
    "MachineConfig",
    "PromotionRateSlo",
    "TcoModel",
    "ThresholdPolicyConfig",
    "default_age_bins",
    "__version__",
]
