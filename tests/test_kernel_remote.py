"""Remote-memory model: placement, blast radius, latency."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.kernel.remote import RemoteAccessModel, RemoteMemoryPool


MACHINES = [f"m{i}" for i in range(8)]


@pytest.fixture
def pool(rng):
    return RemoteMemoryPool(MACHINES, rng, fanout=2)


class TestPlacement:
    def test_pages_spread_over_fanout_donors(self, pool):
        allocation = pool.place_far_pages("job", "m0", pages=101)
        assert len(allocation) == 2
        assert sum(allocation.values()) == 101
        assert "m0" not in allocation

    def test_zero_pages(self, pool):
        allocation = pool.place_far_pages("job", "m0", pages=0)
        assert sum(allocation.values()) == 0
        assert pool.donors_of("job") == set()

    def test_fanout_clamped_to_cluster(self, rng):
        pool = RemoteMemoryPool(["a", "b"], rng, fanout=5)
        allocation = pool.place_far_pages("j", "a", 10)
        assert set(allocation) == {"b"}

    def test_needs_two_machines(self, rng):
        with pytest.raises(ConfigurationError):
            RemoteMemoryPool(["solo"], rng)


class TestBlastRadius:
    def test_host_failure_hits_hosted_jobs(self, pool):
        pool.place_far_pages("a", "m0", 10)
        pool.place_far_pages("b", "m1", 10)
        assert "a" in pool.affected_jobs("m0")

    def test_donor_failure_hits_borrowers(self, pool):
        allocation = pool.place_far_pages("a", "m0", 10)
        donor = next(iter(allocation))
        assert "a" in pool.affected_jobs(donor)

    def test_remote_blast_radius_exceeds_local(self, rng):
        """The §2.1 claim, quantified: with remote memory, a failure hurts
        strictly more jobs than the zswap (host-only) failure domain."""
        pool = RemoteMemoryPool(MACHINES, rng, fanout=3)
        for i in range(64):
            pool.place_far_pages(f"job{i}", MACHINES[i % 8], pages=100)
        remote_radius = [pool.blast_radius(m) for m in MACHINES]
        local_radius = [len(pool.hosted_jobs(m)) for m in MACHINES]
        assert sum(remote_radius) > sum(local_radius)
        assert all(r >= l for r, l in zip(remote_radius, local_radius))


class TestAccessModel:
    def test_latency_includes_encryption(self, rng):
        with_enc = RemoteAccessModel(encryption_seconds_per_page=5e-6)
        without = RemoteAccessModel(encryption_seconds_per_page=0.0)
        a = with_enc.sample_read_latencies(1000, np.random.default_rng(1))
        b = without.sample_read_latencies(1000, np.random.default_rng(1))
        np.testing.assert_allclose(a - b, 5e-6)

    def test_tail_heavier_than_median(self, rng):
        model = RemoteAccessModel()
        samples = model.sample_read_latencies(20_000, rng)
        p50, p99 = np.percentile(samples, [50, 99])
        assert p99 > 2.5 * p50  # lognormal fabric tail

    def test_store_cpu_linear(self):
        model = RemoteAccessModel(encryption_seconds_per_page=2e-6)
        assert model.store_cpu_seconds(100) == pytest.approx(2e-4)

    def test_empty_sample(self, rng):
        assert RemoteAccessModel().sample_read_latencies(0, rng).size == 0
