"""Staged deployment with rollback."""

import pytest

from repro.common.errors import ConfigurationError
from repro.cluster import quickfleet
from repro.core.threshold_policy import ThresholdPolicyConfig
from repro.autotuner.deployment import (
    DeploymentStage,
    StagedDeployment,
)


def make_fleet():
    return quickfleet(
        clusters=3,
        machines_per_cluster=1,
        jobs_per_machine=2,
        seed=77,
        warmup_hours=0.5,
    )


SAFE = ThresholdPolicyConfig(percentile_k=99.0, warmup_seconds=1800)
PREVIOUS = ThresholdPolicyConfig(percentile_k=98.0, warmup_seconds=600)


class TestStageValidation:
    def test_fraction_must_not_decrease(self):
        fleet = make_fleet()
        stages = [
            DeploymentStage("a", 0.5, 600),
            DeploymentStage("b", 0.2, 600),
        ]
        with pytest.raises(ConfigurationError):
            StagedDeployment(fleet, stages)

    def test_stage_validation(self):
        with pytest.raises(ConfigurationError):
            DeploymentStage("x", 1.5, 600)
        with pytest.raises(ConfigurationError):
            DeploymentStage("x", 0.5, 0)


class TestRollout:
    def test_safe_config_reaches_production(self):
        fleet = make_fleet()
        stages = [
            DeploymentStage("qual", 0.34, 600),
            DeploymentStage("prod", 1.0, 600),
        ]
        deployment = StagedDeployment(fleet, stages, slo_limit=1e9)
        assert deployment.deploy(SAFE, PREVIOUS)
        assert len(deployment.outcomes) == 2
        assert all(o.passed for o in deployment.outcomes)
        for cluster in fleet.clusters:
            assert cluster.policy_config == SAFE

    def test_bad_config_rolls_back(self):
        fleet = make_fleet()
        stages = [
            DeploymentStage("qual", 0.34, 600),
            DeploymentStage("prod", 1.0, 600),
        ]
        # An impossible SLO limit guarantees stage failure.
        deployment = StagedDeployment(fleet, stages, slo_limit=1e-12)
        aggressive = ThresholdPolicyConfig(percentile_k=50.0, warmup_seconds=60)
        assert not deployment.deploy(aggressive, PREVIOUS)
        assert not deployment.outcomes[-1].passed
        # Every touched cluster is back on the previous config.
        for cluster in fleet.clusters[:1]:
            assert cluster.policy_config == PREVIOUS
        # Untouched clusters never saw the new config.
        assert fleet.clusters[-1].policy_config != aggressive

    def test_stage_fraction_maps_to_cluster_count(self):
        fleet = make_fleet()
        deployment = StagedDeployment(
            fleet, [DeploymentStage("tiny", 0.01, 600)], slo_limit=1e9
        )
        deployment.deploy(SAFE, PREVIOUS)
        # At least one cluster always upgrades.
        assert fleet.clusters[0].policy_config == SAFE
        assert fleet.clusters[1].policy_config != SAFE
