"""Zero-copy TelemetryBlock ingest: all-or-nothing semantics, located
dtype rejection, identity/generic path parity, and exporter block-failure
degradation (spill-in-order, no double-counted rows) under sink outages."""

import numpy as np
import pytest

from repro.agent.telemetry import TelemetryExporter
from repro.cluster import quickfleet
from repro.common.errors import TraceError
from repro.common.rng import SeedSequenceFactory
from repro.common.units import HOUR
from repro.core.histograms import AgeBins, AgeHistogram, default_age_bins
from repro.faults import (
    ALL_MACHINES,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
)
from repro.kernel.compression import ContentProfile
from repro.kernel.machine import FarMemoryMode, Machine, MachineConfig
from repro.model.trace import TelemetryBlock, TraceEntry
from repro.obs import MetricRegistry, Tracer
from repro.tracestore import ColumnarTraceDatabase, TraceStore


def make_entry(job_id="j", time=0, wss=100, machine="m0", seed=None):
    bins = default_age_bins()
    promo = AgeHistogram(bins)
    cold = AgeHistogram(bins)
    if seed is None:
        promo.add_ages(np.array([150.0] * 5))
        cold.add_ages(np.array([150.0] * 30 + [10.0] * 70))
    else:
        rng = np.random.default_rng(seed)
        promo.add_binned(rng.integers(0, 50, size=len(bins)))
        promo.young_count = int(rng.integers(0, 10))
        cold.add_binned(rng.integers(0, 500, size=len(bins)))
        cold.young_count = int(rng.integers(0, 100))
    return TraceEntry(
        job_id=job_id,
        machine_id=machine,
        time=time,
        working_set_pages=wss,
        promotion_histogram=promo,
        cold_age_histogram=cold,
        resident_pages=wss + 20,
        cpu_cores=2.0,
    )


def random_windows(windows=8, jobs=6, seed=3):
    """Export windows with a varying job subset and shuffled row order.

    Shuffling within a window makes the block's job ordinals non-identity
    (first-seen order differs from sorted order), which forces the
    store's generic append path instead of the identity fast path.
    """
    rng = np.random.default_rng(seed)
    out = []
    for w in range(windows):
        present = sorted(
            rng.choice(jobs, size=int(rng.integers(1, jobs + 1)),
                       replace=False).tolist()
        )
        window = [
            make_entry(f"job-{j}", time=w * 300, machine=f"m{j % 3}",
                       seed=int(rng.integers(0, 2**31)))
            for j in present
        ]
        rng.shuffle(window)
        out.append(window)
    return out


def dump(store):
    return {
        job_id: [e.to_dict() for e in store.entries_for(job_id)]
        for job_id in store.jobs
    }


def dir_bytes(root):
    return {p.name: p.read_bytes() for p in sorted(root.iterdir())}


def empty_block():
    bins = default_age_bins()
    width = len(bins)
    return TelemetryBlock(
        bins=bins,
        job_table=[],
        machine_table=[],
        job=np.empty(0, dtype=np.int64),
        machine=np.empty(0, dtype=np.int64),
        time=np.empty(0, dtype=np.int64),
        working_set_pages=np.empty(0, dtype=np.int64),
        resident_pages=np.empty(0, dtype=np.int64),
        cpu_cores=np.empty(0, dtype=np.float64),
        promotion_counts=np.empty((0, width), dtype=np.int64),
        promotion_young=np.empty(0, dtype=np.int64),
        cold_counts=np.empty((0, width), dtype=np.int64),
        cold_young=np.empty(0, dtype=np.int64),
    )


class TestAppendColumnsAllOrNothing:
    """append_columns either lands every row or leaves the store alone."""

    def test_empty_block_is_noop(self, tmp_path):
        registry = MetricRegistry()
        store = TraceStore(tmp_path / "s", registry=registry)
        store.append_columns(empty_block())
        assert store.rows_total == 0
        assert store.jobs == []
        assert registry.value("repro_tracestore_blocks_total") == 0
        assert registry.value("repro_tracestore_block_rows_total") == 0

    def test_dtype_mismatch_rejected_with_located_error(self, tmp_path):
        store = TraceStore(tmp_path / "s", registry=MetricRegistry())
        block = TelemetryBlock.from_entries(
            [make_entry("a", time=0), make_entry("b", time=0)]
        )
        block.time = block.time.astype(np.int32)
        with pytest.raises(
            TraceError, match=r"TelemetryBlock\.time: dtype int32"
        ):
            store.append_columns(block)
        assert store.rows_total == 0
        assert store.jobs == []

    def test_shape_mismatch_names_column(self, tmp_path):
        store = TraceStore(tmp_path / "s", registry=MetricRegistry())
        block = TelemetryBlock.from_entries(
            [make_entry("a", time=0), make_entry("b", time=0)]
        )
        block.cold_counts = block.cold_counts[:, :-1]
        with pytest.raises(TraceError, match=r"TelemetryBlock\.cold_counts"):
            store.append_columns(block)
        assert store.rows_total == 0

    def test_out_of_order_block_rejected_whole_at_seal_boundary(
        self, tmp_path
    ):
        """A bad block straddling the segment-seal threshold must leave
        the buffer, the watermarks, and the segment list untouched."""
        registry = MetricRegistry()
        store = TraceStore(tmp_path / "s", buffer_rows=4, registry=registry)
        store.append(make_entry("a", time=300))
        store.append(make_entry("a", time=600))
        store.append(make_entry("b", time=300))
        before = dump(store)

        bad = TelemetryBlock.from_entries([
            make_entry("a", time=900),
            make_entry("b", time=0),  # older than b's watermark
        ])
        with pytest.raises(TraceError, match="out-of-order"):
            store.append_columns(bad)
        assert store.rows_total == 3
        assert store.flush_count == 0  # 3 rows buffered, seal untriggered
        assert dump(store) == before
        assert registry.value("repro_tracestore_blocks_total") == 0
        assert registry.value("repro_tracestore_block_rows_total") == 0
        assert registry.value("repro_tracestore_rows_total") == 3

        # The corrected window still lands — and crosses the seal.
        good = TelemetryBlock.from_entries([
            make_entry("a", time=900),
            make_entry("b", time=600),
        ])
        store.append_columns(good)
        assert store.rows_total == 5
        assert store.flush_count == 1
        assert registry.value("repro_tracestore_block_rows_total") == 2
        assert registry.value("repro_tracestore_rows_total") == 5

    def test_rejected_block_does_not_grow_string_tables(self, tmp_path):
        store = TraceStore(tmp_path / "s", registry=MetricRegistry())
        store.append(make_entry("a", time=600))
        bad = TelemetryBlock.from_entries([
            make_entry("brand-new-job", time=900, machine="m9"),
            make_entry("a", time=300),  # behind a's watermark
        ])
        with pytest.raises(TraceError, match="out-of-order"):
            store.append_columns(bad)
        assert store.jobs == ["a"]
        assert store.machines == ["m0"]

    def test_out_of_order_within_block_rejected(self, tmp_path):
        store = TraceStore(tmp_path / "s", registry=MetricRegistry())
        bad = TelemetryBlock.from_entries([
            make_entry("a", time=600),
            make_entry("a", time=300),
        ])
        with pytest.raises(TraceError, match="out-of-order"):
            store.append_columns(bad)
        assert store.rows_total == 0


class TestBlockEntryEquivalence:
    """Blocks must store exactly what the per-entry oracle stores."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_randomized_blocks_match_entry_and_batch_paths(
        self, tmp_path, seed
    ):
        windows = random_windows(windows=10, jobs=5, seed=seed)
        one = TraceStore(tmp_path / "entry", buffer_rows=16,
                         registry=MetricRegistry())
        batched = TraceStore(tmp_path / "batch", buffer_rows=16,
                             registry=MetricRegistry())
        blocked = TraceStore(tmp_path / "block", buffer_rows=16,
                             registry=MetricRegistry())
        for window in windows:
            for entry in window:
                one.append(entry)
            batched.append_batch(window)
            blocked.append_columns(TelemetryBlock.from_entries(window))

        assert dump(blocked) == dump(one)
        assert blocked.rows_total == one.rows_total
        assert blocked.jobs == one.jobs
        assert blocked.machines == one.machines
        assert (
            [w.to_dict() for w in blocked.window_summaries()]
            == [w.to_dict() for w in one.window_summaries()]
        )
        # Batch and block share delivery granularity: after a final
        # flush the two stores must be byte-identical on disk,
        # manifest included.
        batched.flush()
        blocked.flush()
        batched.close()
        blocked.close()
        assert dir_bytes(tmp_path / "block") == dir_bytes(tmp_path / "batch")

    def test_identity_and_shuffled_blocks_store_identically(self, tmp_path):
        """The identity fast path (sorted job ordinals) and the generic
        path (shuffled rows) must persist the same logical content."""
        windows = random_windows(windows=6, jobs=4, seed=9)
        sorted_store = TraceStore(tmp_path / "sorted",
                                  registry=MetricRegistry())
        shuffled_store = TraceStore(tmp_path / "shuffled",
                                    registry=MetricRegistry())
        for window in windows:
            ordered = sorted(window, key=lambda e: e.job_id)
            sorted_store.append_columns(TelemetryBlock.from_entries(ordered))
            shuffled_store.append_columns(TelemetryBlock.from_entries(window))
        a = dump(sorted_store)
        b = dump(shuffled_store)
        assert sorted(a) == sorted(b)
        for job_id in a:
            assert a[job_id] == b[job_id]

    def test_repeated_job_table_blocks_roundtrip(self, tmp_path):
        """Many windows with the same stable job population (the LUT
        cache's steady state) plus a new job arriving mid-stream."""
        store = TraceStore(tmp_path / "s", registry=MetricRegistry())
        oracle = TraceStore(tmp_path / "o", registry=MetricRegistry())
        for w in range(12):
            window = [
                make_entry(f"job-{j}", time=w * 300, seed=w * 10 + j)
                for j in range(3)
            ]
            if w >= 6:  # a new job joins the fleet mid-stream
                window.append(
                    make_entry("late-arrival", time=w * 300, seed=w)
                )
            store.append_columns(TelemetryBlock.from_entries(window))
            oracle.append_batch(window)
        assert dump(store) == dump(oracle)


class BlockFlakySink:
    """A block-capable sink whose availability the test toggles."""

    def __init__(self, inner):
        self.inner = inner
        self.down = False

    def add(self, entry):
        if self.down:
            raise RuntimeError("sink offline")
        self.inner.add(entry)

    def add_batch(self, entries):
        if self.down:
            raise RuntimeError("sink offline")
        self.inner.add_batch(entries)

    def add_block(self, block):
        if self.down:
            raise RuntimeError("sink offline")
        self.inner.add_block(block)


COMPRESSIBLE = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)


def columnar_machine(seed=4):
    config = MachineConfig(
        dram_bytes=1 << 30,
        mode=FarMemoryMode.PROACTIVE,
        kernel="columnar",
    )
    machine = Machine(
        "m0", config, seeds=SeedSequenceFactory(seed),
        registry=MetricRegistry(), tracer=Tracer(),
    )
    for j in range(3):
        machine.add_job(f"job-{j}", 100, COMPRESSIBLE)
        machine.allocate(f"job-{j}", 100)
    return machine


class TestExporterBlockFailure:
    """A failed ``add_block`` spills the window's rows in order; after
    the sink heals nothing is lost, duplicated, or double-counted."""

    def run_exporter(self, root, registry, outage=None):
        machine = columnar_machine()
        db = ColumnarTraceDatabase(root, registry=registry)
        sink = BlockFlakySink(db)
        exporter = TelemetryExporter(
            machine, sink, registry=registry, tracer=Tracer()
        )
        assert machine.pool is not None  # block path active
        for t in range(0, 3601, 300):
            if outage is not None:
                sink.down = outage[0] <= t <= outage[1]
            machine.tick(t)
            exporter.maybe_export(t)
        sink.down = False
        # Keep exporting until the retry backoff elapses and the spill
        # buffer drains.
        t = 3900
        while exporter.sink_degraded and t < 3600 + 5 * HOUR:
            machine.tick(t)
            exporter.maybe_export(t)
            t += 300
        db.flush()
        return machine, db, exporter

    def test_block_failure_spills_and_replays_in_order(self, tmp_path):
        oracle_reg = MetricRegistry()
        _, oracle_db, _ = self.run_exporter(tmp_path / "oracle", oracle_reg)

        registry = MetricRegistry()
        _, db, exporter = self.run_exporter(
            tmp_path / "flaky", registry, outage=(900, 1500)
        )
        assert not exporter.sink_degraded
        spilled = registry.value("repro_telemetry_spilled_entries_total")
        assert spilled > 0
        assert registry.value(
            "repro_telemetry_replayed_entries_total") == spilled
        assert registry.value("repro_telemetry_dropped_entries_total") == 0

        # Ordered, complete replay: per-job store contents match a
        # fault-free run of the identical machine.
        assert dump(db.store) == dump(oracle_db.store)

        # No double count: a failed add_block lands zero rows, so the
        # rows counter agrees exactly with what the store holds.
        assert registry.value(
            "repro_tracestore_rows_total") == db.store.rows_total

    def test_rows_metric_matches_store_under_mid_stream_failures(
        self, tmp_path
    ):
        registry = MetricRegistry()
        _, db, _ = self.run_exporter(
            tmp_path / "flaky2", registry, outage=(600, 2100)
        )
        assert registry.value(
            "repro_tracestore_rows_total") == db.store.rows_total
        assert registry.value(
            "repro_tracestore_block_rows_total") <= db.store.rows_total


class TestSinkOutageColumnarFleet:
    """The sink_outage chaos scenario against the full zero-copy stack:
    columnar kernel, cluster pool, block-capable columnar store."""

    DURATION = 2 * HOUR

    def columnar_fleet(self, root, seed=33):
        registry = MetricRegistry()
        db = ColumnarTraceDatabase(root, registry=registry)
        fleet = quickfleet(
            clusters=1,
            machines_per_cluster=2,
            jobs_per_machine=3,
            seed=seed,
            kernel="columnar",
            pool_scope="cluster",
            registry=registry,
            tracer=Tracer(),
            trace_db=db,
        )
        return fleet, db, registry

    def test_ordered_replay_without_double_counting(self, tmp_path):
        baseline, base_db, _ = self.columnar_fleet(tmp_path / "base")
        chaotic, chaos_db, registry = self.columnar_fleet(tmp_path / "chaos")
        plan = FaultPlan(events=(
            FaultEvent(time=1800, kind=FaultKind.SINK_OUTAGE,
                       duration=1800, target=ALL_MACHINES),
        ))
        chaotic.clusters[0].attach_fault_injector(
            FaultInjector(plan, SeedSequenceFactory(5))
        )
        baseline.run(self.DURATION)
        chaotic.run(self.DURATION)
        base_db.flush()
        chaos_db.flush()

        assert registry.value("repro_telemetry_sink_outages_total") > 0
        spilled = registry.value("repro_telemetry_spilled_entries_total")
        assert spilled > 0
        assert registry.value(
            "repro_telemetry_replayed_entries_total") == spilled
        assert registry.value("repro_telemetry_dropped_entries_total") == 0
        for exporter in chaotic.clusters[0].exporters.values():
            assert not exporter.sink_degraded

        # Every row counted exactly once despite mid-outage block
        # failures: the metric agrees with the store itself...
        assert registry.value(
            "repro_tracestore_rows_total") == chaos_db.store.rows_total
        # ...and the delivered traces are exactly the fault-free ones.
        assert dump(chaos_db.store) == dump(base_db.store)
