"""Far-memory trace schema (paper §5.3).

Each trace entry captures one job's far-memory statistics aggregated over a
5-minute period — exactly the triple the paper's telemetry exports:

* the **working set size** (pages touched within the minimum threshold),
* the **promotion histogram** accumulated over the period (would-be
  promotions at every candidate threshold),
* the **cold-age histogram** snapshot at the end of the period.

These entries are all the fast far memory model needs to replay the §4.3
control algorithm offline under any parameter configuration: the histograms
carry information about *all* candidate thresholds simultaneously.

Entries are plain data with dict/JSON round-tripping so traces can be
persisted to the external database (:mod:`repro.cluster.trace_db`) and
shipped to the autotuner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.common.errors import TraceError
from repro.core.histograms import AgeBins, AgeHistogram

__all__ = ["TRACE_PERIOD_SECONDS", "TraceEntry", "JobTrace"]

#: Aggregation period of one trace entry (the paper uses 5 minutes).
TRACE_PERIOD_SECONDS = 300


def _histogram_to_lists(histogram: AgeHistogram) -> Tuple[List[int], int]:
    return histogram.counts.tolist(), histogram.young_count


def _histogram_from_lists(
    bins: AgeBins, counts: Sequence[int], young: int
) -> AgeHistogram:
    histogram = AgeHistogram(bins)
    counts = np.asarray(counts, dtype=np.int64)
    if counts.shape != histogram.counts.shape:
        raise TraceError(
            f"histogram has {counts.size} bins, grid expects "
            f"{histogram.counts.size}"
        )
    histogram.counts = counts
    histogram.young_count = int(young)
    return histogram


@dataclass
class TraceEntry:
    """One job's 5-minute far-memory statistics.

    Attributes:
        job_id: the job this entry describes.
        machine_id: where the job was running.
        time: start of the aggregation period (seconds).
        working_set_pages: pages accessed within the minimum threshold.
        promotion_histogram: would-be promotions during this period, by age.
        cold_age_histogram: page-age snapshot at the end of the period.
        resident_pages: total resident pages (near + far).
        cpu_cores: the job's average CPU usage in cores (for overhead
            normalization in Fig. 8).
    """

    job_id: str
    machine_id: str
    time: int
    working_set_pages: int
    promotion_histogram: AgeHistogram
    cold_age_histogram: AgeHistogram
    resident_pages: int
    cpu_cores: float = 1.0

    def __post_init__(self) -> None:
        if self.promotion_histogram.bins.thresholds != (
            self.cold_age_histogram.bins.thresholds
        ):
            raise TraceError("trace histograms must share one threshold grid")
        if self.working_set_pages < 0 or self.resident_pages < 0:
            raise TraceError("page counts must be non-negative")

    @property
    def bins(self) -> AgeBins:
        """The candidate-threshold grid these histograms use."""
        return self.promotion_histogram.bins

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to JSON-compatible primitives."""
        promo_counts, promo_young = _histogram_to_lists(self.promotion_histogram)
        cold_counts, cold_young = _histogram_to_lists(self.cold_age_histogram)
        return {
            "job_id": self.job_id,
            "machine_id": self.machine_id,
            "time": self.time,
            "working_set_pages": self.working_set_pages,
            "thresholds": list(self.bins.thresholds),
            "promotion_counts": promo_counts,
            "promotion_young": promo_young,
            "cold_counts": cold_counts,
            "cold_young": cold_young,
            "resident_pages": self.resident_pages,
            "cpu_cores": self.cpu_cores,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEntry":
        """Inverse of :meth:`to_dict`."""
        try:
            bins = AgeBins(tuple(int(t) for t in data["thresholds"]))
            return cls(
                job_id=data["job_id"],
                machine_id=data["machine_id"],
                time=int(data["time"]),
                working_set_pages=int(data["working_set_pages"]),
                promotion_histogram=_histogram_from_lists(
                    bins, data["promotion_counts"], data["promotion_young"]
                ),
                cold_age_histogram=_histogram_from_lists(
                    bins, data["cold_counts"], data["cold_young"]
                ),
                resident_pages=int(data["resident_pages"]),
                cpu_cores=float(data.get("cpu_cores", 1.0)),
            )
        except KeyError as missing:
            raise TraceError(f"trace entry missing field {missing}") from None


@dataclass
class JobTrace:
    """The time-ordered trace of one job (one replay unit).

    Attributes:
        job_id: the job identifier.
        entries: entries sorted by time.
    """

    job_id: str
    entries: List[TraceEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def append(self, entry: TraceEntry) -> None:
        """Add an entry, enforcing job identity and time order."""
        if entry.job_id != self.job_id:
            raise TraceError(
                f"entry for job {entry.job_id} appended to trace of "
                f"{self.job_id}"
            )
        if self.entries and entry.time < self.entries[-1].time:
            raise TraceError(
                f"out-of-order trace entry at t={entry.time} after "
                f"t={self.entries[-1].time}"
            )
        self.entries.append(entry)

    @property
    def duration_seconds(self) -> int:
        """Span from first entry to one period past the last."""
        if not self.entries:
            return 0
        return (
            self.entries[-1].time - self.entries[0].time + TRACE_PERIOD_SECONDS
        )

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Serialize all entries."""
        return [entry.to_dict() for entry in self.entries]

    @classmethod
    def from_dicts(cls, job_id: str, dicts: Sequence[Dict[str, Any]]) -> "JobTrace":
        """Rebuild a trace from serialized entries."""
        trace = cls(job_id)
        for data in dicts:
            trace.append(TraceEntry.from_dict(data))
        return trace
