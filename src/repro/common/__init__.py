"""Shared infrastructure: units, RNG streams, validation, sim-time, events."""

from repro.common.errors import (
    AutotunerError,
    ConfigurationError,
    OutOfMemoryError,
    ReproError,
    SchedulingError,
    SimulationError,
    TraceError,
)
from repro.common.events import Event, EventLog
from repro.common.rng import SeedSequenceFactory, stream
from repro.common.simtime import DEFAULT_TICK_SECONDS, Clock, PeriodicSchedule
from repro.common import units

__all__ = [
    "AutotunerError",
    "Clock",
    "ConfigurationError",
    "DEFAULT_TICK_SECONDS",
    "Event",
    "EventLog",
    "OutOfMemoryError",
    "PeriodicSchedule",
    "ReproError",
    "SchedulingError",
    "SeedSequenceFactory",
    "SimulationError",
    "TraceError",
    "stream",
    "units",
]
