"""Multi-tier far memory (the paper's future-work §8).

The paper closes with: "an exciting end state would be one where the
system uses both hardware and software approaches and multiple tiers of
far memory (sub-µs tier-1 and single-µs tier-2), all managed intelligently".
This module implements that end state as a device-model layer:

* :class:`FarMemoryDevice` — a latency/capacity/cost description of one
  tier (presets for zswap, Optane-DIMM-like NVM, Z-SSD-like flash, and a
  hardware-compression-accelerator variant of zswap);
* :class:`TieredFarMemory` — a placement policy over multiple tiers: the
  coldest pages go to the cheapest (slowest) tier, governed by one cold-age
  threshold per tier (thresholds must increase with tier distance);
* :func:`tier_assignment_from_histogram` — the offline what-if version:
  given a job's cold-age histogram and per-tier thresholds, how many pages
  land in each tier and what is the expected access penalty.

The control-plane abstractions (§4) carry over unchanged: each tier's
threshold is just another output of the same SLO machinery, which is
exactly the generalization the paper claims its design permits ("our
control plane is not tied to any specific far memory device").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.units import GIB, PAGE_SIZE
from repro.common.validation import (
    check_fraction,
    check_positive,
    check_sorted_unique,
    require,
)
from repro.core.histograms import AgeHistogram

__all__ = [
    "FarMemoryDevice",
    "ZSWAP_DEVICE",
    "ZSWAP_ACCEL_DEVICE",
    "NVM_DEVICE",
    "ZSSD_DEVICE",
    "TierAssignment",
    "TieredFarMemory",
    "tier_assignment_from_histogram",
]


@dataclass(frozen=True)
class FarMemoryDevice:
    """One far-memory technology, as the TCO model sees it.

    Attributes:
        name: human-readable technology name.
        read_latency_seconds: page-granular access latency (median).
        relative_cost_per_byte: cost of holding one logical byte, as a
            fraction of DRAM cost (zswap at 3x compression = ~0.33).
        fixed_capacity_bytes: None for elastic tiers (zswap); a fixed
            device size for hardware tiers (the stranding risk of §2.1).
        write_asymmetry: write cost multiplier vs reads (NVM is slower to
            write).
    """

    name: str
    read_latency_seconds: float
    relative_cost_per_byte: float
    fixed_capacity_bytes: Optional[int] = None
    write_asymmetry: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.read_latency_seconds, "read_latency_seconds")
        check_fraction(self.relative_cost_per_byte, "relative_cost_per_byte")
        if self.fixed_capacity_bytes is not None:
            check_positive(self.fixed_capacity_bytes, "fixed_capacity_bytes")
        check_positive(self.write_asymmetry, "write_asymmetry")


#: Software-defined far memory: the paper's measured operating point
#: (6.4 us decompress, 1/3 of DRAM cost at 3x compression, elastic).
ZSWAP_DEVICE = FarMemoryDevice(
    name="zswap (lzo, software)",
    read_latency_seconds=6.4e-6,
    relative_cost_per_byte=0.33,
)

#: zswap with a tightly-coupled compression accelerator (§8): better
#: ratios from heavier codecs at lower latency.
ZSWAP_ACCEL_DEVICE = FarMemoryDevice(
    name="zswap (hardware accelerator)",
    read_latency_seconds=2.0e-6,
    relative_cost_per_byte=0.22,
)

#: Optane-DC-Persistent-Memory-like NVM DIMM: sub-us loads, fixed size.
NVM_DEVICE = FarMemoryDevice(
    name="NVM DIMM (Optane-like)",
    read_latency_seconds=0.4e-6,
    relative_cost_per_byte=0.5,
    fixed_capacity_bytes=128 * GIB,
    write_asymmetry=3.0,
)

#: Z-SSD-like low-latency flash over PCIe: tens of us, very cheap.
ZSSD_DEVICE = FarMemoryDevice(
    name="Z-SSD (PCIe flash)",
    read_latency_seconds=20e-6,
    relative_cost_per_byte=0.05,
    fixed_capacity_bytes=512 * GIB,
    write_asymmetry=2.0,
)


@dataclass(frozen=True)
class TierAssignment:
    """Result of assigning one job's pages to tiers.

    Attributes:
        pages_per_tier: pages stored in each tier (tier order preserved);
            index 0 is near memory (DRAM).
        expected_access_seconds_per_min: expected stall time per minute,
            from each tier's access rate x latency.
        dram_cost_saving_fraction: saved DRAM cost as a fraction of the
            job's total memory cost.
        stranded_pages_per_tier: demand that exceeded a fixed tier's
            capacity and had to stay one tier up.
    """

    pages_per_tier: Tuple[int, ...]
    expected_access_seconds_per_min: float
    dram_cost_saving_fraction: float
    stranded_pages_per_tier: Tuple[int, ...]


class TieredFarMemory:
    """A stack of far-memory tiers ordered near to far.

    Args:
        devices: tiers ordered by increasing coldness (tier 1 holds the
            warmest far pages, the last tier the coldest).
        thresholds_seconds: cold-age threshold at which a page becomes
            eligible for each tier; strictly increasing, one per device.
    """

    def __init__(
        self,
        devices: Sequence[FarMemoryDevice],
        thresholds_seconds: Sequence[float],
    ):
        require(len(devices) >= 1, "need at least one far-memory tier")
        require(
            len(devices) == len(thresholds_seconds),
            "one threshold per device required",
        )
        check_sorted_unique(list(thresholds_seconds), "thresholds_seconds")
        self.devices = list(devices)
        self.thresholds_seconds = [float(t) for t in thresholds_seconds]

    def assign(
        self,
        cold_age_histogram: AgeHistogram,
        promotion_histogram: AgeHistogram,
        interval_seconds: float = 60.0,
    ) -> TierAssignment:
        """Assign a job's pages to tiers and price the outcome.

        Pages idle in ``[threshold[i], threshold[i+1])`` land in tier i;
        pages younger than the first threshold stay in DRAM.  Expected
        stall per minute multiplies each tier's would-be promotions by its
        read latency.  Fixed-capacity tiers overflow upward (stranding).
        """
        return tier_assignment_from_histogram(
            self.devices,
            self.thresholds_seconds,
            cold_age_histogram,
            promotion_histogram,
            interval_seconds,
        )


def tier_assignment_from_histogram(
    devices: Sequence[FarMemoryDevice],
    thresholds: Sequence[float],
    cold_age_histogram: AgeHistogram,
    promotion_histogram: AgeHistogram,
    interval_seconds: float = 60.0,
) -> TierAssignment:
    """Pure function behind :meth:`TieredFarMemory.assign`."""
    total_pages = cold_age_histogram.total
    cold_at = [cold_age_histogram.colder_than(t) for t in thresholds]
    promos_at = [promotion_histogram.colder_than(t) for t in thresholds]

    pages_per_tier: List[int] = []
    stranded: List[int] = []
    carry = 0
    for i, device in enumerate(devices):
        in_band = cold_at[i] - (cold_at[i + 1] if i + 1 < len(cold_at) else 0)
        demand = in_band + carry
        if device.fixed_capacity_bytes is not None:
            capacity_pages = device.fixed_capacity_bytes // PAGE_SIZE
            stored = min(demand, capacity_pages)
        else:
            stored = demand
        # Overflow falls to the NEXT (colder, larger) tier if one exists;
        # from the last tier it is stranded back in DRAM.
        overflow = demand - stored
        pages_per_tier.append(int(stored))
        if i + 1 < len(devices):
            carry = overflow
            stranded.append(0)
        else:
            carry = 0
            stranded.append(int(overflow))

    near_pages = total_pages - sum(pages_per_tier)
    scale = 60.0 / interval_seconds
    stall = 0.0
    for i, device in enumerate(devices):
        band_promos = promos_at[i] - (
            promos_at[i + 1] if i + 1 < len(promos_at) else 0
        )
        stall += band_promos * scale * device.read_latency_seconds

    if total_pages > 0:
        saving = sum(
            pages * (1.0 - device.relative_cost_per_byte)
            for pages, device in zip(pages_per_tier, devices)
        ) / total_pages
    else:
        saving = 0.0

    return TierAssignment(
        pages_per_tier=(near_pages, *pages_per_tier),
        expected_access_seconds_per_min=stall,
        dram_cost_saving_fraction=saving,
        stranded_pages_per_tier=(0, *stranded),
    )
