"""Tick-path module: FLOW001 sinks and the CON001/CON002 contract owner."""

import numpy as np

from seeded_pkg.util.helpers import jitter, pure

COLUMN_CONTRACTS = {
    "Pool.ages": {"dtype": "int32", "ndim": 1},
    "Pool.counts": {"dtype": "int64", "ndim": 2},
}


class Pool:
    def __init__(self, n: int) -> None:
        # CON001: declared int32, assigned float64.
        self.ages = np.zeros(n, dtype=np.float64)
        # CON001: declared ndim=2, assigned a rank-1 constructor.
        self.counts = np.zeros(n, dtype=np.int64)
        # CON002: public array column with no declared contract.
        self.extra = np.zeros(n, dtype=np.int64)


def tick(state: float) -> float:
    # FLOW001: jitter() -> wall_now() -> time.time() enters the tick path
    # right here — the finding anchors on this line.
    return state + jitter()


def tick_suppressed(state: float) -> float:
    # Same taint, but accepted: the sink-line noqa must swallow it.
    return state + jitter()  # repro: noqa[FLOW001]


def tick_clean(state: int) -> int:
    # Calls only the clean helper: no finding.
    return pure(state)
