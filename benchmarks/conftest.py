"""Shared fixtures for the benchmark harness.

The expensive simulations run once per session here; individual benchmark
files compute and verify their figure from the shared state and persist the
regenerated figure text under ``results/``.

Calibration (see DESIGN.md §5): jobs are 16-64 MiB so the promotion-rate
SLO is not dominated by integer-quantization noise, the fleet-mean cold
target is set so the measured cold fraction at T=120 s lands near the
paper's 32 %, and the hand-tuned baseline uses K=98, S=1800.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import slo_violation_fraction
from repro.cluster import quickfleet
from repro.common.units import HOUR, MIB, PAGE_SIZE
from repro.core import ThresholdPolicyConfig
from repro.model import FarMemoryModel
from repro.autotuner import AutotuningPipeline

#: The hand-tuned baseline configuration (paper's stage B-C).  Manual
#: tuning in production is risk-averse — a long warm-up and a very high
#: percentile were the kind of "educated guess" the paper's months-long
#: A/B testing produced; the autotuner's job is to find the real frontier.
HAND_TUNED = ThresholdPolicyConfig(percentile_k=99.0, warmup_seconds=7200)

#: A deployed-system configuration (the kind of point the autotuner lands
#: on); the steady-state measurement figures (8, 9, TCO) reflect the
#: running production system, not the conservative manual baseline.
DEPLOYED = ThresholdPolicyConfig(percentile_k=97.0, warmup_seconds=1800)

#: Warm-up cut applied before measuring steady-state SLIs.
STEADY_STATE_AFTER = 3 * HOUR

BENCH_FLEET_KWARGS = dict(
    clusters=3,
    machines_per_cluster=2,
    jobs_per_machine=4,
    machine_dram_gib=8.0,
    mean_cold_fraction=0.20,
    job_pages_range=((16 * MIB) // PAGE_SIZE, (64 * MIB) // PAGE_SIZE),
)

#: The larger measurement fleet behind the distribution figures — the
#: paper plots its top-10 clusters, so we build 10 clusters of 4 machines.
MEASUREMENT_FLEET_KWARGS = dict(
    clusters=10,
    machines_per_cluster=4,
    jobs_per_machine=3,
    machine_dram_gib=4.0,
    mean_cold_fraction=0.20,
    job_pages_range=((16 * MIB) // PAGE_SIZE, (64 * MIB) // PAGE_SIZE),
)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory the regenerated figures are written to."""
    path = pathlib.Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Persist one figure's text output (and echo it for -s runs)."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def paper_fleet():
    """The main measurement fleet: 10 clusters, 8 simulated hours under
    deployed parameters.  Used by Figs. 1, 2, 3, 6, 8, 9 and TCO."""
    fleet = quickfleet(seed=42, policy_config=DEPLOYED,
                       **MEASUREMENT_FLEET_KWARGS)
    fleet.run(8 * HOUR)
    return fleet


@pytest.fixture(scope="session")
def steady_sli(paper_fleet):
    """Steady-state SLI samples from the measurement fleet."""
    return [
        s
        for s in paper_fleet.sli_history
        if s.time >= STEADY_STATE_AFTER and s.working_set_pages > 0
    ]


@pytest.fixture(scope="session")
def autotune_run():
    """The longitudinal autotuning experiment behind Figs. 5 and 7.

    Phase 1 (hand-tuned, 6 h) -> autotune on recorded traces -> deploy ->
    phase 2 (tuned, 5 h).  The fleet churns (finite job lifetimes with
    replacement) so the warm-up parameter S is live.  Returns everything
    the figure benches need.
    """
    churn = dict(churn_duration_range=(2 * HOUR, 12 * HOUR))
    fleet = quickfleet(seed=7, policy_config=HAND_TUNED,
                       **BENCH_FLEET_KWARGS, **churn)
    # An identical-seed control fleet stays on the hand-tuned parameters
    # for the whole run, so the Fig. 5 comparison isolates the autotuner
    # from coverage drift that happens with time anyway.
    control = quickfleet(seed=7, policy_config=HAND_TUNED,
                         **BENCH_FLEET_KWARGS, **churn)
    fleet.run(6 * HOUR)
    control.run(6 * HOUR)
    before_report = fleet.coverage_report()
    before_sli = [
        s
        for s in fleet.sli_history
        if s.time >= STEADY_STATE_AFTER and s.working_set_pages > 0
    ]
    rollout_time = fleet.now

    model = FarMemoryModel(fleet.trace_db.traces())
    pipeline = AutotuningPipeline(model, batch_size=4, seed=0)
    tuning = pipeline.run(iterations=5)
    best = tuning.best_config

    fleet.deploy_policy(best)
    fleet.run(5 * HOUR)
    control.run(5 * HOUR)
    after_report = fleet.coverage_report()
    control_report = control.coverage_report()
    after_sli = [
        s
        for s in fleet.sli_history
        if s.time >= rollout_time + 2 * HOUR and s.working_set_pages > 0
    ]
    control_sli = [
        s
        for s in control.sli_history
        if s.time >= rollout_time + 2 * HOUR and s.working_set_pages > 0
    ]
    return {
        "fleet": fleet,
        "control": control,
        "tuning": tuning,
        "best_config": best,
        "rollout_time": rollout_time,
        "before_report": before_report,
        "after_report": after_report,
        "control_report": control_report,
        "before_sli": before_sli,
        "after_sli": after_sli,
        "control_sli": control_sli,
        "before_violation_fraction": slo_violation_fraction(before_sli),
        "after_violation_fraction": slo_violation_fraction(after_sli),
    }
