"""Chaos determinism for the online canary controller.

Every fault scenario in :mod:`repro.faults` is replayed through a full
canary round twice — once with serial soaks, once through the parallel
``FleetEngine`` — and the two :class:`CanaryDecision`\\ s must agree
bit-for-bit on :meth:`CanaryDecision.signature`, floats included. The
controller has no wall clock and no RNG of its own, so any divergence
here means nondeterminism leaked into the rollout path.
"""

import pytest

from repro.autotuner import DeploymentStage, FleetController
from repro.cluster import quickfleet
from repro.core.threshold_policy import (
    FixedThresholdPolicy,
    PaperPolicy,
)
from repro.engine import FleetEngine
from repro.faults import SCENARIO_NAMES, attach_scenario
from repro.obs import MetricRegistry, Tracer


STAGES = (
    DeploymentStage("qualification", 0.5, 600),
    DeploymentStage("production", 1.0, 600),
)

#: Warmup plus both soaks — every scenario spans the whole round, and
#: sink_outage's middle third (600..1200 s) blankets the first soak.
SCENARIO_SECONDS = 1800

WORKERS = 2


def run_canary(scenario, policy, *, slo_limit, parallel, seed=31):
    registry, tracer = MetricRegistry(), Tracer()
    fleet = quickfleet(
        clusters=2,
        machines_per_cluster=2,
        jobs_per_machine=2,
        seed=seed,
        churn_duration_range=(900, 1800),
        registry=registry,
        tracer=tracer,
    )
    attach_scenario(
        fleet, scenario, duration_seconds=SCENARIO_SECONDS, seed=7
    )
    fleet.run(600)  # warm up under chaos
    engine = FleetEngine(fleet, workers=WORKERS) if parallel else None
    controller = FleetController(
        fleet,
        stages=STAGES,
        slo_limit=slo_limit,
        registry=registry,
        tracer=tracer,
        engine=engine,
    )
    return controller.canary(policy), fleet


class TestDecisionsAreEngineInvariant:
    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_serial_and_parallel_agree_bit_for_bit(self, scenario):
        serial, _ = run_canary(
            scenario, PaperPolicy(), slo_limit=0.2, parallel=False
        )
        parallel, _ = run_canary(
            scenario, PaperPolicy(), slo_limit=0.2, parallel=True
        )
        assert serial.signature() == parallel.signature()
        assert serial.reason in (
            "promoted", "slo-breach", "insufficient-coverage"
        )


class TestRollbackUnderChaos:
    @pytest.mark.parametrize("scenario", ["storm", "mixed"])
    def test_breaching_policy_never_survives_chaos(self, scenario):
        # A near-zero promotion budget forces the first stage to fail
        # whatever the scenario does; the fault episodes must not keep
        # the breaching policy alive anywhere in the fleet.
        breaching = FixedThresholdPolicy(
            threshold_seconds=120.0, warmup_seconds=0
        )
        decision, fleet = run_canary(
            scenario, breaching, slo_limit=1e-6, parallel=True
        )
        assert not decision.promoted
        for cluster in fleet.clusters:
            assert cluster.policy != breaching
            for agent in cluster.agents.values():
                assert agent.policy != breaching

    def test_sink_outage_starves_the_canary_closed(self):
        # The blanket outage silences every machine across the first
        # soak: the controller must fail closed, not promote on silence.
        decision, _ = run_canary(
            "sink_outage", PaperPolicy(), slo_limit=1e9, parallel=False
        )
        assert not decision.promoted
        assert decision.reason == "insufficient-coverage"
