"""Observability: metrics registry, span tracing, wall-clock profiling.

The subsystem the paper's §5.2-5.3 "rigorous monitoring" implies but
never details: a zero-dependency, injectable, off-able metrics and
tracing layer the kernel daemons, node agent, telemetry exporter,
autotuner, and fleet all report into.
"""

from repro.obs.metrics import (
    CardinalityError,
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    KNOWN_METRIC_NAMES,
    MetricError,
    MetricName,
    MetricRegistry,
    NULL_REGISTRY,
    get_registry,
    set_registry,
)
from repro.obs.tracing import (
    NULL_TRACER,
    SpanRecord,
    SpanStats,
    Tracer,
    get_tracer,
    set_tracer,
)
from repro.obs.profiling import (
    Stopwatch,
    SubsystemStats,
    flame_table,
    profile_to_registry,
    subsystem_table,
)

__all__ = [
    "CardinalityError",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "KNOWN_METRIC_NAMES",
    "MetricError",
    "MetricName",
    "MetricRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "SpanRecord",
    "SpanStats",
    "Stopwatch",
    "SubsystemStats",
    "Tracer",
    "flame_table",
    "get_registry",
    "get_tracer",
    "profile_to_registry",
    "set_registry",
    "set_tracer",
    "subsystem_table",
]
