"""Staged deployment with monitoring and rollback (paper §5.3).

"The deployment happens in multiple stages from qualification to production
with rigorous monitoring at each stage in order to detect bad
configurations and roll back if necessary before causing a large-scale
impact."

:class:`StagedDeployment` rolls a policy to progressively larger slices of
the fleet; after each stage it runs the fleet forward, measures the SLO on
the slice, and either advances, or rolls every touched cluster back to the
configuration it was actually running before the rollout started.

Three hard-won properties of a real canary pipeline are encoded here:

* **Fail closed.**  "No alert fired" is only evidence of health when SLI
  samples actually arrived; a telemetry outage must not look like a green
  soak.  Each stage requires at least ``min_coverage`` slice samples or it
  fails with reason ``"insufficient-coverage"``.
* **Attribute every sample.**  Jobs churn during a soak, so job→cluster
  ownership is resolved from scheduler placements over the whole window —
  a sample from a job that exited mid-soak still counts toward the slice
  that ran it.  Samples that cannot be attributed at all are counted in
  the outcome rather than silently dropped.
* **Restore what each cluster ran.**  Clusters may be on heterogeneous
  configurations (a prior partial rollout, per-cluster experiments);
  rollback restores each cluster's own recorded prior policy, never one
  fleet-wide "previous config".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.agent.monitoring import SloMonitor
from repro.common.events import EventKind
from repro.common.validation import check_fraction, check_positive, require
from repro.core.threshold_policy import ColdMemoryPolicy, as_policy
from repro.cluster.wsc import WSC
from repro.obs import MetricName, MetricRegistry, get_registry

__all__ = ["DeploymentStage", "StageOutcome", "StagedDeployment",
           "DEFAULT_STAGES"]


@dataclass(frozen=True)
class DeploymentStage:
    """One rollout stage.

    Attributes:
        name: e.g. ``"qualification"``, ``"canary"``, ``"production"``.
        fleet_fraction: cumulative fraction of clusters running the new
            configuration after this stage.
        soak_seconds: how long to run before judging the stage.
    """

    name: str
    fleet_fraction: float
    soak_seconds: int

    def __post_init__(self) -> None:
        check_fraction(self.fleet_fraction, "fleet_fraction")
        check_positive(self.soak_seconds, "soak_seconds")


#: The paper-style default ladder.
DEFAULT_STAGES = (
    DeploymentStage("qualification", 0.1, 3600),
    DeploymentStage("canary", 0.3, 3600),
    DeploymentStage("production", 1.0, 3600),
)


@dataclass
class StageOutcome:
    """Result of one stage.

    Attributes:
        stage: the stage that ran.
        p98_promotion_rate: measured SLI on the upgraded slice.
        passed: whether the stage met the SLO with enough evidence.
        alerts: names of monitoring rules that fired during the soak.
        reason: ``"advanced"``, ``"slo-breach"``, or
            ``"insufficient-coverage"`` (the fail-closed gate).
        slice_samples: SLI samples attributed to the upgraded slice.
        unattributed_samples: soak samples whose job could not be mapped
            to any cluster (should be zero; nonzero means attribution
            lost data).
    """

    stage: DeploymentStage
    p98_promotion_rate: float
    passed: bool
    alerts: tuple = ()
    reason: str = ""
    slice_samples: int = 0
    unattributed_samples: int = 0


class StagedDeployment:
    """Rolls a new policy through the fleet, stage by stage.

    Args:
        fleet: the WSC to deploy to.
        stages: the rollout ladder (cumulative fractions, increasing).
        slo_limit: maximum acceptable p98 normalized promotion rate.
        min_coverage: minimum slice SLI samples a stage must produce to
            count as evidence; below this the stage **fails closed**.
            ``0`` disables the gate (the pre-fix vacuous-pass behavior).
        registry: metrics registry for the ``repro_canary_*`` series
            (defaults to the process-global one).
        engine: optional :class:`repro.engine.FleetEngine` bound to
            ``fleet``; soaks run through it when given (bit-identical to
            serial by the engine's contract).
    """

    def __init__(
        self,
        fleet: WSC,
        stages: Sequence[DeploymentStage] = DEFAULT_STAGES,
        slo_limit: float = 0.2,
        min_coverage: int = 10,
        registry: Optional[MetricRegistry] = None,
        engine=None,
    ):
        require(len(stages) > 0, "need at least one stage")
        fractions = [s.fleet_fraction for s in stages]
        require(
            all(b >= a for a, b in zip(fractions, fractions[1:])),
            "stage fractions must be non-decreasing",
        )
        check_positive(slo_limit, "slo_limit")
        require(min_coverage >= 0, "min_coverage must be >= 0")
        self.fleet = fleet
        self.stages = list(stages)
        self.slo_limit = float(slo_limit)
        self.min_coverage = int(min_coverage)
        self.registry = registry if registry is not None else get_registry()
        self.engine = engine
        self.outcomes: List[StageOutcome] = []

        self._m_advanced = self.registry.counter(
            MetricName.CANARY_STAGES_ADVANCED_TOTAL,
            "Canary stages that passed and advanced the rollout.",
            ("stage",),
        )
        self._m_rolled_back = self.registry.counter(
            MetricName.CANARY_STAGES_ROLLED_BACK_TOTAL,
            "Canary stages rolled back on an SLO breach.",
            ("stage",),
        )
        self._m_failed_closed = self.registry.counter(
            MetricName.CANARY_STAGES_FAILED_CLOSED_TOTAL,
            "Canary stages failed closed on insufficient SLI coverage.",
            ("stage",),
        )
        self._m_coverage = self.registry.gauge(
            MetricName.CANARY_SLICE_COVERAGE,
            "SLI samples attributed to the canary slice in the last soak.",
            ("stage",),
        )

    def deploy(self, policy: object) -> bool:
        """Run the ladder; returns True if production was reached.

        Args:
            policy: what to roll out — a
                :class:`~repro.core.threshold_policy.ColdMemoryPolicy` or
                a bare :class:`ThresholdPolicyConfig` (coerced to the
                paper policy).

        On a failed stage every touched cluster is rolled back to the
        policy it was running when this call started (recorded
        per-cluster, so heterogeneous fleets are restored exactly) and
        the ladder stops.
        """
        new_policy = as_policy(policy)
        prior: Dict[str, ColdMemoryPolicy] = {
            c.name: c.policy for c in self.fleet.clusters
        }
        upgraded = 0
        for stage in self.stages:
            # Re-read the cluster list each stage: a parallel-engine soak
            # swaps freshly unpickled cluster objects into the fleet, so
            # references held across a soak go stale.
            clusters = self.fleet.clusters
            target = max(1, round(stage.fleet_fraction * len(clusters)))
            for cluster in clusters[upgraded:target]:
                cluster.deploy_policy(new_policy)
                cluster.events.record(
                    self.fleet.now, EventKind.CANARY_DEPLOY,
                    stage=stage.name, policy=new_policy.describe(),
                )
            upgraded = max(upgraded, target)

            # Snapshot job ownership *before* the soak: jobs that exit
            # mid-soak still produced samples under the new policy and
            # must count toward their cluster's slice.
            job_map: Dict[str, str] = {}
            for cluster in clusters:
                for job_id in cluster.running:
                    job_map[job_id] = cluster.name

            before = len(self.fleet.sli_history)
            soak_start = self.fleet.now
            self.fleet.run(stage.soak_seconds, engine=self.engine)
            clusters = self.fleet.clusters

            # Jobs admitted during the soak (churn replacements, crash
            # respawns) appear in the scheduler-placement event stream;
            # fold them in, then anything still running catches stragglers
            # whose placement predates the retained event window.
            for cluster in clusters:
                for event in cluster.events.between(
                    soak_start, self.fleet.now + 1
                ):
                    if event.kind != EventKind.SCHEDULER_PLACE:
                        continue
                    job_id = event.payload.get("job")
                    if job_id is not None:
                        job_map.setdefault(job_id, cluster.name)
                for job_id in cluster.running:
                    job_map.setdefault(job_id, cluster.name)

            slice_ids = {c.name for c in clusters[:upgraded]}
            slice_samples = []
            unattributed = 0
            for sample in self.fleet.sli_history[before:]:
                owner = job_map.get(sample.job_id) if sample.job_id else None
                if owner is None:
                    unattributed += 1
                elif owner in slice_ids:
                    slice_samples.append(sample)

            monitor = SloMonitor(
                window_seconds=stage.soak_seconds, slo_limit=self.slo_limit
            )
            alerts = monitor.observe(self.fleet.now, slice_samples)
            p98 = monitor.window.percentile(98.0)
            self._m_coverage.labels(stage=stage.name).set(
                monitor.samples_ingested
            )

            if monitor.samples_ingested < self.min_coverage:
                passed, reason = False, "insufficient-coverage"
                self._m_failed_closed.labels(stage=stage.name).inc()
            elif not monitor.healthy:
                passed, reason = False, "slo-breach"
                self._m_rolled_back.labels(stage=stage.name).inc()
            else:
                passed, reason = True, "advanced"
                self._m_advanced.labels(stage=stage.name).inc()

            self.outcomes.append(
                StageOutcome(
                    stage, p98, passed,
                    alerts=tuple(a.rule for a in alerts),
                    reason=reason,
                    slice_samples=monitor.samples_ingested,
                    unattributed_samples=unattributed,
                )
            )
            if not passed:
                self._rollback(clusters[:upgraded], prior, stage.name,
                               reason)
                return False
        return True

    def _rollback(self, touched, prior: Dict[str, ColdMemoryPolicy],
                  stage_name: str, reason: str) -> None:
        """Restore every touched cluster to its own recorded prior."""
        for cluster in touched:
            restored = prior[cluster.name]
            cluster.deploy_policy(restored)
            cluster.events.record(
                self.fleet.now, EventKind.CANARY_ROLLBACK,
                stage=stage_name, reason=reason,
                policy=restored.describe(),
            )
