"""ML-based autotuning: GP regression, GP-Bandit, pipeline, deployment,
and the online canary controller."""

from repro.autotuner.controller import (
    CanaryDecision,
    FleetController,
    canary_smoke,
)
from repro.autotuner.deployment import (
    DEFAULT_STAGES,
    DeploymentStage,
    StagedDeployment,
    StageOutcome,
)
from repro.autotuner.gp import GaussianProcess
from repro.autotuner.gp_bandit import GpBandit, Observation
from repro.autotuner.kernels import Kernel, Matern52Kernel, RbfKernel
from repro.autotuner.pipeline import AutotuningPipeline, Trial, TuningResult
from repro.autotuner.search_space import (
    ContinuousParameter,
    IntegerParameter,
    Parameter,
    SearchSpace,
    config_from_values,
    far_memory_search_space,
)

__all__ = [
    "AutotuningPipeline",
    "CanaryDecision",
    "ContinuousParameter",
    "DEFAULT_STAGES",
    "DeploymentStage",
    "FleetController",
    "GaussianProcess",
    "GpBandit",
    "IntegerParameter",
    "Kernel",
    "Matern52Kernel",
    "Observation",
    "Parameter",
    "RbfKernel",
    "SearchSpace",
    "StageOutcome",
    "StagedDeployment",
    "Trial",
    "TuningResult",
    "canary_smoke",
    "config_from_values",
    "far_memory_search_space",
]
