"""Fault plans: seeded, declarative chaos schedules (paper §7, §8.2).

The paper's deployment argument is that software-defined far memory is
safe at warehouse scale because failure domains stay machine-local and
the control plane degrades instead of violating the promotion SLO.  A
:class:`FaultPlan` is the reproducible half of testing that claim: a
sorted schedule of :class:`FaultEvent` records, generated from
:class:`repro.common.rng.SeedSequenceFactory` streams so the exact same
faults land at the exact same simulated instants on every replay —
serial or parallel, today or in CI next year.

Plans are *data*; the side effects live in
:class:`repro.faults.injector.FaultInjector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.common.errors import ReproError
from repro.common.rng import SeedSequenceFactory
from repro.common.validation import check_fraction, check_positive

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanError",
    "KNOWN_FAULT_KINDS",
    "SCENARIO_NAMES",
    "build_scenario",
]

#: Target value meaning "every machine in the cluster".
ALL_MACHINES = -1


class FaultPlanError(ReproError):
    """A fault plan or scenario request is malformed."""


class FaultKind:
    """Canonical fault-kind names.

    Episodic kinds (``duration > 0``) are active over a window and are
    re-asserted level-triggered every tick while the window is open, so
    they survive process moves and runtime rewiring; instantaneous kinds
    fire once at their start time.
    """

    #: Episodic: the machine crashes (jobs die and reschedule) and is
    #: repaired ``duration`` seconds later; ``duration=0`` never repairs.
    MACHINE_CRASH = "machine_crash"
    #: Episodic: the telemetry sink refuses every ``add`` on the target
    #: machines; exporters spill to their retry buffers.
    SINK_OUTAGE = "sink_outage"
    #: Episodic: workload turns mostly incompressible — the zswap payload
    #: cutoff drops to ``magnitude`` of its configured value, rejecting
    #: (and burning CPU on) everything above it.
    INCOMPRESSIBLE_STORM = "incompressible_storm"
    #: Episodic: compression fails outright (cutoff pinned at zero; every
    #: store is rejected), the §3.2 worst case.
    COMPRESSION_FAILURE = "compression_failure"
    #: Instantaneous: a working-set spike — a ``magnitude`` fraction of
    #: every target job's resident pages is touched at once, promoting
    #: whatever was cold.
    MEMORY_PRESSURE = "memory_pressure"
    #: Instantaneous: a ``magnitude`` fraction of the target machines'
    #: jobs get their kernel histograms flagged corrupt; the node agent
    #: reacts by disabling zswap and restarting warm-up.
    HISTOGRAM_CORRUPT = "histogram_corrupt"


#: Every kind a fault event may carry.
KNOWN_FAULT_KINDS = frozenset(
    value
    for name, value in vars(FaultKind).items()
    if not name.startswith("_") and isinstance(value, str)
)

#: Kinds that open an episode (have an end) rather than firing once.
EPISODIC_KINDS = frozenset({
    FaultKind.MACHINE_CRASH,
    FaultKind.SINK_OUTAGE,
    FaultKind.INCOMPRESSIBLE_STORM,
    FaultKind.COMPRESSION_FAILURE,
})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        time: simulation second the fault starts.
        kind: one of :data:`KNOWN_FAULT_KINDS`.
        duration: episode length in seconds for episodic kinds (0 means
            "forever" for crashes; ignored for instantaneous kinds).
        target: machine ordinal within the cluster (taken modulo the
            machine count at injection time) or :data:`ALL_MACHINES`.
        magnitude: kind-specific intensity in ``[0, 1]`` — payload-cutoff
            fraction for storms, touched/flagged fraction for pressure
            spikes and histogram corruption.
    """

    time: int
    kind: str
    duration: int = 0
    target: int = ALL_MACHINES
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_FAULT_KINDS:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.time}")
        if self.duration < 0:
            raise FaultPlanError(
                f"fault duration must be >= 0, got {self.duration}"
            )
        check_fraction(self.magnitude, "magnitude")

    @property
    def end_time(self) -> float:
        """When the episode closes (inf for one-way or instant faults)."""
        if self.kind in EPISODIC_KINDS and self.duration > 0:
            return self.time + self.duration
        return float("inf")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted schedule of fault events.

    Attributes:
        events: the schedule, sorted by (time, kind, target).
        name: scenario label for logs/metrics ("custom" when hand-built).
    """

    events: Tuple[FaultEvent, ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        ordered = tuple(sorted(
            self.events, key=lambda e: (e.time, e.kind, e.target)
        ))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def horizon(self) -> int:
        """Last second at which this plan still changes anything."""
        last = 0
        for event in self.events:
            end = event.end_time
            last = max(last, event.time if end == float("inf") else int(end))
        return last


# ----------------------------------------------------------------------
# Named scenarios
# ----------------------------------------------------------------------

def _crash(seeds: SeedSequenceFactory, duration: int,
           n_machines: int) -> List[FaultEvent]:
    """One machine dies a quarter of the way in, repaired mid-run."""
    rng = seeds.stream("faults.plan.crash")
    return [FaultEvent(
        time=duration // 4,
        kind=FaultKind.MACHINE_CRASH,
        duration=duration // 4,
        target=int(rng.integers(0, n_machines)),
    )]


def _sink_outage(seeds: SeedSequenceFactory, duration: int,
                 n_machines: int) -> List[FaultEvent]:
    """Every exporter loses its sink for the middle third of the run."""
    del seeds, n_machines
    return [FaultEvent(
        time=duration // 3,
        kind=FaultKind.SINK_OUTAGE,
        duration=duration // 3,
        target=ALL_MACHINES,
    )]


def _storm(seeds: SeedSequenceFactory, duration: int,
           n_machines: int) -> List[FaultEvent]:
    """Fleet-wide incompressible storm over the middle half of the run."""
    del seeds, n_machines
    return [FaultEvent(
        time=duration // 4,
        kind=FaultKind.INCOMPRESSIBLE_STORM,
        duration=duration // 2,
        target=ALL_MACHINES,
        magnitude=0.2,
    )]


def _compression_failure(seeds: SeedSequenceFactory, duration: int,
                         n_machines: int) -> List[FaultEvent]:
    """One machine's compressor fails outright for a third of the run."""
    rng = seeds.stream("faults.plan.compression")
    return [FaultEvent(
        time=duration // 4,
        kind=FaultKind.COMPRESSION_FAILURE,
        duration=duration // 3,
        target=int(rng.integers(0, n_machines)),
        magnitude=0.0,
    )]


def _pressure(seeds: SeedSequenceFactory, duration: int,
              n_machines: int) -> List[FaultEvent]:
    """Three working-set spikes at seeded times on seeded machines."""
    rng = seeds.stream("faults.plan.pressure")
    times = sorted(
        int(t) for t in rng.integers(duration // 10, duration, size=3)
    )
    return [
        FaultEvent(
            time=t,
            kind=FaultKind.MEMORY_PRESSURE,
            target=int(rng.integers(0, n_machines)),
            magnitude=0.3,
        )
        for t in times
    ]


def _histogram_corrupt(seeds: SeedSequenceFactory, duration: int,
                       n_machines: int) -> List[FaultEvent]:
    """Mid-run, every job's kernel histograms are flagged corrupt."""
    del seeds, n_machines
    return [FaultEvent(
        time=duration // 2,
        kind=FaultKind.HISTOGRAM_CORRUPT,
        target=ALL_MACHINES,
        magnitude=1.0,
    )]


def _mixed(seeds: SeedSequenceFactory, duration: int,
           n_machines: int) -> List[FaultEvent]:
    """The acceptance scenario: crash + sink outage + incompressible storm."""
    return (
        _crash(seeds, duration, n_machines)
        + _sink_outage(seeds, duration, n_machines)
        + _storm(seeds, duration, n_machines)
    )


_SCENARIOS: Dict[
    str, Callable[[SeedSequenceFactory, int, int], List[FaultEvent]]
] = {
    "crash": _crash,
    "sink_outage": _sink_outage,
    "storm": _storm,
    "compression_failure": _compression_failure,
    "pressure": _pressure,
    "histogram_corrupt": _histogram_corrupt,
    "mixed": _mixed,
}

#: Scenario names accepted by :func:`build_scenario` / ``repro chaos``.
SCENARIO_NAMES = tuple(sorted(_SCENARIOS))


def build_scenario(
    name: str,
    seeds: SeedSequenceFactory,
    duration_seconds: int,
    n_machines: int,
) -> FaultPlan:
    """Build a named scenario's plan for one cluster.

    Args:
        name: one of :data:`SCENARIO_NAMES`.
        seeds: seed factory scoping the scenario's random choices (fork a
            per-cluster child so sibling clusters get disjoint faults).
        duration_seconds: intended run length; event times scale with it.
        n_machines: machine count used to draw crash/storm targets.

    Raises:
        FaultPlanError: unknown scenario name.
    """
    check_positive(duration_seconds, "duration_seconds")
    check_positive(n_machines, "n_machines")
    builder = _SCENARIOS.get(name)
    if builder is None:
        raise FaultPlanError(
            f"unknown scenario {name!r}; choose from {', '.join(SCENARIO_NAMES)}"
        )
    events = builder(seeds, duration_seconds, n_machines)
    return FaultPlan(events=tuple(events), name=name)
