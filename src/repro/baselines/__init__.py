"""Comparison baselines from the paper's related work (§7)."""

from repro.baselines.thermostat import (
    ThermostatConfig,
    ThermostatDetector,
    ThermostatPolicy,
    ThermostatPolicyConfig,
    ThermostatThresholdPolicy,
)

__all__ = [
    "ThermostatConfig",
    "ThermostatDetector",
    "ThermostatPolicy",
    "ThermostatPolicyConfig",
    "ThermostatThresholdPolicy",
]
