"""OBS001 negative fixture: registered names, via constant or literal."""

from repro.common.events import EventKind
from repro.obs.metrics import MetricName


def bind(registry, log):
    counter = registry.counter(
        MetricName.PAGES_SCANNED_TOTAL,  # constant: the preferred form
        "Pages scanned.",
    )
    gauge = registry.gauge(
        "repro_fleet_coverage",  # literal, but it matches the registry
        "Coverage.",
    )
    log.record(0, EventKind.SCHEDULER_EVICT)
    log.record(0, "scheduler.evict")  # literal, but registered
    return counter, gauge
