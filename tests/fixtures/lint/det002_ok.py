"""DET002 negative fixture: seeded, explicit generators."""

import numpy as np


def draw(rng: np.random.Generator):
    # An injected Generator is the sanctioned path.
    return rng.normal()


def build():
    # Seeded construction is reproducible.
    return np.random.default_rng(1234)
