"""Figure 1: cold memory % and promotion rate vs the cold age threshold T.

Paper: fleet-average cold memory decreases from 32 % (T = 120 s) as T
grows; the promotion rate (accesses to cold memory, as a fraction of the
cold size per minute) is ~15 %/min at T = 120 s and also decreases with T.
We verify both monotone shapes and the T = 120 s operating point's band,
and regenerate the two series.
"""

from __future__ import annotations

from repro.analysis import cold_memory_vs_threshold, render_table


def test_fig1_threshold_sweep(benchmark, paper_fleet, save_result):
    traces = paper_fleet.trace_db.traces()
    points = benchmark(cold_memory_vs_threshold, traces)

    cold = [p.cold_fraction for p in points]
    promo = [p.promotion_rate_pct_of_cold_per_min for p in points]

    # Shape: both series decrease monotonically in T.
    assert all(a >= b for a, b in zip(cold, cold[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(promo, promo[1:]))

    # Operating point: the paper reports 32 % cold at T = 120 s; our
    # calibrated fleet must land in the same band.
    assert points[0].threshold_seconds == 120
    assert 0.20 <= cold[0] <= 0.45

    # Promotion rate at T = 120 s: the paper reports ~15 %/min of cold
    # memory; the synthetic fleet should be the same order of magnitude.
    assert 1.0 <= promo[0] <= 40.0

    save_result(
        "fig1_cold_memory_vs_threshold",
        render_table(
            ["T (s)", "cold memory (% of used)", "promotions (%/min of cold)"],
            [
                (
                    p.threshold_seconds,
                    f"{100 * p.cold_fraction:.1f}",
                    f"{p.promotion_rate_pct_of_cold_per_min:.2f}",
                )
                for p in points
            ],
            title="Fig. 1 — cold memory and promotion rate vs threshold "
            "(paper: 32% cold, 15%/min at T=120s)",
        ),
    )
