"""Synthetic page-access patterns.

The control plane only observes *which pages were touched when*; these
generators produce that signal with the statistical structure the paper
measures in real WSC jobs:

* a heavy-tailed per-page access-rate distribution
  (:class:`HeterogeneousPoissonPattern`) — pages range from touched every
  few seconds to touched never, which produces the smoothly decreasing
  cold-fraction-vs-threshold curve of Fig. 1;
* diurnal load modulation (:class:`DiurnalModulation`) — request rates
  follow the time of day, driving the temporal coverage variation seen in
  Figs. 2/5/10;
* working-set phase changes (:class:`PhasedPattern`) — jobs periodically
  shift their hot set, exercising the §4.3 spike-reaction rule;
* sequential scans (:class:`ScanPattern`) — periodic full sweeps, the
  adversarial case for age-based cold detection.

Every pattern implements :class:`AccessPattern`: ``step`` returns the page
indices read and written during one simulator tick.  Patterns own no page
state; they index into the job's page space ``[0, n_pages)``.
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Tuple

import numpy as np

from repro.common.units import DAY, HOUR, MINUTE
from repro.common.validation import (
    check_fraction,
    check_positive,
    require,
)

__all__ = [
    "AccessPattern",
    "HeterogeneousPoissonPattern",
    "ZipfianPattern",
    "ScanPattern",
    "PhasedPattern",
    "DiurnalModulation",
    "make_rates_for_cold_fraction",
]


class AccessPattern(abc.ABC):
    """Generates page accesses for one job, one tick at a time."""

    def __init__(self, n_pages: int):
        check_positive(n_pages, "n_pages")
        self.n_pages = int(n_pages)

    @abc.abstractmethod
    def step(
        self, now: int, interval_seconds: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Page indices ``(reads, writes)`` touched during this interval."""


class HeterogeneousPoissonPattern(AccessPattern):
    """Each page is touched by an independent Poisson process.

    Per-page rates span orders of magnitude, which is what gives real
    memory its long idle-time tail.  A page with rate ``lambda`` is touched
    during a ``dt`` interval with probability ``1 - exp(-lambda * dt)``;
    in steady state it has been idle for at least ``T`` seconds with
    probability ``exp(-lambda * T)`` — so the cold fraction at threshold
    ``T`` is directly controlled by the rate distribution.

    Args:
        rates_per_second: per-page access rates (lambda), shape (n_pages,).
        write_fraction: fraction of touches that are writes (dirtying).
    """

    def __init__(self, rates_per_second: np.ndarray, write_fraction: float = 0.3):
        rates = np.asarray(rates_per_second, dtype=np.float64)
        require(rates.ndim == 1 and rates.size > 0, "rates must be a 1-D array")
        require(bool((rates >= 0).all()), "rates must be non-negative")
        super().__init__(rates.size)
        check_fraction(write_fraction, "write_fraction")
        self.rates = rates
        self.write_fraction = write_fraction
        self._touch_prob_interval: Optional[int] = None
        self._touch_prob: Optional[np.ndarray] = None

    def step(
        self, now: int, interval_seconds: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        # The rates are fixed and the simulator ticks at a constant
        # interval, so the per-page touch probabilities are computed once
        # and reused every tick.
        if interval_seconds != self._touch_prob_interval:
            self._touch_prob_interval = interval_seconds
            self._touch_prob = -np.expm1(-self.rates * interval_seconds)
        touched = np.flatnonzero(rng.random(self.n_pages) < self._touch_prob)
        if touched.size == 0:
            return touched, touched
        writes = touched[rng.random(touched.size) < self.write_fraction]
        return touched, writes


def make_rates_for_cold_fraction(
    n_pages: int,
    cold_fraction: float,
    rng: np.random.Generator,
    hot_rate: float = 1.0 / 30.0,
    cold_horizon_seconds: float = 30 * DAY,
) -> np.ndarray:
    """Per-page rates whose steady-state cold fraction at T=120 s is ~target.

    Pages are split into three populations:

    * **hot** — rate ``hot_rate`` (touched every tick or two): never cold;
    * **warm** — rates log-uniform between ~1/2 h and ~1/4 min: these pages
      wander across the threshold grid and generate the promotion tail;
    * **frozen** — rates log-uniform between ``1/cold_horizon`` and ~1/8 h:
      cold at almost every threshold.

    The split is chosen so that ``cold_fraction`` of pages are idle >= 120 s
    in steady state: frozen pages contribute ~1 each, warm pages contribute
    ``exp(-120 * rate)`` on average (~0.55 over the chosen band), and hot
    pages contribute ~0.

    Args:
        n_pages: job size in pages.
        cold_fraction: target fraction of pages idle >= 120 s.
        rng: sampling stream.
        hot_rate: access rate of hot pages.
        cold_horizon_seconds: slowest page timescale.
    """
    check_positive(n_pages, "n_pages")
    check_fraction(cold_fraction, "cold_fraction")
    # Mean steady-state coldness-at-120s of the warm band (computed from the
    # log-uniform band below; pinned as a constant so the split is exact).
    warm_band = (1.0 / (2 * HOUR), 1.0 / (4 * MINUTE))
    warm_cold_at_120 = _mean_exp_coldness(120.0, *warm_band)

    # Cap the warm band so its steady-state coldness alone cannot exceed
    # the target (frozen pages supply the rest exactly).
    warm_share = min(
        0.25, 1.0 - cold_fraction, cold_fraction / warm_cold_at_120
    )
    frozen_share = max(0.0, cold_fraction - warm_share * warm_cold_at_120)
    if frozen_share + warm_share > 1.0:
        warm_share = 1.0 - frozen_share
    hot_share = max(0.0, 1.0 - warm_share - frozen_share)

    n_warm = int(round(n_pages * warm_share))
    n_frozen = int(round(n_pages * frozen_share))
    n_hot = n_pages - n_warm - n_frozen

    rates = np.empty(n_pages, dtype=np.float64)
    pos = 0
    rates[pos : pos + n_hot] = hot_rate
    pos += n_hot
    rates[pos : pos + n_warm] = _log_uniform(rng, *warm_band, n_warm)
    pos += n_warm
    rates[pos:] = _log_uniform(
        rng, 1.0 / cold_horizon_seconds, 1.0 / (8 * HOUR), n_frozen
    )
    rng.shuffle(rates)
    return rates


def _log_uniform(
    rng: np.random.Generator, low: float, high: float, size: int
) -> np.ndarray:
    if size == 0:
        return np.zeros(0)
    return np.exp(rng.uniform(np.log(low), np.log(high), size=size))


def _mean_exp_coldness(t: float, low: float, high: float) -> float:
    """E[exp(-t * rate)] for rate log-uniform on [low, high]."""
    from scipy.special import exp1

    # integral of exp(-t*r)/r dr from low to high, over log(high/low)
    return float((exp1(t * low) - exp1(t * high)) / math.log(high / low))


class ZipfianPattern(AccessPattern):
    """A fixed number of accesses per tick, Zipf-distributed over pages.

    Models cache/serving workloads: a small head of pages absorbs most
    accesses while the tail is touched rarely but persistently.

    Args:
        n_pages: page-space size.
        accesses_per_second: average touch operations per second.
        alpha: Zipf exponent (>1 concentrates on the head).
        write_fraction: fraction of accesses that dirty the page.
    """

    def __init__(
        self,
        n_pages: int,
        accesses_per_second: float,
        alpha: float = 1.2,
        write_fraction: float = 0.1,
    ):
        super().__init__(n_pages)
        check_positive(accesses_per_second, "accesses_per_second")
        require(alpha > 0, f"alpha must be positive, got {alpha}")
        check_fraction(write_fraction, "write_fraction")
        self.accesses_per_second = accesses_per_second
        self.alpha = alpha
        self.write_fraction = write_fraction
        weights = 1.0 / np.power(np.arange(1, n_pages + 1, dtype=np.float64), alpha)
        self._cdf = np.cumsum(weights / weights.sum())

    def step(
        self, now: int, interval_seconds: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        n_accesses = rng.poisson(self.accesses_per_second * interval_seconds)
        if n_accesses == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        # Cap the draw: beyond ~4x the page count, extra samples only re-hit
        # pages already touched this tick (the accessed bit is idempotent).
        n_draw = int(min(n_accesses, 4 * self.n_pages))
        pages = np.searchsorted(self._cdf, rng.random(n_draw))
        # Sorted-unique via a scatter mask: O(draws + pages) instead of the
        # O(draws log draws) sort inside ``np.unique``, same result.  The
        # mask has one spare slot because a draw landing exactly on the
        # CDF's floating-point tail maps to index ``n_pages``.
        mask = np.zeros(self.n_pages + 1, dtype=bool)
        mask[pages] = True
        touched = np.flatnonzero(mask)
        writes = touched[rng.random(touched.size) < self.write_fraction]
        return touched, writes


class ScanPattern(AccessPattern):
    """Periodic sequential sweeps over the whole page space.

    Between sweeps nothing is touched; during a sweep every page is touched
    once, in order.  This defeats naive age-based coldness (everything
    looks cold right up until the scan storms through) and is the stress
    case for the spike-reaction rule.

    Args:
        n_pages: page-space size.
        period_seconds: time between sweep starts.
        sweep_seconds: how long one sweep takes.
    """

    def __init__(self, n_pages: int, period_seconds: int, sweep_seconds: int):
        super().__init__(n_pages)
        check_positive(period_seconds, "period_seconds")
        check_positive(sweep_seconds, "sweep_seconds")
        require(
            sweep_seconds <= period_seconds,
            "sweep cannot be longer than its period",
        )
        self.period_seconds = int(period_seconds)
        self.sweep_seconds = int(sweep_seconds)

    def step(
        self, now: int, interval_seconds: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        start = now % self.period_seconds
        end = start + interval_seconds
        lo = self._position(start)
        hi = self._position(min(end, self.sweep_seconds))
        if end <= self.sweep_seconds or start < self.sweep_seconds:
            touched = np.arange(lo, hi, dtype=np.int64)
        else:
            touched = np.zeros(0, dtype=np.int64)
        return touched, np.zeros(0, dtype=np.int64)

    def _position(self, t: int) -> int:
        frac = min(1.0, max(0.0, t / self.sweep_seconds))
        return int(round(frac * self.n_pages))


class PhasedPattern(AccessPattern):
    """Hot working set that relocates every phase.

    Within a phase, a contiguous window of pages is hot (touched every
    tick); at each phase boundary the window jumps to a random new
    location, instantly turning previously-cold pages hot — the activity
    spike §4.3's escalation rule exists for.

    Args:
        n_pages: page-space size.
        hot_fraction: size of the hot window as a fraction of all pages.
        phase_seconds: phase duration.
        background_rate: Poisson rate at which non-hot pages are touched.
    """

    def __init__(
        self,
        n_pages: int,
        hot_fraction: float = 0.2,
        phase_seconds: int = 2 * HOUR,
        background_rate: float = 1.0 / (4 * HOUR),
    ):
        super().__init__(n_pages)
        check_fraction(hot_fraction, "hot_fraction")
        check_positive(phase_seconds, "phase_seconds")
        self.hot_fraction = hot_fraction
        self.phase_seconds = int(phase_seconds)
        self.background_rate = background_rate
        self._phase_index: Optional[int] = None
        self._hot_start = 0

    def step(
        self, now: int, interval_seconds: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        phase = now // self.phase_seconds
        if phase != self._phase_index:
            self._phase_index = phase
            self._hot_start = int(rng.integers(0, self.n_pages))
        hot_size = max(1, int(self.hot_fraction * self.n_pages))
        prob = -np.expm1(-self.background_rate * interval_seconds)
        # Union of the (wrapping) hot window and the background draws via a
        # scatter mask — same sorted-unique result as ``np.union1d`` without
        # its concatenate-and-sort.
        mask = rng.random(self.n_pages) < prob
        end = self._hot_start + hot_size
        if end <= self.n_pages:
            mask[self._hot_start : end] = True
        else:
            mask[self._hot_start :] = True
            mask[: end - self.n_pages] = True
        touched = np.flatnonzero(mask)
        writes = touched[rng.random(touched.size) < 0.2]
        return touched, writes


class DiurnalModulation(AccessPattern):
    """Wraps a pattern, thinning its accesses by the time of day.

    Activity follows ``base + amplitude * sin(...)`` with a 24 h period; at
    night only the still-hot head survives the thinning, so more pages turn
    cold — the mechanism behind the diurnal coverage swings of Fig. 10.

    Args:
        inner: the pattern being modulated.
        amplitude: day/night swing, 0..1 (0.5 = night load is ~1/3 of peak).
        phase_seconds: time-of-day offset of the peak.
    """

    def __init__(
        self,
        inner: AccessPattern,
        amplitude: float = 0.5,
        phase_seconds: int = 0,
    ):
        super().__init__(inner.n_pages)
        check_fraction(amplitude, "amplitude")
        self.inner = inner
        self.amplitude = amplitude
        self.phase_seconds = int(phase_seconds)

    def activity_level(self, now: int) -> float:
        """Current activity multiplier in [1-amplitude, 1]."""
        angle = 2.0 * math.pi * ((now + self.phase_seconds) % DAY) / DAY
        return 1.0 - self.amplitude * 0.5 * (1.0 - math.cos(angle))

    def step(
        self, now: int, interval_seconds: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        reads, writes = self.inner.step(now, interval_seconds, rng)
        level = self.activity_level(now)
        if level >= 1.0 or reads.size == 0:
            return reads, writes
        keep = rng.random(reads.size) < level
        kept_reads = reads[keep]
        if writes.size == 0:
            return kept_reads, writes
        # Every pattern in this module returns sorted-unique reads with
        # writes a subset of them, so the surviving writes are just the
        # writes whose position in ``reads`` kept its page — no need for
        # ``np.intersect1d``'s sort.  Writes absent from ``reads`` (foreign
        # patterns) are dropped, exactly as the intersection would.
        pos = np.minimum(np.searchsorted(reads, writes), reads.size - 1)
        kept_writes = writes[(reads[pos] == writes) & keep[pos]]
        return kept_reads, kept_writes
