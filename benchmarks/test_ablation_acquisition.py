"""Ablation: acquisition functions for the autotuner (UCB vs EI vs random).

The paper uses GP-Bandit's UCB-style acquisition; expected improvement is
the other standard choice in Vizier-class services.  We run all three
strategies on identical traces at an equal trial budget and compare their
convergence (best feasible objective after each trial).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.model import FarMemoryModel
from repro.autotuner import AutotuningPipeline
from repro.autotuner.gp_bandit import GpBandit

ITERATIONS = 5
BATCH = 4


def run_with_acquisition(model, acquisition: str, seed: int):
    pipeline = AutotuningPipeline(model, batch_size=BATCH, seed=seed)
    pipeline.bandit = GpBandit(
        pipeline.space,
        constraint_limit=model.slo.target_pct_per_min,
        seed=seed,
        acquisition=acquisition,
    )
    return pipeline.run(iterations=ITERATIONS)


def test_ablation_acquisition_functions(benchmark, paper_fleet, save_result):
    model = FarMemoryModel(paper_fleet.trace_db.traces())

    ucb = benchmark.pedantic(
        run_with_acquisition, args=(model, "ucb", 9), rounds=1, iterations=1
    )
    ei = run_with_acquisition(model, "ei", 9)
    random = AutotuningPipeline(model, seed=9).run_random_baseline(
        n_trials=ITERATIONS * BATCH, seed=10
    )

    # Convergence curves are monotone by construction.
    for result in (ucb, ei):
        curve = [c for c in result.objective_curve() if np.isfinite(c)]
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    # At least one GP acquisition finds a feasible config, and the best GP
    # strategy is no worse than random search.
    gp_bests = [r.best.objective for r in (ucb, ei) if r.best is not None]
    assert gp_bests, "neither acquisition found a feasible configuration"
    if random.best is not None:
        assert max(gp_bests) >= 0.9 * random.best.objective

    def row(name, result):
        if result.best is None:
            return (name, "-", "-", "-")
        return (
            name,
            f"K={result.best.config.percentile_k:.1f}, "
            f"S={result.best.config.warmup_seconds}",
            f"{result.best.objective:,.0f}",
            f"{result.best.report.promotion_rate_p98:.3f}",
        )

    save_result(
        "ablation_acquisition",
        render_table(
            ["strategy", "best config", "cold pages captured", "p98 %/min"],
            [row("GP-UCB", ucb), row("GP-EI", ei), row("random", random)],
            title=f"acquisition ablation ({ITERATIONS * BATCH} trials each)",
        ),
    )
