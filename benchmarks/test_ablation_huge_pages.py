"""Ablation (§7): cold-detection resolution under huge-page mappings.

The paper notes its promotion-histogram technique "covers both huge and
regular pages (critical for production systems where fragmentation can
limit huge pages)" — unlike Thermostat, which only handles 2 MiB mappings.
The flip side of huge pages is resolution: one hot byte pins an entire
2 MiB mapping hot, hiding its cold remainder.  This bench sweeps the
huge-mapped share of a job and measures how much cold memory remains
*detectable* (and therefore compressible).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core.histograms import default_age_bins
from repro.kernel.compression import ContentProfile
from repro.kernel.memcg import MemCg

PAGES = 8192
HUGE = 512  # 2 MiB mappings
HOT_PAGES_PER_MAPPING = 1


def detectable_cold(huge_fraction: float, seed: int = 5) -> int:
    """Pages idle >= 120 s after 6 scans with one hot page per 2 MiB."""
    rng = np.random.default_rng(seed)
    memcg = MemCg(
        "j", PAGES,
        ContentProfile(incompressible_fraction=0.0, min_ratio=1.5),
        default_age_bins(), rng,
    )
    memcg.allocate(PAGES)
    n_groups = int(round(huge_fraction * PAGES / HUGE))
    for g in range(n_groups):
        memcg.map_huge(g * HUGE, pages_per_huge=HUGE)
    memcg.scan_update()
    hot = np.arange(0, PAGES, HUGE // HOT_PAGES_PER_MAPPING)
    for _ in range(6):
        memcg.touch(hot)
        memcg.scan_update()
    return memcg.cold_pages(120)


def test_ablation_huge_page_resolution(benchmark, save_result):
    fractions = [0.0, 0.25, 0.5, 0.75, 1.0]
    cold_by_fraction = benchmark(
        lambda: [detectable_cold(f) for f in fractions]
    )

    # Detectable cold memory shrinks monotonically as more of the job is
    # huge-mapped; fully-huge jobs with a hot page per mapping expose none.
    assert all(
        a >= b for a, b in zip(cold_by_fraction, cold_by_fraction[1:])
    )
    assert cold_by_fraction[0] > 0.9 * PAGES * (1 - len(
        range(0, PAGES, HUGE)
    ) / PAGES)
    assert cold_by_fraction[-1] == 0

    save_result(
        "ablation_huge_pages",
        render_table(
            ["huge-mapped share", "detectable cold pages",
             "% of job detectable"],
            [
                (f"{f:.0%}", cold,
                 f"{100 * cold / PAGES:.1f}%")
                for f, cold in zip(fractions, cold_by_fraction)
            ],
            title="§7 ablation — huge-page mappings hide cold memory "
            "(one hot page per 2 MiB mapping)",
        ),
    )
