"""Last-mile edge cases across the public API."""

import numpy as np
import pytest

from repro import __version__
from repro.agent.monitoring import SliWindow
from repro.analysis import render_table
from repro.common.rng import SeedSequenceFactory
from repro.common.units import MIB
from repro.kernel import (
    ContentProfile,
    Machine,
    MachineConfig,
    NVM_DEVICE,
    RemoteMemoryPool,
    TieredFarMemory,
    ZSWAP_DEVICE,
)


class TestPublicApi:
    def test_version_string(self):
        assert __version__.count(".") == 2

    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_kernel_exports_resolve(self):
        import repro.kernel as kernel

        for name in kernel.__all__:
            assert getattr(kernel, name) is not None


class TestEdgeCases:
    def test_machine_saved_bytes_zero_when_empty(self):
        machine = Machine(
            "m", MachineConfig(dram_bytes=16 * MIB),
            seeds=SeedSequenceFactory(1),
        )
        assert machine.saved_bytes() == 0
        assert machine.cold_pages(120) == 0

    def test_sli_window_empty_extend(self):
        window = SliWindow()
        window.extend([])
        assert len(window) == 0
        assert window.violation_fraction(0.2) == 0.0

    def test_render_table_handles_mixed_types(self):
        out = render_table(["a", "b"], [(None, 1.5), (True, "x")])
        assert "None" in out and "True" in out

    def test_tiered_far_memory_empty_histograms(self, bins):
        from repro.core.histograms import AgeHistogram

        tiers = TieredFarMemory([ZSWAP_DEVICE], [480])
        result = tiers.assign(AgeHistogram(bins), AgeHistogram(bins))
        assert result.pages_per_tier == (0, 0)
        assert result.dram_cost_saving_fraction == 0.0

    def test_remote_pool_unknown_host_rejected(self, rng):
        pool = RemoteMemoryPool(["a", "b"], rng)
        with pytest.raises(Exception):
            pool.place_far_pages("j", "ghost", 10)

    def test_nvm_capacity_is_fixed(self):
        assert NVM_DEVICE.fixed_capacity_bytes is not None
        assert ZSWAP_DEVICE.fixed_capacity_bytes is None
