"""Compression ratio and latency models vs the paper's Fig. 9."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import PAGE_SIZE, ZSMALLOC_MAX_PAYLOAD
from repro.kernel.compression import (
    DEFAULT_LATENCY_MODEL,
    CompressionLatencyModel,
    ContentProfile,
)


class TestContentProfile:
    def test_payloads_within_page(self, rng):
        payloads = ContentProfile().sample_payload_bytes(5000, rng)
        assert payloads.min() > 0
        assert payloads.max() <= PAGE_SIZE

    def test_median_ratio_near_three(self, rng):
        profile = ContentProfile(median_ratio=3.0, incompressible_fraction=0.0)
        payloads = profile.sample_payload_bytes(20_000, rng)
        ratios = PAGE_SIZE / payloads
        assert np.median(ratios) == pytest.approx(3.0, rel=0.05)

    def test_ratio_spread_matches_2_to_6x(self, rng):
        """Fig. 9a: compressible-page ratios span roughly 2-6x."""
        profile = ContentProfile(incompressible_fraction=0.0, min_ratio=1.5)
        ratios = PAGE_SIZE / profile.sample_payload_bytes(20_000, rng)
        p5, p95 = np.percentile(ratios, [5, 95])
        assert 1.5 <= p5 <= 2.5
        assert 4.0 <= p95 <= 7.5

    def test_incompressible_fraction_respected(self, rng):
        profile = ContentProfile(incompressible_fraction=0.31)
        payloads = profile.sample_payload_bytes(20_000, rng)
        over_cutoff = float(np.mean(payloads > ZSMALLOC_MAX_PAYLOAD))
        assert over_cutoff == pytest.approx(0.31, abs=0.03)

    def test_fully_incompressible(self, rng):
        profile = ContentProfile(incompressible_fraction=1.0)
        payloads = profile.sample_payload_bytes(1000, rng)
        assert (payloads > ZSMALLOC_MAX_PAYLOAD).all()

    def test_zero_pages(self, rng):
        assert ContentProfile().sample_payload_bytes(0, rng).size == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ContentProfile(median_ratio=0)
        with pytest.raises(ConfigurationError):
            ContentProfile(incompressible_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ContentProfile(min_ratio=3.0, max_ratio=2.0)


class TestLatencyModel:
    def test_paper_p50_latency(self):
        """A median (3x) page decompresses in ~6.4 us (Fig. 9b p50)."""
        payload_3x = PAGE_SIZE / 3.0
        latency = DEFAULT_LATENCY_MODEL.decompress_seconds(np.array([payload_3x]))
        assert latency[0] == pytest.approx(6.4e-6, rel=0.02)

    def test_paper_p98_latency(self):
        """A 2x page decompresses in ~9.1 us (Fig. 9b p98)."""
        payload_2x = PAGE_SIZE / 2.0
        latency = DEFAULT_LATENCY_MODEL.decompress_seconds(np.array([payload_2x]))
        assert latency[0] == pytest.approx(9.1e-6, rel=0.02)

    def test_latency_monotone_in_payload(self):
        payloads = np.array([500, 1000, 2000, 4000])
        latencies = DEFAULT_LATENCY_MODEL.decompress_seconds(payloads)
        assert (np.diff(latencies) > 0).all()

    def test_compression_slower_than_decompression(self):
        compress = DEFAULT_LATENCY_MODEL.compress_seconds(1)
        worst_decompress = DEFAULT_LATENCY_MODEL.decompress_seconds(
            np.array([PAGE_SIZE])
        )[0]
        assert compress > worst_decompress

    def test_compress_cost_linear_in_pages(self):
        model = DEFAULT_LATENCY_MODEL
        assert model.compress_seconds(10) == pytest.approx(
            10 * model.compress_seconds(1)
        )

    def test_cycles_conversion(self):
        cycles = DEFAULT_LATENCY_MODEL.compress_cycles(1)
        assert cycles > 0
        latency_cycles = DEFAULT_LATENCY_MODEL.decompress_cycles(
            np.array([1000.0])
        )
        assert latency_cycles[0] > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CompressionLatencyModel(decompress_base_seconds=0)
