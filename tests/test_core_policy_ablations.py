"""Ablation knobs on the threshold controller."""

import numpy as np
import pytest

from repro.core.histograms import AgeHistogram, default_age_bins
from repro.core.slo import PromotionRateSlo
from repro.core.threshold_policy import (
    DISABLED,
    ColdAgeThresholdPolicy,
    ThresholdPolicyConfig,
)


def burst_hist(bins, age, count):
    hist = AgeHistogram(bins)
    hist.add_ages(np.full(count, float(age)))
    return hist


class TestFixedThreshold:
    def test_fixed_threshold_bypasses_controller(self, bins):
        policy = ColdAgeThresholdPolicy(
            ThresholdPolicyConfig(warmup_seconds=0,
                                  fixed_threshold_seconds=480.0),
            bins,
        )
        policy.observe(burst_hist(bins, 200, 1000), 100)  # would back off
        assert policy.threshold() == 480.0

    def test_fixed_threshold_respects_warmup(self, bins):
        policy = ColdAgeThresholdPolicy(
            ThresholdPolicyConfig(warmup_seconds=600,
                                  fixed_threshold_seconds=120.0),
            bins,
        )
        assert policy.threshold() == DISABLED
        for _ in range(10):
            policy.observe(AgeHistogram(bins), 100)
        assert policy.threshold() == 120.0


class TestSpikeReactionToggle:
    def _history(self, policy, bins):
        for _ in range(30):
            policy.observe(AgeHistogram(bins), 1000)
        policy.observe(burst_hist(bins, 1000, 500), 1000)  # the spike

    def test_spike_reaction_escalates(self, bins):
        with_spike = ColdAgeThresholdPolicy(
            ThresholdPolicyConfig(percentile_k=50, warmup_seconds=0), bins
        )
        self._history(with_spike, bins)
        assert with_spike.threshold() >= 1920

    def test_without_spike_reaction_stays_on_percentile(self, bins):
        without = ColdAgeThresholdPolicy(
            ThresholdPolicyConfig(percentile_k=50, warmup_seconds=0,
                                  spike_reaction=False),
            bins,
        )
        self._history(without, bins)
        # The single bad minute barely moves the 50th percentile.
        assert without.threshold() == bins.min_threshold


class TestDisabledDominatesPercentile:
    def test_chronic_violator_stays_disabled(self, bins):
        """A job violating at every candidate threshold in >2% of minutes
        must be left uncompressed by a K=98 policy."""
        policy = ColdAgeThresholdPolicy(
            ThresholdPolicyConfig(percentile_k=98, warmup_seconds=0,
                                  history_length=50),
            bins,
        )
        for i in range(50):
            if i % 10 == 0:
                # Massive accesses to the very oldest pages: no finite
                # threshold can meet the SLO this minute.
                policy.observe(burst_hist(bins, 40000, 10_000), 100)
            else:
                policy.observe(AgeHistogram(bins), 100)
        assert policy.threshold() == DISABLED
