"""Tests for the repro.checks static-analysis suite (reprolint)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.checks import (
    Finding,
    LintEngine,
    LintError,
    RULES,
    filter_baseline,
    load_baseline,
    render_json,
    render_text,
    run_lint,
    save_baseline,
)
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC_TREE = Path(__file__).parent.parent / "src" / "repro"


def lint(path: Path, *rules: str):
    """Run the engine over one fixture, returning its findings.

    Rooted at tests/ so fixture rel-paths carry the ``fixtures/lint/``
    fragment the path-scoped rules (DET003, ACC001) key on.
    """
    engine = LintEngine(root=FIXTURES.parent.parent, rules=list(rules) or None)
    return engine.run([path])


def rules_fired(findings) -> set:
    return {f.rule for f in findings}


class TestRegistry:
    def test_all_rules_registered(self):
        assert set(RULES) == {
            "ACC001", "CON001", "CON002", "DET001", "DET002", "DET003",
            "DET004", "FLOW001", "FLOW002", "FORK001", "OBS001",
        }

    def test_unknown_rule_rejected(self):
        with pytest.raises(LintError, match="unknown rule"):
            LintEngine(rules=["NOPE999"])


class TestDet001:
    def test_positive(self):
        findings = lint(FIXTURES / "det001_bad.py", "DET001")
        assert len(findings) == 3
        assert rules_fired(findings) == {"DET001"}
        messages = " ".join(f.message for f in findings)
        assert "time.time" in messages
        assert "time.perf_counter" in messages
        assert "datetime.datetime.now" in messages

    def test_negative(self):
        assert lint(FIXTURES / "det001_ok.py", "DET001") == []

    def test_allowlist_exempts_obs(self):
        engine = LintEngine(root=SRC_TREE.parent.parent, rules=["DET001"])
        findings = engine.run([SRC_TREE / "obs"])
        assert findings == []


class TestDet002:
    def test_positive(self):
        findings = lint(FIXTURES / "det002_bad.py", "DET002")
        assert len(findings) == 4
        messages = " ".join(f.message for f in findings)
        assert "random.random" in messages
        assert "random.shuffle" in messages
        assert "numpy.random.normal" in messages
        assert "without a seed" in messages

    def test_negative(self):
        assert lint(FIXTURES / "det002_ok.py", "DET002") == []


class TestDet003:
    def test_positive(self):
        findings = lint(FIXTURES / "engine" / "det003_bad.py", "DET003")
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert ".values() view" in messages
        assert "set()" in messages
        assert ".items() view" in messages

    def test_negative(self):
        assert lint(FIXTURES / "engine" / "det003_ok.py", "DET003") == []

    def test_scoped_to_hot_paths(self):
        # The same hazardous code outside engine//kernel/ is not flagged.
        rule = RULES["DET003"]
        assert rule.applies_to("repro/engine/parallel.py")
        assert rule.applies_to("repro/kernel/memcg.py")
        assert not rule.applies_to("repro/analysis/reporting.py")


class TestDet004:
    def test_positive(self):
        findings = lint(FIXTURES / "kernel" / "det004_bad.py", "DET004")
        assert len(findings) == 4
        assert rules_fired(findings) == {"DET004"}
        messages = " ".join(f.message for f in findings)
        assert "page axis" in messages
        assert "range(self.used)" in messages
        assert "whole-array ops" in messages

    def test_negative(self):
        assert lint(FIXTURES / "kernel" / "det004_ok.py", "DET004") == []

    def test_scoped_to_the_columnar_kernel(self):
        rule = RULES["DET004"]
        assert rule.applies_to("repro/kernel/columnar.py")
        assert not rule.applies_to("repro/kernel/memcg.py")
        assert not rule.applies_to("repro/engine/parallel.py")

    def test_real_columnar_kernel_is_clean(self):
        # The promo-events loop (`for r in np.flatnonzero(per_row)`) and
        # the dirty-resample loop (`for memcg in memcg_list`) iterate the
        # row/memcg axis and must NOT be flagged.
        engine = LintEngine(root=SRC_TREE.parent.parent, rules=["DET004"])
        assert engine.run([SRC_TREE / "kernel" / "columnar.py"]) == []


class TestFork001:
    def test_positive(self):
        findings = lint(FIXTURES / "fork001_bad.py", "FORK001")
        assert len(findings) == 4
        messages = " ".join(f.message for f in findings)
        for hazard in ("lambda", "open file handle", "threading lock",
                       "live generator"):
            assert hazard in messages

    def test_negative(self):
        assert lint(FIXTURES / "fork001_ok.py", "FORK001") == []


class TestAcc001:
    def test_positive(self):
        findings = lint(FIXTURES / "core" / "acc001_bad.py", "ACC001")
        assert len(findings) == 3

    def test_negative(self):
        assert lint(FIXTURES / "core" / "acc001_ok.py", "ACC001") == []

    def test_scoped_to_accounting(self):
        rule = RULES["ACC001"]
        assert rule.applies_to("repro/core/threshold_policy.py")
        assert rule.applies_to("repro/analysis/sli.py")
        assert not rule.applies_to("repro/obs/metrics.py")


class TestObs001:
    def test_positive(self):
        findings = lint(FIXTURES / "obs001_bad.py", "OBS001")
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "repro_pages_scaned_total" in messages
        assert "schduler.evict" in messages

    def test_negative(self):
        assert lint(FIXTURES / "obs001_ok.py", "OBS001") == []


class TestSuppression:
    def test_noqa_comments(self):
        findings = lint(FIXTURES / "suppressed.py", "DET001", "DET002")
        # Line 1: DET001 suppressed by rule.  Line 2: bare noqa kills the
        # DET002 finding.  Line 3: noqa[DET002] does NOT cover DET001.
        assert len(findings) == 1
        assert findings[0].rule == "DET001"
        assert "perf_counter" in findings[0].message


class TestReporters:
    def _findings(self):
        return lint(FIXTURES / "det001_bad.py", "DET001")

    def test_text_report(self):
        report = render_text(self._findings())
        assert "det001_bad.py:" in report
        assert "DET001" in report
        assert "3 finding(s)" in report

    def test_text_report_clean(self):
        assert "clean" in render_text([])

    def test_json_report_round_trips(self):
        document = json.loads(render_json(self._findings()))
        assert document["count"] == 3
        assert {f["rule"] for f in document["findings"]} == {"DET001"}
        assert "DET001" in document["rules"]

    def test_baseline_workflow(self, tmp_path):
        findings = self._findings()
        baseline_file = tmp_path / "baseline.json"
        save_baseline(findings, baseline_file)
        baseline = load_baseline(baseline_file)
        assert filter_baseline(findings, baseline) == []
        fresh = Finding(
            path="det001_bad.py", line=99, col=1,
            rule="DET001", message="a brand new finding",
        )
        assert filter_baseline([*findings, fresh], baseline) == [fresh]

    def test_baseline_ignores_line_drift(self, tmp_path):
        findings = self._findings()
        baseline_file = tmp_path / "baseline.json"
        save_baseline(findings, baseline_file)
        shifted = [
            Finding(path=f.path, line=f.line + 10, col=f.col,
                    rule=f.rule, message=f.message)
            for f in findings
        ]
        assert filter_baseline(shifted, load_baseline(baseline_file)) == []

    def test_bad_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(LintError, match="suppressed"):
            load_baseline(bad)


class TestCli:
    def test_lint_fixture_exits_nonzero(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "det001_bad.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "det001_bad.py" in out and ":" in out  # file:line rendering

    def test_lint_rule_filter(self, capsys):
        code = cli_main([
            "lint", "--rule", "DET002", str(FIXTURES / "det001_bad.py"),
        ])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_json_format(self, capsys):
        code = cli_main([
            "lint", "--format", "json", str(FIXTURES / "obs001_bad.py"),
        ])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["count"] == 2

    def test_lint_unknown_rule_exits_two(self, capsys):
        code = cli_main(["lint", "--rule", "NOPE999", str(FIXTURES)])
        assert code == 2

    def test_lint_baseline_flow(self, tmp_path, capsys):
        baseline = tmp_path / "checks_baseline.json"
        assert cli_main([
            "lint", "--update-baseline", str(baseline),
            str(FIXTURES / "det001_bad.py"),
        ]) == 0
        capsys.readouterr()
        assert cli_main([
            "lint", "--baseline", str(baseline),
            str(FIXTURES / "det001_bad.py"),
        ]) == 0

    def test_lint_ci_flag_degrades_gracefully(self, capsys):
        # ruff/mypy may not exist in this environment; --ci must still
        # complete and report each tool's status on stderr.
        code = cli_main(["lint", "--ci", str(FIXTURES / "det001_ok.py")])
        assert code == 0
        err = capsys.readouterr().err
        assert "ruff" in err and "mypy" in err


@pytest.mark.lint
class TestFullTree:
    def test_shipped_tree_is_clean(self):
        """The tier-1 gate: ``repro lint --flow`` exits 0 over the shipped
        tree — zero unbaselined local *or* flow/contract findings."""
        if not SRC_TREE.exists():
            pytest.skip("src/ tree not present (sdist install)")
        result = run_lint([SRC_TREE], flow=True, flow_cache=None)
        assert result.exit_code == 0, "\n" + result.report

    def test_fixture_tree_is_dirty(self):
        """Sanity: every local rule fires at least once over the fixtures
        (flow rules are whole-program; their fixtures live under
        fixtures/lint/flow/ and are exercised in test_checks_flow.py)."""
        result = run_lint([FIXTURES], root=FIXTURES.parent.parent, docs=False)
        assert result.exit_code == 1
        flow_only = {r for r in RULES if getattr(RULES[r], "flow_only", False)}
        assert rules_fired(result.findings) == set(RULES) - flow_only
