"""The fast far memory model: offline replay of the control algorithm."""

import numpy as np
import pytest

from repro.core.histograms import AgeHistogram, default_age_bins
from repro.core.slo import PromotionRateSlo
from repro.core.threshold_policy import ThresholdPolicyConfig
from repro.model.replay import FarMemoryModel, _replay_one_job
from repro.model.trace import JobTrace, TraceEntry


def make_trace(job_id="j", n_entries=12, cold_pages=500, wss=1000,
               promo_ages=(), resident=2000):
    """A trace with constant per-period statistics."""
    bins = default_age_bins()
    trace = JobTrace(job_id)
    for i in range(n_entries):
        promo = AgeHistogram(bins)
        promo.add_ages(np.array(promo_ages, dtype=float))
        cold = AgeHistogram(bins)
        cold.add_ages(
            np.array([200.0] * cold_pages + [0.0] * (resident - cold_pages))
        )
        trace.append(
            TraceEntry(
                job_id=job_id,
                machine_id="m0",
                time=i * 300,
                working_set_pages=wss,
                promotion_histogram=promo,
                cold_age_histogram=cold,
                resident_pages=resident,
            )
        )
    return trace


class TestReplayOneJob:
    def test_quiet_job_captures_cold_memory(self):
        config = ThresholdPolicyConfig(percentile_k=90, warmup_seconds=0)
        result = _replay_one_job(make_trace(), config, PromotionRateSlo())
        assert result.intervals == 12
        # First interval has no history -> threshold disabled -> 0 captured.
        assert result.cold_pages_captured[0] == 0.0
        # Later intervals run at 120s and capture the 500 cold pages.
        assert result.cold_pages_captured[-1] == 500.0
        assert result.mean_cold_pages > 0

    def test_warmup_suppresses_early_intervals(self):
        config = ThresholdPolicyConfig(percentile_k=90, warmup_seconds=1500)
        result = _replay_one_job(make_trace(), config, PromotionRateSlo())
        # 1500s warm-up = five 300s intervals disabled (plus the first).
        assert all(c == 0 for c in result.cold_pages_captured[:5])
        assert result.cold_pages_captured[-1] > 0

    def test_noisy_job_captures_less(self):
        config = ThresholdPolicyConfig(percentile_k=90, warmup_seconds=0)
        quiet = _replay_one_job(make_trace(), config, PromotionRateSlo())
        noisy = _replay_one_job(
            make_trace(promo_ages=[200.0] * 400),  # heavy cold re-touch
            config,
            PromotionRateSlo(),
        )
        assert noisy.mean_cold_pages < quiet.mean_cold_pages

    def test_empty_trace(self):
        config = ThresholdPolicyConfig()
        result = _replay_one_job(JobTrace("j"), config, PromotionRateSlo())
        assert result.intervals == 0
        assert result.mean_cold_pages == 0.0


class TestFleetModel:
    def test_aggregates_jobs(self):
        traces = [make_trace(f"j{i}") for i in range(4)]
        model = FarMemoryModel(traces)
        report = model.evaluate(
            ThresholdPolicyConfig(percentile_k=90, warmup_seconds=0)
        )
        assert len(report.job_results) == 4
        assert report.total_cold_pages > 0
        assert report.meets_slo

    def test_constraint_detects_violation(self):
        """Quiet history drives the threshold to 120 s; periodic bursts of
        cold-page accesses then land as real promotions — the violation
        pattern the p98 constraint exists to catch."""
        bins = default_age_bins()
        trace = JobTrace("bursty")
        for i in range(12):
            promo = AgeHistogram(bins)
            if i % 2 == 1:  # burst intervals
                promo.add_ages(np.array([150.0] * 500))
            cold = AgeHistogram(bins)
            cold.add_ages(np.array([200.0] * 500 + [0.0] * 500))
            trace.append(
                TraceEntry(
                    job_id="bursty",
                    machine_id="m0",
                    time=i * 300,
                    working_set_pages=500,
                    promotion_histogram=promo,
                    cold_age_histogram=cold,
                    resident_pages=1000,
                )
            )
        model = FarMemoryModel([trace])
        report = model.evaluate(
            ThresholdPolicyConfig(percentile_k=10, warmup_seconds=0,
                                  history_length=4)
        )
        assert report.promotion_rate_p98 > report.slo_target

    def test_conservative_config_captures_less(self):
        traces = [
            make_trace(f"j{i}", promo_ages=[300.0] * 30) for i in range(3)
        ]
        model = FarMemoryModel(traces)
        aggressive = model.evaluate(
            ThresholdPolicyConfig(percentile_k=50, warmup_seconds=0)
        )
        conservative = model.evaluate(
            ThresholdPolicyConfig(percentile_k=50, warmup_seconds=3000)
        )
        assert conservative.total_cold_pages <= aggressive.total_cold_pages

    def test_evaluate_many_order(self):
        model = FarMemoryModel([make_trace()])
        configs = [
            ThresholdPolicyConfig(percentile_k=50, warmup_seconds=0),
            ThresholdPolicyConfig(percentile_k=99, warmup_seconds=600),
        ]
        reports = model.evaluate_many(configs)
        assert [r.config for r in reports] == configs

    def test_deterministic(self):
        traces = [make_trace("j", promo_ages=[250.0] * 10)]
        model = FarMemoryModel(traces)
        config = ThresholdPolicyConfig(percentile_k=80, warmup_seconds=300)
        a = model.evaluate(config)
        b = model.evaluate(config)
        assert a.total_cold_pages == b.total_cold_pages
        assert a.promotion_rate_p98 == b.promotion_rate_p98

    def test_matches_online_policy_semantics(self):
        """The replayed threshold sequence equals what the online policy
        would have produced given identical inputs."""
        from repro.core.threshold_policy import ColdAgeThresholdPolicy

        trace = make_trace(promo_ages=[300.0] * 50, n_entries=8)
        config = ThresholdPolicyConfig(percentile_k=75, warmup_seconds=600)
        result = _replay_one_job(trace, config, PromotionRateSlo())

        policy = ColdAgeThresholdPolicy(
            config, trace.entries[0].bins, PromotionRateSlo()
        )
        expected = []
        for entry in trace.entries:
            expected.append(policy.threshold())
            policy.observe(entry.promotion_histogram,
                           entry.working_set_pages, 300)
        assert result.thresholds == expected
