"""Call-graph caching under ``.repro-cache/`` (the warm-path contract).

Flow analysis is whole-program: every ``repro lint --flow`` / ``repro
ci`` invocation needs summaries for *all* package files, even when only
one changed.  Parsing ~100 files dominates the cold cost, so summaries
are cached on disk keyed by each file's content hash:

* cache hit (same sha256) — the stored JSON summary is deserialized,
  the file is never read beyond hashing, never parsed;
* cache miss — the file is re-extracted and the entry replaced;
* deleted files simply drop out (the key set is rebuilt every run, so
  stale entries cannot resurrect a removed module).

The linked :class:`~repro.checks.flow.callgraph.CallGraph` is rebuilt
from summaries every run — linking is pure dictionary work and cheap —
which keeps the cache format independent of resolver internals.

The cache file is ``<cache_dir>/flow_callgraph.json``; ``cache_dir`` is
``<repo root>/.repro-cache`` by default (created on demand, safe to
delete at any time).  A version stamp invalidates everything when the
summary schema changes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.checks.flow.callgraph import (
    SUMMARY_FORMAT_VERSION,
    ModuleSummary,
    extract_module,
    iter_package_files,
)

__all__ = ["CACHE_FILENAME", "CacheStats", "load_summaries"]

CACHE_FILENAME = "flow_callgraph.json"


@dataclass
class CacheStats:
    """What one :func:`load_summaries` call did (observable by tests)."""

    files: int = 0
    hits: int = 0
    extracted: int = 0
    cache_path: Optional[Path] = None
    wrote: bool = False
    #: files that failed to parse: rel_path -> error message.
    errors: Dict[str, str] = field(default_factory=dict)


def _read_cache(cache_path: Path, package: str) -> Dict[str, Dict[str, object]]:
    try:
        document = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, ValueError):
        return {}
    if (
        not isinstance(document, dict)
        or document.get("version") != SUMMARY_FORMAT_VERSION
        or document.get("package") != package
    ):
        return {}
    files = document.get("files")
    return files if isinstance(files, dict) else {}


def load_summaries(
    package_root: Path, cache_dir: Optional[Path] = None
) -> tuple:
    """Summaries for every file in a package, via the cache when possible.

    Args:
        package_root: the package to analyze.
        cache_dir: directory for the cache file; None disables caching
            entirely (every file is extracted fresh).

    Returns:
        ``(summaries, stats)`` — a list of :class:`ModuleSummary` in
        sorted-path order and a :class:`CacheStats`.
    """
    package = package_root.name
    cached: Dict[str, Dict[str, object]] = {}
    cache_path: Optional[Path] = None
    if cache_dir is not None:
        cache_path = Path(cache_dir) / CACHE_FILENAME
        cached = _read_cache(cache_path, package)

    stats = CacheStats(cache_path=cache_path)
    summaries: List[ModuleSummary] = []
    fresh_files: Dict[str, Dict[str, object]] = {}
    changed = False
    for path in iter_package_files(package_root):
        stats.files += 1
        source = path.read_text(encoding="utf-8")
        sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
        rel = path.resolve().relative_to(package_root.parent).as_posix()
        entry = cached.get(rel)
        if entry is not None and entry.get("sha256") == sha:
            summary = ModuleSummary.from_dict(entry["summary"])  # type: ignore[arg-type]
            stats.hits += 1
            fresh_files[rel] = entry
        else:
            try:
                summary = extract_module(package_root, path, source=source)
            except Exception as exc:  # parse failure: report, keep going
                stats.errors[rel] = str(exc)
                changed = True
                continue
            stats.extracted += 1
            changed = True
            fresh_files[rel] = {"sha256": sha, "summary": summary.to_dict()}
        summaries.append(summary)
    if set(fresh_files) != set(cached):
        changed = True

    if cache_path is not None and changed:
        document = {
            "version": SUMMARY_FORMAT_VERSION,
            "package": package,
            "files": fresh_files,
        }
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = cache_path.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(document, sort_keys=True), encoding="utf-8"
            )
            tmp.replace(cache_path)
            stats.wrote = True
        except OSError:
            pass  # read-only checkout: run uncached, never fail the lint
    return summaries, stats
