"""High-level lint entry points used by the CLI and the tier-1 test.

``run_lint`` is the library face of ``repro lint``: resolve paths, run
the per-file engine (and, with ``flow=True``, the whole-program flow
passes from :mod:`repro.checks.flow`), apply an optional baseline, and
return findings plus the rendered report.  ``run_external_tools``
drives the optional ruff/mypy pass for ``repro lint --ci`` — both tools
are *gated on availability* (this environment does not ship them and
nothing may be installed), so CI degrades gracefully to reprolint alone.
"""

from __future__ import annotations

import re
import shutil
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

# Importing the rule modules populates the registry.
from repro.checks import (  # noqa: F401  (imported for registration)
    rules_accounting,
    rules_determinism,
    rules_fork,
    rules_obs,
)
from repro.checks.core import Finding, LintEngine, iter_python_files
from repro.checks.flow import FLOW_RULE_IDS, run_flow
from repro.checks.reporters import (
    filter_baseline,
    load_baseline,
    render_json,
    render_sarif,
    render_text,
    save_baseline,
)
from repro.obs.metrics import KNOWN_METRIC_NAMES

__all__ = [
    "LintResult",
    "check_docs_drift",
    "default_flow_cache_dir",
    "default_lint_paths",
    "run_external_tools",
    "run_lint",
]

#: A metric token never ends in "_" — that is the docs' glob shorthand
#: ("repro_fleet_*" in prose), not a series name.
_METRIC_TOKEN_RE = re.compile(r"\brepro_[a-z0-9_]*[a-z0-9]\b")


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    #: findings before baseline filtering (== findings when no baseline).
    raw_findings: List[Finding]
    report: str
    #: 0 clean, 1 findings (the CLI exit code contract).
    exit_code: int = 0
    notes: List[str] = field(default_factory=list)


def default_lint_paths() -> List[Path]:
    """The shipped package tree (works from a checkout *and* an install)."""
    return [Path(__file__).resolve().parent.parent]


def repo_root() -> Optional[Path]:
    """The checkout root (parent of ``src/``), when running from one."""
    package = Path(__file__).resolve().parent.parent
    candidate = package.parent.parent
    return candidate if (candidate / "pyproject.toml").exists() else None


def check_docs_drift(docs_path: Path) -> List[Finding]:
    """Flag ``repro_*`` metric tokens in docs that no registered metric
    matches — the documentation flavour of OBS001 name drift."""
    if not docs_path.exists():
        return []
    findings: List[Finding] = []
    for lineno, line in enumerate(
        docs_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in _METRIC_TOKEN_RE.finditer(line):
            token = match.group(0)
            if token not in KNOWN_METRIC_NAMES:
                findings.append(
                    Finding(
                        path=docs_path.name,
                        line=lineno,
                        col=match.start() + 1,
                        rule="OBS001",
                        message=(
                            f"documented metric {token!r} is not in "
                            f"repro.obs.metrics.MetricName (doc drift)"
                        ),
                    )
                )
    return findings


def default_flow_cache_dir() -> Optional[Path]:
    """``<checkout>/.repro-cache`` when running from a checkout, else None
    (installed trees run the flow passes uncached)."""
    checkout = repo_root()
    return checkout / ".repro-cache" if checkout is not None else None


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    *,
    rules: Optional[Sequence[str]] = None,
    output_format: str = "text",
    baseline: Optional[Path] = None,
    update_baseline: Optional[Path] = None,
    root: Optional[Path] = None,
    docs: bool = True,
    flow: bool = False,
    flow_cache: Optional[Path] = None,
) -> LintResult:
    """Run reprolint and render a report.

    Args:
        paths: files/directories to lint (default: the installed package).
        rules: restrict to these rule ids.
        output_format: ``"text"``, ``"json"`` or ``"sarif"``.
        baseline: only report findings absent from this baseline file.
        update_baseline: write current findings to this baseline and
            report clean (the adoption workflow).
        root: findings are reported relative to this directory.
        docs: also run the docs/observability.md drift check when the
            docs tree is reachable (checkout runs; skipped from an
            installed wheel, and skipped when ``rules`` excludes OBS001).
        flow: also run the whole-program flow passes (FLOW001/FLOW002/
            CON001/CON002) over the package(s) containing ``paths``.
            Flow findings join the local ones before baseline filtering,
            so the baseline/suppression workflow covers both uniformly.
        flow_cache: call-graph cache directory for the flow passes
            (default: ``<checkout>/.repro-cache``; None there means no
            checkout was found and the flow run is simply uncached).
    """
    lint_paths = list(paths) if paths else default_lint_paths()
    if root is None:
        root = repo_root() or Path.cwd()
    engine = LintEngine(root=root, rules=rules)
    findings = engine.run(lint_paths)
    notes: List[str] = []

    if flow:
        flow_rules = (
            [r for r in rules if r in FLOW_RULE_IDS]
            if rules is not None
            else None
        )
        if flow_rules is None or flow_rules:
            flow_result = run_flow(
                lint_paths,
                cache_dir=(
                    flow_cache if flow_cache is not None
                    else default_flow_cache_dir()
                ),
                rules=flow_rules,
            )
            findings = sorted(findings + flow_result.findings)
            notes.extend(flow_result.notes)
            for stats in flow_result.cache_stats:
                notes.append(
                    f"flow: {stats.files} file(s), {stats.hits} cached, "
                    f"{stats.extracted} extracted"
                )

    if docs and any(rule.id == "OBS001" for rule in engine.rules):
        checkout = repo_root()
        if checkout is not None:
            findings = sorted(
                findings + check_docs_drift(checkout / "docs" / "observability.md")
            )
        else:
            notes.append("docs drift check skipped (no checkout docs/ tree)")

    raw = list(findings)
    if update_baseline is not None:
        save_baseline(findings, update_baseline)
        notes.append(
            f"baseline updated: {len(findings)} finding(s) recorded in "
            f"{update_baseline}"
        )
        findings = []
    elif baseline is not None:
        findings = filter_baseline(findings, load_baseline(baseline))

    renderers = {"json": render_json, "sarif": render_sarif}
    report = renderers.get(output_format, render_text)(findings)
    return LintResult(
        findings=findings,
        raw_findings=raw,
        report=report,
        exit_code=1 if findings else 0,
        notes=notes,
    )


def run_external_tools(paths: Sequence[Path]) -> List[str]:
    """Run ruff and mypy over ``paths`` when installed; report each step.

    Returns human-readable status lines; raises nothing — a missing tool
    is a skip, a failing tool surfaces its output in the line.  The
    caller decides whether failures are fatal (``repro lint --ci`` does).
    """
    lines: List[str] = []
    str_paths = [str(p) for p in paths]
    for tool, argv in (
        ("ruff", ["ruff", "check", *str_paths]),
        ("mypy", ["mypy", *str_paths]),
    ):
        if shutil.which(tool) is None:
            lines.append(f"{tool}: skipped (not installed)")
            continue
        proc = subprocess.run(  # noqa: S603 - fixed argv, no shell
            argv, capture_output=True, text=True
        )
        if proc.returncode == 0:
            lines.append(f"{tool}: ok")
        else:
            output = (proc.stdout + proc.stderr).strip()
            lines.append(f"{tool}: FAILED (exit {proc.returncode})\n{output}")
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    """``python -m repro.checks.runner`` convenience entry point."""
    from repro.cli import main as cli_main

    return cli_main(["lint", *(argv or sys.argv[1:])])
