"""Tick path whose helpers are deterministic and contracts hold."""

import numpy as np

from clean_pkg.util.helpers import draw, pure

COLUMN_CONTRACTS = {
    "Pool.ages": {"dtype": "int32", "ndim": 1},
    "Pool.counts": {"dtype": "int64", "ndim": 2},
}


class Pool:
    def __init__(self, n: int, nbins: int) -> None:
        self.ages = np.zeros(n, dtype=np.int32)
        self.counts = np.zeros((n, nbins), dtype=np.int64)
        self._scratch = np.zeros(n, dtype=np.float64)  # private: exempt


def tick(state: float, seed: int) -> float:
    return state + draw(seed) + pure(1)
