"""Comparison baselines from the paper's related work (§7)."""

from repro.baselines.thermostat import ThermostatConfig, ThermostatDetector

__all__ = ["ThermostatConfig", "ThermostatDetector"]
