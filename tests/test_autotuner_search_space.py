"""Search-space encoding, including property-based roundtrips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.autotuner.search_space import (
    ContinuousParameter,
    IntegerParameter,
    SearchSpace,
    config_from_values,
    far_memory_search_space,
)


class TestParameter:
    def test_linear_mapping(self):
        p = ContinuousParameter("x", 0.0, 10.0)
        assert p.to_unit(5.0) == pytest.approx(0.5)
        assert p.from_unit(0.5) == pytest.approx(5.0)

    def test_log_mapping(self):
        p = ContinuousParameter("x", 1.0, 100.0, log_scale=True)
        assert p.from_unit(0.5) == pytest.approx(10.0)
        assert p.to_unit(10.0) == pytest.approx(0.5)

    def test_integer_rounds(self):
        p = IntegerParameter("n", 0, 10)
        assert p.from_unit(0.449) == 4.0
        assert float(p.from_unit(0.46)).is_integer()

    def test_clipping(self):
        p = ContinuousParameter("x", 0.0, 1.0)
        assert p.from_unit(-0.5) == 0.0
        assert p.from_unit(1.5) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ContinuousParameter("x", 5.0, 5.0)
        with pytest.raises(ConfigurationError):
            ContinuousParameter("x", 0.0, 1.0, log_scale=True)


class TestSearchSpace:
    def test_roundtrip_dict(self):
        space = far_memory_search_space()
        values = {"percentile_k": 80.0, "warmup_seconds": 600}
        u = space.to_unit(values)
        decoded = space.from_unit(u)
        assert decoded["percentile_k"] == pytest.approx(80.0)
        assert decoded["warmup_seconds"] == pytest.approx(600, abs=1)

    def test_names_and_dim(self):
        space = far_memory_search_space()
        assert space.dim == 2
        assert space.names == ["percentile_k", "warmup_seconds"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchSpace(
                [ContinuousParameter("a", 0, 1), ContinuousParameter("a", 0, 1)]
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchSpace([])

    def test_latin_hypercube_covers_each_dim(self):
        space = far_memory_search_space()
        rng = np.random.default_rng(0)
        samples = space.sample(10, rng)
        assert samples.shape == (10, 2)
        for d in range(2):
            # Each of the 10 strata contains exactly one sample.
            strata = np.floor(samples[:, d] * 10).astype(int)
            assert sorted(strata) == list(range(10))

    def test_wrong_point_size(self):
        space = far_memory_search_space()
        with pytest.raises(ConfigurationError):
            space.from_unit(np.array([0.5]))


class TestConfigFromValues:
    def test_builds_policy_config(self):
        config = config_from_values(
            {"percentile_k": 95.0, "warmup_seconds": 1200.0}
        )
        assert config.percentile_k == 95.0
        assert config.warmup_seconds == 1200


@settings(max_examples=50, deadline=None)
@given(u=st.lists(st.floats(min_value=0, max_value=1), min_size=2, max_size=2))
def test_unit_roundtrip_is_stable(u):
    """Property: from_unit then to_unit is idempotent (within rounding)."""
    space = far_memory_search_space()
    point = np.array(u)
    decoded = space.from_unit(point)
    re_encoded = space.to_unit(decoded)
    re_decoded = space.from_unit(re_encoded)
    for name in space.names:
        assert decoded[name] == pytest.approx(re_decoded[name], rel=1e-6,
                                              abs=1e-6)


@settings(max_examples=50, deadline=None)
@given(u=st.lists(st.floats(min_value=0, max_value=1), min_size=2, max_size=2))
def test_decoded_values_always_in_bounds(u):
    """Property: every unit-cube point decodes into the parameter box."""
    space = far_memory_search_space()
    decoded = space.from_unit(np.array(u))
    for parameter in space.parameters:
        assert parameter.low <= decoded[parameter.name] <= parameter.high
