"""Seeded flow fixture: every flow rule fires exactly where planned.

Expected findings (asserted in tests/test_checks_flow.py):

* FLOW001 in ``kernel/sweep.py`` — ``tick`` reaches ``time.time()``
  through ``util.helpers.jitter`` -> ``util.helpers.wall_now``;
* FLOW002 in ``engine/par.py`` — ``Job`` stores an open file handle and
  is constructed inside ``worker_main``;
* CON001 (x2) and CON002 in ``kernel/sweep.py`` — ``Pool`` violates its
  ``COLUMN_CONTRACTS`` table;
* ``tick_suppressed`` in ``kernel/sweep.py`` carries a sink-line
  ``# repro: noqa[FLOW001]`` and must NOT be reported.
"""
