"""FORK001 negative fixture: picklable state, or explicit __getstate__."""


def _increment(x):
    return x + 1


class Shard:
    def __init__(self, path):
        self.transform = _increment  # named function: picklable
        self.log_path = path  # description, not handle
        self.items = list(range(10))  # materialized, not a generator


class ManagedLog:
    """Opts into custom pickling, so hazardous attributes are its business."""

    def __init__(self):
        self.callbacks = [lambda event: event]

    def __getstate__(self):
        state = self.__dict__.copy()
        state["callbacks"] = []
        return state
