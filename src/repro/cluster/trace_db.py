"""The external trace database (paper §5.2-5.3).

Node agents export per-job 5-minute trace entries here; the autotuner's
fast far memory model reads them back as per-job traces.  The store is
in-memory with JSON-lines persistence — the simulator's stand-in for the
paper's telemetry warehouse.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_left
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.common.errors import TraceError
from repro.model.trace import JobTrace, TraceEntry

__all__ = ["TraceDatabase"]


class TraceDatabase:
    """Append-only store of trace entries, indexed by job."""

    def __init__(self) -> None:
        self._by_job: Dict[str, JobTrace] = {}
        self.entries_total = 0

    def __len__(self) -> int:
        return self.entries_total

    @property
    def job_ids(self) -> List[str]:
        """All jobs with at least one entry."""
        return sorted(self._by_job)

    def add(self, entry: TraceEntry) -> None:
        """Store one entry (the :class:`~repro.agent.telemetry.TraceSink`
        protocol)."""
        trace = self._by_job.get(entry.job_id)
        if trace is None:
            trace = JobTrace(entry.job_id)
            self._by_job[entry.job_id] = trace
        trace.append(entry)
        self.entries_total += 1

    def add_batch(self, entries: List[TraceEntry]) -> None:
        """Store a whole export window (the batched sink protocol).

        All-or-nothing, like the columnar store's batch path: the whole
        batch is validated against the per-job time watermarks before any
        entry lands.  The exporter depends on this — a batch that fails
        mid-way would spill *every* entry to its retry buffer, and any
        half-appended prefix would then be delivered twice on replay.

        The in-memory database has no columnar representation to
        exploit, so past validation this is a plain loop — it exists so
        exporters can use one code path against either database.

        Raises:
            TraceError: on an out-of-order entry; nothing is appended.
        """
        watermark: Dict[str, int] = {}
        for entry in entries:
            prev = watermark.get(entry.job_id)
            if prev is None:
                trace = self._by_job.get(entry.job_id)
                if trace is not None and trace.entries:
                    prev = trace.entries[-1].time
            if prev is not None and entry.time < prev:
                raise TraceError(
                    f"out-of-order trace entry for job {entry.job_id} at "
                    f"t={entry.time} after t={prev}"
                )
            watermark[entry.job_id] = entry.time
        for entry in entries:
            self.add(entry)

    def mark(self) -> Dict[str, int]:
        """An opaque position marker for :meth:`entries_since`."""
        return {job_id: len(trace.entries) for job_id, trace in self._by_job.items()}

    def entries_since(self, mark: Dict[str, int]) -> List[TraceEntry]:
        """Entries added after ``mark`` was taken.

        Per-job order is preserved; jobs are visited in insertion order.
        The parallel engine uses this to ship only the trace delta of each
        barrier interval from worker to parent.
        """
        out: List[TraceEntry] = []
        for job_id, trace in self._by_job.items():
            start = mark.get(job_id, 0)
            if len(trace.entries) > start:
                out.extend(trace.entries[start:])
        return out

    def trace_for(self, job_id: str) -> JobTrace:
        """The full trace of one job.

        Raises:
            TraceError: if the job has no entries.
        """
        trace = self._by_job.get(job_id)
        if trace is None:
            raise TraceError(f"no trace recorded for job {job_id}")
        return trace

    def traces(
        self, start: Optional[int] = None, end: Optional[int] = None
    ) -> List[JobTrace]:
        """All job traces, optionally windowed to ``[start, end)``."""
        if start is None and end is None:
            return list(self._by_job.values())
        result = []
        for job_id, trace in self._by_job.items():
            # Entries are time-ordered per job, so the window is a
            # contiguous slice — locate its edges with bisect instead of
            # filtering every entry of every job.
            entries = trace.entries
            lo = (
                bisect_left(entries, start, key=lambda e: e.time)
                if start is not None
                else 0
            )
            hi = (
                bisect_left(entries, end, key=lambda e: e.time)
                if end is not None
                else len(entries)
            )
            if hi > lo:
                windowed = JobTrace(job_id)
                for entry in entries[lo:hi]:
                    windowed.append(entry)
                result.append(windowed)
        return result

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save_jsonl(self, path: Union[str, Path]) -> int:
        """Write every entry as one JSON line; returns lines written.

        The file appears atomically: entries stream to a temp file in
        the same directory which is renamed into place only once every
        line is out, so a crash mid-export (e.g. under fault injection)
        can never leave a truncated trace file at ``path``.
        """
        path = Path(path)
        tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
        count = 0
        try:
            with tmp.open("w", encoding="utf-8") as fh:
                for trace in self._by_job.values():
                    for entry in trace.entries:
                        fh.write(json.dumps(entry.to_dict()))
                        fh.write("\n")
                        count += 1
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return count

    @classmethod
    def load_jsonl(cls, path: Union[str, Path]) -> "TraceDatabase":
        """Rebuild a database from :meth:`save_jsonl` output."""
        db = cls()
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            for line_number, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    db.add(TraceEntry.from_dict(json.loads(line)))
                except (json.JSONDecodeError, TraceError) as exc:
                    raise TraceError(
                        f"{path}:{line_number}: bad trace entry: {exc}"
                    ) from exc
        return db
