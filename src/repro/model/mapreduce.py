"""A minimal MapReduce-style pipeline engine (paper §5.3).

The paper's fast far memory model is a FlumeJava/MapReduce pipeline: replay
of each job's trace is independent (map), and fleet statistics combine the
per-job results (reduce).  This engine reproduces that structure with a
deterministic in-process executor and an optional process pool — enough to
demonstrate the embarrassing parallelism the paper's scalability claim
rests on, without a cluster.

The pool is **persistent**: the first parallel :meth:`MapReduce.run` call
starts it (lazily, sized to ``min(workers, len(inputs))``), later calls
reuse it, and :meth:`MapReduce.close` (or the context-manager exit) tears
it down.  An optional ``initializer`` runs once per worker process at pool
start-up — the place to ship a large read-only payload (e.g. compiled
fleet traces) to workers *once per pipeline* instead of once per task.

Picklability contract: workers are ``spawn`` processes, so ``mapper``,
``initializer``, every element of ``initargs``, every input item, and
every mapped result must pickle — module-level functions (or
``functools.partial`` of one) and plain data.  Closures and lambdas fail
at call time with a pickling error.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

from repro.common.validation import check_positive

__all__ = ["MapReduce", "mapreduce"]

InputT = TypeVar("InputT")
MappedT = TypeVar("MappedT")
ReducedT = TypeVar("ReducedT")


@dataclass
class MapReduce(Generic[InputT, MappedT, ReducedT]):
    """A two-stage pipeline: ``reduce(map(x) for x in inputs)``.

    Attributes:
        mapper: pure function applied to each input independently.
        reducer: combines the full list of mapped results.
        workers: process-pool size cap; 1 (default) runs in-process.  The
            effective pool size is clamped to the input count of the run
            that starts the pool — workers beyond ``len(inputs)`` would
            only ever idle.
        chunk_size: inputs per task when using a pool; ``None`` (default)
            picks ``ceil(len(inputs) / (4 * pool_size))`` per run, so a
            handful of heavy batched tasks spread one per worker while
            thousands of tiny tasks still amortize IPC.
        initializer: optional per-worker-process setup hook, called once
            with ``initargs`` when each worker starts (and once lazily
            in-process when ``workers == 1``).
        initargs: arguments for ``initializer``.
    """

    mapper: Callable[[InputT], MappedT]
    reducer: Callable[[List[MappedT]], ReducedT]
    workers: int = 1
    chunk_size: Optional[int] = None
    initializer: Optional[Callable[..., None]] = None
    initargs: Tuple[Any, ...] = ()
    _pool: Optional[Any] = field(default=None, init=False, repr=False,
                                 compare=False)
    _pool_size: int = field(default=0, init=False, repr=False, compare=False)
    _local_initialized: bool = field(default=False, init=False, repr=False,
                                     compare=False)

    def __post_init__(self) -> None:
        check_positive(self.workers, "workers")
        if self.chunk_size is not None:
            check_positive(self.chunk_size, "chunk_size")

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    @property
    def pool_size(self) -> int:
        """Size of the running pool (0 when no pool has been started)."""
        return self._pool_size

    def _ensure_pool(self, size: int):
        if self._pool is None:
            context = multiprocessing.get_context("spawn")
            self._pool = context.Pool(
                size, initializer=self.initializer, initargs=self.initargs
            )
            self._pool_size = size
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the pipeline stays
        usable — the next parallel run starts a fresh pool)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pool_size = 0

    def __enter__(self) -> "MapReduce":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _run_chunk_size(self, n_inputs: int, pool_size: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(n_inputs / (4 * pool_size)))

    def run(self, inputs: Sequence[InputT]) -> ReducedT:
        """Execute the pipeline over ``inputs``.

        Results are reduced in input order regardless of worker scheduling,
        so runs are deterministic for deterministic mappers.
        """
        inputs = list(inputs)
        effective = min(self.workers, len(inputs))
        if effective <= 1 and self._pool is None:
            if self.initializer is not None and not self._local_initialized:
                self.initializer(*self.initargs)
                self._local_initialized = True
            mapped = [self.mapper(item) for item in inputs]
        else:
            # A started pool serves every later run (even single-input
            # ones) — the whole point of persistence is not re-shipping
            # the initializer payload.
            pool = self._ensure_pool(max(effective, 1))
            mapped = pool.map(
                self.mapper, inputs,
                chunksize=self._run_chunk_size(len(inputs), self._pool_size),
            )
        return self.reducer(mapped)


def mapreduce(
    inputs: Sequence[InputT],
    mapper: Callable[[InputT], MappedT],
    reducer: Callable[[List[MappedT]], ReducedT],
    workers: int = 1,
) -> ReducedT:
    """Functional shorthand for a one-shot :class:`MapReduce` run."""
    with MapReduce(mapper=mapper, reducer=reducer, workers=workers) as pipeline:
        return pipeline.run(inputs)
