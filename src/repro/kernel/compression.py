"""Compression cost/ratio model standing in for lzo on real page contents.

The paper (§6.3, Fig. 9) characterizes zswap's lzo compression fleet-wide:

* **ratio** — median 3x across jobs, spread 2-6x, with 31 % of cold memory
  incompressible (multimedia, encrypted user content);
* **latency** — decompression 6.4 us at p50 and 9.1 us at p98 per page;
  compression is a few times slower than decompression for lzo-class codecs.

We cannot compress real page bytes (there are none in a simulator), so each
page is assigned an *intrinsic compressed payload size* at allocation time,
drawn from its job's :class:`ContentProfile`.  Latency is then a linear
function of payload size calibrated to hit the paper's p50/p98 exactly at
the ratio distribution's corresponding quantiles.

The 2990-byte zsmalloc cutoff (73 % of a page) is enforced by zswap, not
here; this module only answers "what would lzo produce for this page?".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.units import PAGE_SIZE, seconds_to_cycles
from repro.common.validation import check_fraction, check_positive, require

__all__ = ["ContentProfile", "CompressionLatencyModel", "DEFAULT_LATENCY_MODEL"]


@dataclass(frozen=True)
class ContentProfile:
    """Distribution of page compressibility for one job's data.

    Compressible pages draw a ratio from a lognormal centred on
    ``median_ratio`` (sigma controls the 2-6x spread); a fraction
    ``incompressible_fraction`` of pages instead draws a payload near the
    full page size, modelling multimedia/encrypted content that lzo cannot
    shrink.

    Attributes:
        median_ratio: median compression ratio of compressible pages (3.0).
        sigma: lognormal shape; 0.35 reproduces the paper's 2-6x spread.
        incompressible_fraction: fraction of pages that are incompressible
            (0.31 fleet-wide in the paper).
        min_ratio / max_ratio: clip range for sampled ratios.
    """

    median_ratio: float = 3.0
    sigma: float = 0.35
    incompressible_fraction: float = 0.31
    min_ratio: float = 1.2
    max_ratio: float = 8.0

    def __post_init__(self) -> None:
        check_positive(self.median_ratio, "median_ratio")
        check_positive(self.sigma, "sigma")
        check_fraction(self.incompressible_fraction, "incompressible_fraction")
        check_positive(self.min_ratio, "min_ratio")
        require(
            self.max_ratio >= self.min_ratio,
            f"max_ratio {self.max_ratio} < min_ratio {self.min_ratio}",
        )
        # Cached lognormal location: ``sample_payload_bytes`` runs on every
        # zswap store and the log of a frozen field never changes.
        object.__setattr__(
            self, "_log_median_ratio", float(np.log(self.median_ratio))
        )

    def sample_payload_bytes(
        self, n_pages: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw intrinsic compressed payload sizes for ``n_pages`` pages.

        Returns an int32 array in (0, PAGE_SIZE]; incompressible pages get
        payloads in the top of the range so zswap's cutoff rejects them.
        """
        if n_pages == 0:
            return np.zeros(0, dtype=np.int32)
        # One buffer end to end: exp/clip/divide/ceil all run in place on
        # the normal draw (this sits on every zswap store, so the
        # temporaries add up).  The RNG call sequence — one normal draw,
        # one uniform draw, one conditional integer draw — is part of the
        # replay contract and must not change.
        ratios = rng.normal(self._log_median_ratio, self.sigma, size=n_pages)
        np.exp(ratios, out=ratios)
        np.maximum(ratios, self.min_ratio, out=ratios)
        np.minimum(ratios, self.max_ratio, out=ratios)
        np.divide(PAGE_SIZE, ratios, out=ratios)
        np.ceil(ratios, out=ratios)
        np.minimum(ratios, PAGE_SIZE, out=ratios)
        payloads = ratios.astype(np.int32)
        incompressible = rng.random(n_pages) < self.incompressible_fraction
        count = int(np.count_nonzero(incompressible))
        if count:
            # lzo on high-entropy data yields ~page-size output (it can even
            # expand slightly; we cap at PAGE_SIZE since zswap rejects it
            # either way).
            payloads[incompressible] = rng.integers(
                3200, PAGE_SIZE + 1, size=count
            ).astype(np.int32)
        return payloads


@dataclass(frozen=True)
class CompressionLatencyModel:
    """Linear latency-in-payload model for lzo (de)compression.

    ``decompress_seconds = base + per_byte * payload`` — calibrated so a 3x
    page (1366 B payload) costs 6.4 us and a 2x page (2048 B) costs 9.1 us,
    matching Fig. 9b's p50/p98.  Compression visits the full 4 KiB input
    regardless of output size, so its cost is modelled on PAGE_SIZE with a
    codec-specific multiplier.

    Attributes:
        decompress_base_seconds: fixed per-page decompression overhead.
        decompress_per_byte_seconds: marginal cost per payload byte.
        compress_cost_multiplier: lzo compression / decompression cost ratio.
    """

    decompress_base_seconds: float = 1.0e-6
    decompress_per_byte_seconds: float = 3.954e-9
    compress_cost_multiplier: float = 3.0

    def __post_init__(self) -> None:
        check_positive(self.decompress_base_seconds, "decompress_base_seconds")
        check_positive(self.decompress_per_byte_seconds, "decompress_per_byte_seconds")
        check_positive(self.compress_cost_multiplier, "compress_cost_multiplier")

    def decompress_seconds(self, payload_bytes: np.ndarray) -> np.ndarray:
        """Per-page decompression latency for the given payload sizes."""
        payloads = np.asarray(payload_bytes, dtype=np.float64)
        return self.decompress_base_seconds + (
            self.decompress_per_byte_seconds * payloads
        )

    def compress_seconds(self, n_pages: int) -> float:
        """Total time to compress ``n_pages`` full pages (input-bound)."""
        per_page = self.compress_cost_multiplier * (
            self.decompress_base_seconds
            + self.decompress_per_byte_seconds * PAGE_SIZE
        )
        return n_pages * per_page

    def decompress_cycles(self, payload_bytes: np.ndarray) -> np.ndarray:
        """Decompression cost in CPU cycles."""
        return seconds_to_cycles(self.decompress_seconds(payload_bytes))

    def compress_cycles(self, n_pages: int) -> float:
        """Compression cost in CPU cycles."""
        return seconds_to_cycles(self.compress_seconds(n_pages))


#: The calibrated default used throughout the simulator.
DEFAULT_LATENCY_MODEL = CompressionLatencyModel()
