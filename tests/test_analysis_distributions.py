"""Distribution statistics, with property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.analysis.distributions import (
    cdf_points,
    percentile_summary,
    violin_stats,
)


class TestViolinStats:
    def test_known_quartiles(self):
        stats = violin_stats(list(range(1, 101)))
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 == pytest.approx(25.75)
        assert stats.q3 == pytest.approx(75.25)
        assert stats.n == 100

    def test_whiskers_exclude_outliers(self):
        data = [10.0] * 50 + [11.0] * 50 + [1000.0]
        stats = violin_stats(data)
        assert stats.whisker_high < 1000.0
        assert stats.maximum == 1000.0

    def test_single_value(self):
        stats = violin_stats([5.0])
        assert stats.median == 5.0
        assert stats.iqr == 0.0
        assert stats.whisker_low == stats.whisker_high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            violin_stats([])


class TestCdf:
    def test_basic(self):
        values, fractions = cdf_points([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(fractions, [1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            cdf_points([])


class TestPercentileSummary:
    def test_named_keys(self):
        summary = percentile_summary(range(101), percentiles=(50, 98))
        assert summary == {"p50": 50.0, "p98": 98.0}


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
def test_violin_invariants(data):
    """Property: whiskers are real data within the Tukey fences, and the
    box ordering q1 <= median <= q3 holds.  (With interpolated quartiles a
    whisker can sit inside the box, so we don't compare them to q1/q3.)"""
    stats = violin_stats(data)
    assert stats.minimum <= stats.whisker_low <= stats.whisker_high
    assert stats.whisker_high <= stats.maximum
    assert stats.q1 <= stats.median <= stats.q3
    assert stats.whisker_low >= stats.q1 - 1.5 * stats.iqr - 1e-9
    assert stats.whisker_high <= stats.q3 + 1.5 * stats.iqr + 1e-9
    assert stats.whisker_low in data and stats.whisker_high in data
    assert stats.n == len(data)


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
def test_cdf_invariants(data):
    """Property: CDF values are sorted, fractions end at 1."""
    values, fractions = cdf_points(data)
    assert (np.diff(values) >= 0).all()
    assert fractions[-1] == pytest.approx(1.0)
    assert (np.diff(fractions) > 0).all()
