"""repro.checks.flow: whole-program determinism & contract analysis.

The local rules in :mod:`repro.checks` see one file at a time.  This
package adds the interprocedural layer the serial≡parallel /
scalar≡columnar proof obligations actually rest on:

* :mod:`~repro.checks.flow.callgraph` — AST-based package call graph
  (imports, re-exports, method resolution via class scan, a conservative
  *unknown callee* lattice element);
* :mod:`~repro.checks.flow.taint` — **FLOW001** nondeterminism-taint
  fixpoint from sources (wall clock, unseeded RNG, ``os.environ``,
  ``id()``, unordered-set iteration) to tick-path sinks, and **FLOW002**
  fork-boundary closure (everything reachable from the parallel engine's
  worker entry points must be pickle-safe);
* :mod:`~repro.checks.flow.contracts` — **CON001/CON002** static
  column-contract checks against ``COLUMN_CONTRACTS`` tables;
* :mod:`~repro.checks.flow.cache` — the ``.repro-cache/`` warm path.

:func:`run_flow` is the entry point the lint runner and CLI use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.checks.core import Finding, LintError, Rule, register
from repro.checks.flow.cache import CacheStats, load_summaries
from repro.checks.flow.callgraph import (
    CallGraph,
    ModuleSummary,
    extract_module,
    find_package_root,
)
from repro.checks.flow.taint import run_fork_closure, run_taint

__all__ = [
    "FLOW_RULE_IDS",
    "FlowResult",
    "CallGraph",
    "ModuleSummary",
    "extract_module",
    "find_package_root",
    "run_flow",
]

#: Rule ids produced by the flow passes (registered below so reporters
#: can render titles and ``--rule`` can select them).
FLOW_RULE_IDS = ("FLOW001", "FLOW002", "CON001", "CON002")


class _FlowRule(Rule):
    """Registry placeholder: computed by :func:`run_flow`, not per-file."""

    #: Marks the rule as whole-program; the per-file engine skips it.
    flow_only = True

    def applies_to(self, rel_path: str) -> bool:
        return False

    def check(self, ctx) -> List[Finding]:  # pragma: no cover - never runs
        return []


@register
class TaintReachesTickPath(_FlowRule):
    id = "FLOW001"
    title = "nondeterminism reaches the tick path via a call chain"


@register
class ForkClosureUnpicklable(_FlowRule):
    id = "FLOW002"
    title = "unpicklable class reachable from a fork worker entry point"


@register
class ColumnContractMismatch(_FlowRule):
    id = "CON001"
    title = "column assignment contradicts its declared dtype/ndim contract"


@register
class UndeclaredColumn(_FlowRule):
    id = "CON002"
    title = "array column with no COLUMN_CONTRACTS declaration"


@dataclass
class FlowResult:
    """Outcome of one whole-program flow analysis."""

    findings: List[Finding]
    graphs: Dict[str, CallGraph] = field(default_factory=dict)
    cache_stats: List[CacheStats] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)


def _package_roots(paths: Sequence[Path]) -> List[Path]:
    roots: List[Path] = []
    for path in paths:
        root = find_package_root(Path(path))
        if root not in roots:
            roots.append(root)
    return roots


def run_flow(
    paths: Sequence[Path],
    cache_dir: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
) -> FlowResult:
    """Run every flow pass over the package(s) containing ``paths``.

    Flow analysis is whole-program: each given path selects its entire
    package (the topmost ``__init__.py`` ancestor), not just the files
    listed.  Findings suppressed with ``# repro: noqa[RULE]`` on their
    anchor (sink) line are dropped here, exactly like the local engine.

    Args:
        paths: files/directories inside the package(s) to analyze.
        cache_dir: ``.repro-cache`` directory (None = no caching).
        rules: restrict to these flow rule ids (default: all four).

    Raises:
        LintError: when a path is not inside a python package.
    """
    selected = set(rules) if rules is not None else set(FLOW_RULE_IDS)
    result = FlowResult(findings=[])
    for root in _package_roots(paths):
        summaries, stats = load_summaries(root, cache_dir=cache_dir)
        result.cache_stats.append(stats)
        for rel, error in sorted(stats.errors.items()):
            result.findings.append(
                Finding(path=rel, line=1, col=1, rule="PARSE", message=error)
            )
        graph = CallGraph(summaries)
        result.graphs[root.name] = graph
        findings: List[Finding] = []
        if "FLOW001" in selected:
            findings.extend(run_taint(graph))
        if "FLOW002" in selected:
            findings.extend(run_fork_closure(graph))
        if "CON001" in selected or "CON002" in selected:
            for summary in summaries:
                for document in summary.con_findings:
                    chain = tuple(document.get("chain", ()))
                    finding = Finding(
                        path=str(document["path"]),
                        line=int(document["line"]),
                        col=int(document["col"]),
                        rule=str(document["rule"]),
                        message=str(document["message"]),
                        chain=chain,
                    )
                    if finding.rule in selected:
                        findings.append(finding)
        # Sink-line suppression: a noqa on the anchor line covers the
        # whole multi-line diagnostic, chain and all.
        result.findings.extend(
            f
            for f in findings
            if not graph.suppressed_at(f.path, f.line, f.rule)
        )
    result.findings.sort()
    return result
